//! Metric trade-off frontier.
//!
//! A natural extension of the paper's framework ("our future work will focus
//! in testing other LPPMs … we also plan to extend our framework with more
//! metrics and parameters"): instead of answering a single objective set,
//! expose the whole *Pareto frontier* of the measured sweep over any chosen
//! metric pair — the set of parameter values that are not dominated (some
//! other value being better on both chosen metrics). The configurator's
//! recommendations always lie on this frontier; the frontier view helps a
//! system designer pick objectives that are actually reachable before
//! invoking the inversion step.

use crate::error::CoreError;
use crate::experiment::SweepResult;
use crate::objectives::Constraint;
use geopriv_lppm::ConfigPoint;
use geopriv_metrics::{Direction, MetricId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One point of a two-metric trade-off frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeOffPoint {
    /// The measured configuration (one value per swept axis).
    pub point: ConfigPoint,
    /// The measured value of the frontier's first (x) metric.
    pub x: f64,
    /// The measured value of the frontier's second (y) metric.
    pub y: f64,
}

impl TradeOffPoint {
    /// Returns `true` if `self` dominates `other` under the given metric
    /// directions: at least as good on both metrics, strictly better on one.
    pub fn dominates(&self, other: &TradeOffPoint, x: Direction, y: Direction) -> bool {
        let (sx, sy) = (x.goodness(self.x), y.goodness(self.y));
        let (ox, oy) = (x.goodness(other.x), y.goodness(other.y));
        let no_worse = sx >= ox && sy >= oy;
        let strictly_better = sx > ox || sy > oy;
        no_worse && strictly_better
    }
}

impl fmt::Display for TradeOffPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.point.single() {
            Some(value) => write!(f, "parameter {:.5}: {:.3} vs {:.3}", value, self.x, self.y),
            None => write!(f, "{}: {:.3} vs {:.3}", self.point, self.x, self.y),
        }
    }
}

/// The Pareto frontier of a sweep over a chosen metric pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoFrontier {
    x_id: MetricId,
    x_direction: Direction,
    y_id: MetricId,
    y_direction: Direction,
    points: Vec<TradeOffPoint>,
}

impl ParetoFrontier {
    /// Extracts the frontier over the paper's default pair: the sweep's first
    /// lower-is-better metric (x) against its first higher-is-better metric
    /// (y).
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfiguration`] when the sweep lacks a metric of
    ///   either direction (choose the pair explicitly with
    ///   [`ParetoFrontier::for_pair`]) or contains non-finite metric values.
    pub fn from_sweep(sweep: &SweepResult) -> Result<Self, CoreError> {
        let pick = |direction: Direction| {
            sweep.column_by_direction(direction).map(|c| c.id.clone()).ok_or_else(|| {
                CoreError::InvalidConfiguration {
                    reason: format!(
                        "sweep has no {direction} metric; pick the frontier pair explicitly"
                    ),
                }
            })
        };
        let x = pick(Direction::LowerIsBetter)?;
        let y = pick(Direction::HigherIsBetter)?;
        Self::for_pair(sweep, &x, &y)
    }

    /// Extracts the non-dominated points of a sweep over an explicitly chosen
    /// metric pair, sorted from best-x to best-y end.
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnknownMetric`] when either id is not a sweep column.
    /// * [`CoreError::InvalidConfiguration`] when a metric value is NaN or
    ///   infinite — dominance is meaningless on non-finite values, so
    ///   construction rejects them instead of panicking mid-comparison.
    pub fn for_pair(
        sweep: &SweepResult,
        x_id: &MetricId,
        y_id: &MetricId,
    ) -> Result<Self, CoreError> {
        let column = |id: &MetricId| {
            sweep.column(id).ok_or_else(|| CoreError::UnknownMetric {
                metric: id.to_string(),
                available: sweep.ids().iter().map(MetricId::to_string).collect(),
            })
        };
        let x_column = column(x_id)?;
        let y_column = column(y_id)?;
        for column in [x_column, y_column] {
            for (point, value) in sweep.points.iter().zip(&column.means) {
                if !value.is_finite() {
                    return Err(CoreError::InvalidConfiguration {
                        reason: format!(
                            "metric \"{}\" is non-finite ({value}) at {point}; \
                             a trade-off frontier needs finite metric values",
                            column.id
                        ),
                    });
                }
            }
        }

        let (x_direction, y_direction) = (x_column.direction, y_column.direction);
        let candidates: Vec<TradeOffPoint> = sweep
            .points
            .iter()
            .zip(x_column.means.iter().zip(&y_column.means))
            .map(|(point, (&x, &y))| TradeOffPoint { point: point.clone(), x, y })
            .collect();
        let mut frontier: Vec<TradeOffPoint> = candidates
            .iter()
            .filter(|candidate| {
                !candidates.iter().any(|o| o.dominates(candidate, x_direction, y_direction))
            })
            .cloned()
            .collect();
        frontier.sort_by(|a, b| {
            // Finiteness was checked above, so the comparisons are total.
            x_direction
                .goodness(b.x)
                .partial_cmp(&x_direction.goodness(a.x))
                .expect("metric values are finite")
                .then(a.y.partial_cmp(&b.y).expect("finite"))
        });
        frontier.dedup_by(|a, b| a.x == b.x && a.y == b.y);
        Ok(Self {
            x_id: x_id.clone(),
            x_direction,
            y_id: y_id.clone(),
            y_direction,
            points: frontier,
        })
    }

    /// The id of the frontier's x metric.
    pub fn x_id(&self) -> &MetricId {
        &self.x_id
    }

    /// The id of the frontier's y metric.
    pub fn y_id(&self) -> &MetricId {
        &self.y_id
    }

    /// The frontier points, sorted from best-x to best-y end.
    pub fn points(&self) -> &[TradeOffPoint] {
        &self.points
    }

    /// Number of non-dominated points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the frontier is empty (only for empty sweeps).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The knee point: the frontier point maximizing the summed goodness of
    /// both metrics (for the paper's pair, `utility − privacy`), i.e. the
    /// best balanced compromise when the designer has no explicit objectives
    /// yet.
    pub fn knee(&self) -> Option<TradeOffPoint> {
        self.points.iter().cloned().max_by(|a, b| {
            let score =
                |p: &TradeOffPoint| self.x_direction.goodness(p.x) + self.y_direction.goodness(p.y);
            score(a).partial_cmp(&score(b)).expect("metric values are finite")
        })
    }

    /// The frontier point with the best x-metric value among those whose
    /// y-metric satisfies `constraint` — e.g. "the most private point that
    /// still reaches 90 % utility" for the paper's pair.
    pub fn best_x_where_y(&self, constraint: Constraint) -> Option<TradeOffPoint> {
        self.points
            .iter()
            .filter(|p| constraint.is_satisfied_by(p.y))
            .max_by(|a, b| {
                self.x_direction
                    .goodness(a.x)
                    .partial_cmp(&self.x_direction.goodness(b.x))
                    .expect("metric values are finite")
            })
            .cloned()
    }
}

impl fmt::Display for ParetoFrontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Pareto frontier of {} vs {} ({} points):",
            self.x_id,
            self.y_id,
            self.points.len()
        )?;
        for p in &self.points {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::MetricColumn;
    use crate::objectives::at_least;
    use geopriv_lppm::{ConfigSpace, ParameterDescriptor, ParameterScale};

    fn privacy_id() -> MetricId {
        MetricId::new("poi-retrieval")
    }

    fn utility_id() -> MetricId {
        MetricId::new("area-coverage")
    }

    fn epsilon_space() -> ConfigSpace {
        ConfigSpace::single(
            ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap(),
        )
    }

    fn tradeoff(parameter: f64, x: f64, y: f64) -> TradeOffPoint {
        TradeOffPoint { point: epsilon_space().point(&[("epsilon", parameter)]).unwrap(), x, y }
    }

    fn sweep_from(points: &[(f64, f64, f64)]) -> SweepResult {
        let parameters: Vec<f64> = points.iter().map(|&(p, _, _)| p).collect();
        SweepResult::from_axis(
            "geo-indistinguishability",
            ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap(),
            &parameters,
            vec![
                MetricColumn {
                    id: privacy_id(),
                    direction: Direction::LowerIsBetter,
                    means: points.iter().map(|&(_, privacy, _)| privacy).collect(),
                    runs: vec![],
                },
                MetricColumn {
                    id: utility_id(),
                    direction: Direction::HigherIsBetter,
                    means: points.iter().map(|&(_, _, utility)| utility).collect(),
                    runs: vec![],
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn domination_logic() {
        let a = tradeoff(0.01, 0.1, 0.8);
        let b = tradeoff(0.02, 0.2, 0.7);
        let c = tradeoff(0.03, 0.1, 0.8);
        let (lower, higher) = (Direction::LowerIsBetter, Direction::HigherIsBetter);
        assert!(a.dominates(&b, lower, higher));
        assert!(!b.dominates(&a, lower, higher));
        assert!(!a.dominates(&c, lower, higher)); // equal on both axes: no strict improvement
                                                  // Directions matter: if x were higher-is-better, b would win on x.
        assert!(!a.dominates(&b, higher, higher));
        assert!(a.to_string().contains("0.800"));
    }

    #[test]
    fn monotone_sweeps_are_entirely_on_the_frontier() {
        // When both metrics increase with the parameter (the Figure 1 shape),
        // every point is a genuine trade-off: nothing dominates anything.
        let sweep =
            sweep_from(&[(0.001, 0.0, 0.3), (0.01, 0.1, 0.6), (0.1, 0.5, 0.9), (1.0, 0.9, 1.0)]);
        let frontier = ParetoFrontier::from_sweep(&sweep).unwrap();
        assert_eq!(frontier.len(), 4);
        assert!(!frontier.is_empty());
        assert_eq!(frontier.x_id(), &privacy_id());
        assert_eq!(frontier.y_id(), &utility_id());
        // Sorted from the most private end (best x) onward.
        let privacies: Vec<f64> = frontier.points().iter().map(|p| p.x).collect();
        assert!(privacies.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn dominated_points_are_removed() {
        let sweep = sweep_from(&[
            (0.001, 0.0, 0.5),
            (0.01, 0.2, 0.4), // dominated by the first point (worse on both axes)
            (0.1, 0.3, 0.9),
        ]);
        let frontier = ParetoFrontier::from_sweep(&sweep).unwrap();
        assert_eq!(frontier.len(), 2);
        assert!(frontier.points().iter().all(|p| p.point.single() != Some(0.01)));
    }

    #[test]
    fn knee_and_constraint_queries() {
        let sweep = sweep_from(&[
            (0.001, 0.0, 0.3),
            (0.01, 0.05, 0.8), // best balance: utility - privacy = 0.75
            (0.1, 0.5, 0.95),
            (1.0, 0.95, 1.0),
        ]);
        let frontier = ParetoFrontier::from_sweep(&sweep).unwrap();
        let knee = frontier.knee().unwrap();
        assert_eq!(knee.point.single(), Some(0.01));

        let pick = frontier.best_x_where_y(at_least(0.9)).unwrap();
        assert_eq!(pick.point.single(), Some(0.1));
        assert!(frontier.best_x_where_y(at_least(1.0)).is_some());
        // An upper bound on y is also expressible (only the lowest-utility
        // point qualifies, and it has the best privacy).
        assert_eq!(
            frontier.best_x_where_y(crate::objectives::at_most(0.3)).unwrap().point.single(),
            Some(0.001)
        );
        assert!(frontier.to_string().contains("Pareto frontier"));
    }

    #[test]
    fn explicit_pairs_choose_any_two_columns() {
        let mut sweep = sweep_from(&[(0.001, 0.1, 0.3), (0.01, 0.2, 0.6), (0.1, 0.5, 0.9)]);
        sweep.columns.push(MetricColumn {
            id: MetricId::new("hotspot-preservation"),
            direction: Direction::HigherIsBetter,
            means: vec![0.9, 0.6, 0.2],
            runs: vec![],
        });
        let frontier =
            ParetoFrontier::for_pair(&sweep, &MetricId::new("hotspot-preservation"), &utility_id())
                .unwrap();
        // Both higher-is-better and moving in opposite directions: every
        // point is a trade-off.
        assert_eq!(frontier.len(), 3);
        assert_eq!(frontier.x_id(), &MetricId::new("hotspot-preservation"));

        // Unknown ids are typed errors.
        assert!(matches!(
            ParetoFrontier::for_pair(&sweep, &MetricId::new("nope"), &utility_id()),
            Err(CoreError::UnknownMetric { .. })
        ));
    }

    #[test]
    fn non_finite_metric_values_are_rejected_not_panicked_on() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let sweep = sweep_from(&[(0.001, 0.0, 0.5), (0.01, bad, 0.7), (0.1, 0.3, 0.9)]);
            match ParetoFrontier::from_sweep(&sweep) {
                Err(CoreError::InvalidConfiguration { reason }) => {
                    assert!(reason.contains("poi-retrieval"), "reason: {reason}");
                    assert!(reason.contains("non-finite"), "reason: {reason}");
                }
                other => panic!("expected a typed error for {bad}, got {other:?}"),
            }
        }
        // Non-finite values in the y column are caught too.
        let sweep = sweep_from(&[(0.001, 0.0, f64::NAN), (0.01, 0.1, 0.7)]);
        assert!(matches!(
            ParetoFrontier::from_sweep(&sweep),
            Err(CoreError::InvalidConfiguration { .. })
        ));
    }

    #[test]
    fn frontier_of_real_shaped_sweep_contains_the_operating_point_region() {
        // An Equation-2-like sweep: the frontier keeps the transition region
        // where the paper's operating point lives.
        let samples: Vec<(f64, f64, f64)> = (0..25)
            .map(|i| {
                let eps = 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / 24.0);
                (
                    eps,
                    (0.84 + 0.17 * eps.ln()).clamp(0.0, 0.45),
                    (1.21 + 0.09 * eps.ln()).clamp(0.2, 1.0),
                )
            })
            .collect();
        let frontier = ParetoFrontier::from_sweep(&sweep_from(&samples)).unwrap();
        // The saturated tails collapse to a single frontier point each; the
        // transition region (about one decade of epsilon) survives in full.
        assert!(frontier.len() >= 8, "frontier has only {} points", frontier.len());
        assert!(frontier.points().iter().any(|p| p.x <= 0.10 && p.y >= 0.7));
    }
}
