//! Automated experiment runner (step 2 of the framework, measurement half).
//!
//! "Then comes the modeling phase: experiments are automatically run where
//! parameters p_i and d_i vary in turn while evaluation metrics are
//! measured." [`ExperimentRunner`] sweeps the mechanism's whole
//! [`ConfigSpace`] under a [`SweepPlan`] — a full-factorial grid with
//! per-axis point counts, or the paper's one-at-a-time design ("parameters
//! p_i … vary in turn", other axes held at their defaults) — protects the
//! dataset at every design point (optionally several times with different
//! seeds), evaluates every metric of the system's suite, and collects the
//! resulting [`SweepResult`]: a design matrix of [`ConfigPoint`]s with one
//! metric column per suite metric — the raw material behind Figure 1 and
//! Equation 2, generalized from the paper's fixed privacy/utility pair and
//! single swept scalar to any number of metrics over any number of axes.

use crate::error::CoreError;
use crate::system::SystemDefinition;
use geopriv_lppm::{ConfigPoint, ConfigSpace, ParameterDescriptor};
use geopriv_metrics::{Direction, MetricId};
use geopriv_mobility::{Dataset, UserId};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a parameter sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Number of sweep points per axis (Figure 1 uses ~25). Override
    /// individual axes with [`SweepPlan::axis_points`].
    pub points: usize,
    /// Number of protection/evaluation repetitions per design point; metric
    /// values are averaged to smooth out the randomness of the mechanism.
    pub repetitions: usize,
    /// Master seed; every (point, repetition) pair derives its own RNG from it.
    pub seed: u64,
    /// Run design points on multiple threads.
    pub parallel: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { points: 25, repetitions: 1, seed: 0xC0FFEE, parallel: true }
    }
}

impl SweepConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for zero points or repetitions.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.points < 2 {
            return Err(CoreError::InvalidConfiguration {
                reason: format!("a sweep needs at least 2 points per axis, got {}", self.points),
            });
        }
        if self.repetitions == 0 {
            return Err(CoreError::InvalidConfiguration {
                reason: "a sweep needs at least 1 repetition".to_string(),
            });
        }
        Ok(())
    }
}

/// How a multi-axis configuration space is enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SweepMode {
    /// Full-factorial grid: every combination of the per-axis sweep values.
    #[default]
    Grid,
    /// The paper's design: each axis varies in turn over its sweep values
    /// while the other axes are held at their defaults.
    OneAtATime,
}

/// The grain at which a sweep records its measurements.
///
/// Every metric evaluation computes a user-keyed breakdown either way (the
/// metrics need it for their aggregates); the grain decides whether the sweep
/// *keeps* it. At [`Grain::Dataset`] only the dataset-level means survive —
/// the historical behavior, with unchanged memory. At [`Grain::PerUser`] the
/// sweep additionally records one [`UserColumn`] per metric: one response
/// curve per user over the design points, the raw material for configuring
/// each user's LPPM individually (the paper's headline scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Grain {
    /// Record dataset-level aggregates only (the default).
    #[default]
    Dataset,
    /// Additionally record one curve per user and metric.
    PerUser,
}

/// The full description of a sweep: base [`SweepConfig`], enumeration
/// [`SweepMode`], measurement [`Grain`] and optional per-axis point-count
/// overrides.
///
/// On a one-axis space both modes enumerate exactly
/// [`ParameterDescriptor::sweep`]`(config.points)` in order — the historical
/// single-scalar behavior, bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Points per axis, repetitions, master seed, parallelism.
    pub config: SweepConfig,
    /// Grid or one-at-a-time enumeration.
    pub mode: SweepMode,
    /// Whether per-user curves are recorded alongside the dataset means.
    pub grain: Grain,
    per_axis: Vec<(String, usize)>,
    shard_users: Option<usize>,
}

impl SweepPlan {
    /// A full-factorial plan with `config.points` values per axis.
    pub fn grid(config: SweepConfig) -> Self {
        Self {
            config,
            mode: SweepMode::Grid,
            grain: Grain::Dataset,
            per_axis: Vec::new(),
            shard_users: None,
        }
    }

    /// A one-at-a-time plan with `config.points` values per axis.
    pub fn one_at_a_time(config: SweepConfig) -> Self {
        Self {
            config,
            mode: SweepMode::OneAtATime,
            grain: Grain::Dataset,
            per_axis: Vec::new(),
            shard_users: None,
        }
    }

    /// Overrides the point count of one named axis (later calls win).
    #[must_use]
    pub fn axis_points(mut self, axis: impl Into<String>, points: usize) -> Self {
        self.per_axis.push((axis.into(), points));
        self
    }

    /// Records per-user curves ([`Grain::PerUser`]) alongside the dataset
    /// means. The aggregate columns stay bit-identical to a dataset-grain
    /// sweep with the same seed.
    #[must_use]
    pub fn per_user(mut self) -> Self {
        self.grain = Grain::PerUser;
        self
    }

    /// Sets the measurement grain explicitly.
    #[must_use]
    pub fn grain(mut self, grain: Grain) -> Self {
        self.grain = grain;
        self
    }

    /// Executes the sweep in shards of at most `users` users at a time.
    ///
    /// The columnar dataset is sorted by user, so each shard is one
    /// contiguous [`geopriv_mobility::Dataset::user_slice`] copy: the live
    /// working set of a sharded sweep (shard columns, protected columns,
    /// prepared metric state) is O(shard), not O(dataset) — the execution
    /// mode that carries per-user sweeps to million-user datasets.
    ///
    /// Determinism contract: a plan whose shard covers the whole dataset
    /// (`users >= user_count`) is **bit-identical** to the unsharded run —
    /// the first shard draws exactly the [`derive_unit_seed`] streams and its
    /// samples are passed through unmerged. A genuinely multi-shard run is a
    /// *different* deterministic experiment: shard `s > 0` draws its own
    /// documented stream ([`derive_shard_seed`]), dataset-level aggregates
    /// become evaluated-trace-weighted means of the shard aggregates, and
    /// metrics that frame themselves on the actual dataset (grid metrics)
    /// build shard-local frames.
    #[must_use]
    pub fn shard_users(mut self, users: usize) -> Self {
        self.shard_users = Some(users);
        self
    }

    /// The shard size in users, if sharded execution was requested.
    pub fn user_shard_size(&self) -> Option<usize> {
        self.shard_users
    }

    /// The per-axis point counts this plan assigns to `space`, in axis order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for an invalid base
    /// config, an override naming no axis of the space, or an override below
    /// 2 points.
    pub fn counts(&self, space: &ConfigSpace) -> Result<Vec<usize>, CoreError> {
        self.config.validate()?;
        for (name, points) in &self.per_axis {
            if space.axis(name).is_none() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "axis-points override names \"{name}\", which is not an axis of the \
                         space ({})",
                        space.names().join(", ")
                    ),
                });
            }
            if *points < 2 {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!("axis \"{name}\" needs at least 2 points, got {points}"),
                });
            }
        }
        Ok(space
            .names()
            .iter()
            .map(|name| {
                self.per_axis
                    .iter()
                    .rev()
                    .find(|(n, _)| n == name)
                    .map_or(self.config.points, |(_, p)| *p)
            })
            .collect())
    }

    /// Enumerates the design points of this plan over `space`, in the
    /// deterministic order the runner assigns point indices (and therefore
    /// RNG streams) to.
    ///
    /// # Errors
    ///
    /// Propagates [`SweepPlan::counts`] errors.
    pub fn enumerate(&self, space: &ConfigSpace) -> Result<Vec<ConfigPoint>, CoreError> {
        let counts = self.counts(space)?;
        match self.mode {
            SweepMode::Grid => Ok(space.grid(&counts)?),
            SweepMode::OneAtATime => Ok(space.one_at_a_time(&counts)?),
        }
    }
}

/// The measurements of one metric across a whole sweep: one column of the
/// [`SweepResult`] column store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricColumn {
    /// Id of the metric inside the suite.
    pub id: MetricId,
    /// Which way the metric improves.
    pub direction: Direction,
    /// Mean metric value per design point (over the repetitions), aligned
    /// with [`SweepResult::points`].
    pub means: Vec<f64>,
    /// Per-repetition metric values per design point.
    pub runs: Vec<Vec<f64>>,
}

impl MetricColumn {
    /// Standard deviation of the metric over the repetitions at one design
    /// point (zero for a single repetition).
    pub fn std(&self, point: usize) -> f64 {
        self.runs.get(point).map_or(0.0, |runs| std_dev(runs))
    }
}

/// The user-resolved measurements of one metric across a whole sweep: one
/// response curve per evaluated user, recorded only when the sweep requests
/// [`Grain::PerUser`].
///
/// A metric may exclude users it cannot evaluate (POI retrieval for users
/// without POIs), so different metrics of the same sweep may resolve
/// different user sets — join them by [`UserId`], never by position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserColumn {
    /// Id of the metric inside the suite.
    pub id: MetricId,
    /// Which way the metric improves.
    pub direction: Direction,
    /// The users this metric evaluated, in dataset (trace) order.
    pub users: Vec<UserId>,
    /// `curves[u][p]`: mean metric value of `users[u]` at design point `p`
    /// (over the repetitions), aligned with [`SweepResult::points`].
    pub curves: Vec<Vec<f64>>,
}

impl UserColumn {
    /// The response curve of one user, aligned with the design points.
    pub fn curve(&self, user: UserId) -> Option<&[f64]> {
        self.users.iter().position(|u| *u == user).map(|i| self.curves[i].as_slice())
    }

    /// Number of users this metric resolved.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }
}

/// One metric evaluation as the sweep engines carry it between measurement
/// and assembly: the dataset-level aggregate, plus the user-keyed breakdown
/// when (and only when) the sweep runs at [`Grain::PerUser`] — dataset-grain
/// sweeps drop the breakdown inside the work unit, keeping their memory
/// footprint unchanged.
#[derive(Debug, Clone)]
pub(crate) struct MetricSample {
    pub(crate) value: f64,
    /// Number of evaluated traces behind `value` — the weight sharded
    /// execution combines shard aggregates with.
    pub(crate) weight: usize,
    pub(crate) per_user: Vec<(UserId, f64)>,
}

impl MetricSample {
    pub(crate) fn of(measured: &geopriv_metrics::MetricValue, grain: Grain) -> Self {
        Self {
            value: measured.value(),
            weight: measured.evaluated_count(),
            per_user: match grain {
                Grain::Dataset => Vec::new(),
                Grain::PerUser => measured.per_user().to_vec(),
            },
        }
    }

    /// Folds another shard's sample of the same (point, repetition, metric)
    /// into this one: the aggregate becomes the evaluated-trace-weighted mean
    /// and the user-keyed breakdowns concatenate (shards partition the user
    /// axis, so the keys are disjoint by construction).
    fn absorb(&mut self, shard: MetricSample) {
        let total = self.weight + shard.weight;
        if total > 0 {
            self.value = (self.value * self.weight as f64 + shard.value * shard.weight as f64)
                / total as f64;
        }
        self.weight = total;
        self.per_user.extend(shard.per_user);
    }
}

/// Groups per-unit measurements into a [`SweepResult`], reproducing the
/// historical aggregation arithmetic exactly (repetitions averaged in
/// repetition order, one column per suite metric) and — at
/// [`Grain::PerUser`] — assembling one [`UserColumn`] per metric from the
/// per-unit breakdowns.
///
/// `per_point[p][r][k]` is the sample of metric `k` at design point `p`,
/// repetition `r`. Shared by [`ExperimentRunner`] and
/// [`crate::campaign::CampaignRunner`] so both engines produce identical
/// stores by construction.
pub(crate) fn assemble_sweep(
    lppm_name: &str,
    space: ConfigSpace,
    mode: SweepMode,
    grain: Grain,
    points: Vec<ConfigPoint>,
    meta: &[(MetricId, Direction)],
    per_point: &[Vec<Vec<MetricSample>>],
) -> Result<SweepResult, CoreError> {
    let mut columns: Vec<MetricColumn> = meta
        .iter()
        .map(|(id, direction)| MetricColumn {
            id: id.clone(),
            direction: *direction,
            means: Vec::with_capacity(points.len()),
            runs: Vec::with_capacity(points.len()),
        })
        .collect();
    for point_reps in per_point {
        for (k, column) in columns.iter_mut().enumerate() {
            let runs: Vec<f64> = point_reps.iter().map(|rep| rep[k].value).collect();
            column.means.push(runs.iter().sum::<f64>() / runs.len() as f64);
            column.runs.push(runs);
        }
    }

    if grain == Grain::Dataset {
        return SweepResult::new(lppm_name, space, mode, points, columns);
    }

    // Per-user curves. A metric's evaluated-user set is derived from the
    // *actual* dataset alone (the metric contracts guarantee it), so it must
    // be identical at every (point, repetition) — anything else would make
    // the curves meaningless and is reported as an error.
    let mut user_columns = Vec::with_capacity(meta.len());
    for (k, (id, direction)) in meta.iter().enumerate() {
        let users: Vec<UserId> = per_point
            .first()
            .and_then(|reps| reps.first())
            .map(|rep| rep[k].per_user.iter().map(|(user, _)| *user).collect())
            .unwrap_or_default();
        for (p, point_reps) in per_point.iter().enumerate() {
            for (r, rep) in point_reps.iter().enumerate() {
                if rep[k].per_user.len() != users.len()
                    || rep[k].per_user.iter().zip(&users).any(|((u, _), expected)| u != expected)
                {
                    return Err(CoreError::InvalidConfiguration {
                        reason: format!(
                            "metric \"{id}\" resolved a different user set at design point {p}, \
                             repetition {r} — per-user sweeps need a breakdown that is stable \
                             across the sweep"
                        ),
                    });
                }
            }
        }
        let reps = per_point.first().map_or(0, Vec::len).max(1) as f64;
        let curves: Vec<Vec<f64>> = (0..users.len())
            .map(|u| {
                per_point
                    .iter()
                    .map(|point_reps| {
                        point_reps.iter().map(|rep| rep[k].per_user[u].1).sum::<f64>() / reps
                    })
                    .collect()
            })
            .collect();
        user_columns.push(UserColumn { id: id.clone(), direction: *direction, users, curves });
    }
    SweepResult::with_user_columns(lppm_name, space, mode, points, columns, user_columns)
}

fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Derives the RNG seed of one `(point, repetition)` work unit from the
/// sweep's master seed.
///
/// This is the seed contract shared by [`ExperimentRunner`] and
/// [`crate::campaign::CampaignRunner`]: because the derived seed depends only
/// on the master seed, the point index and the repetition index — never on
/// scheduling, thread count or the position of the unit inside a larger
/// campaign — any execution strategy reproduces the exact same random streams.
pub fn derive_unit_seed(master_seed: u64, point_index: usize, repetition: usize) -> u64 {
    master_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((point_index as u64) << 32)
        .wrapping_add(repetition as u64)
}

/// Derives the RNG seed of one `(point, repetition, shard)` work unit of a
/// sharded sweep ([`SweepPlan::shard_users`]).
///
/// Shard 0 draws **exactly** the [`derive_unit_seed`] stream — this is what
/// makes a whole-dataset shard bit-identical to the unsharded run. Every
/// later shard remixes the unit seed with its shard index, so shards are
/// independent deterministic streams regardless of scheduling.
pub fn derive_shard_seed(
    master_seed: u64,
    point_index: usize,
    repetition: usize,
    shard: usize,
) -> u64 {
    let unit = derive_unit_seed(master_seed, point_index, repetition);
    if shard == 0 {
        unit
    } else {
        unit.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(shard as u64)
    }
}

/// Runs `count` independent work items on a shared work-stealing pool and
/// returns their results in index order.
///
/// Sequential execution (`parallel == false`, a single item, or a single
/// available core) calls `work` in index order on the current thread; parallel
/// execution lets each thread atomically claim the next unclaimed index. The
/// output is indistinguishable between the two modes as long as `work(i)` is
/// a pure function of `i`.
pub(crate) fn run_indexed<T, F>(count: usize, parallel: bool, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(count).max(1);
    if !parallel || threads == 1 {
        return (0..count).map(work).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    let next_index = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next_index.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= count {
                    break;
                }
                let result = work(i);
                results.lock()[i] = Some(result);
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every work item was executed"))
        .collect()
}

/// The result of a full sweep: the design matrix (one [`ConfigPoint`] per
/// measured configuration, in enumeration order) and a per-metric column
/// store, one [`MetricColumn`] per suite metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Name of the mechanism that was swept.
    pub lppm_name: String,
    /// The swept configuration space.
    pub space: ConfigSpace,
    /// How the space was enumerated.
    pub mode: SweepMode,
    /// The grain the sweep was recorded at. At [`Grain::Dataset`] (the
    /// historical behavior) `user_columns` is empty.
    pub grain: Grain,
    /// The measured design points, in enumeration order.
    pub points: Vec<ConfigPoint>,
    /// One column per metric, in suite order.
    pub columns: Vec<MetricColumn>,
    /// One user-resolved column per metric (suite order), recorded only at
    /// [`Grain::PerUser`].
    pub user_columns: Vec<UserColumn>,
}

impl SweepResult {
    /// Builds a dataset-grain result, validating that every design point
    /// belongs to the space, that every column has one mean (and, when
    /// per-repetition runs are recorded, one run list) per point and that
    /// metric ids are unique.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for foreign points,
    /// ragged columns or duplicate ids.
    pub fn new(
        lppm_name: impl Into<String>,
        space: ConfigSpace,
        mode: SweepMode,
        points: Vec<ConfigPoint>,
        columns: Vec<MetricColumn>,
    ) -> Result<Self, CoreError> {
        for point in &points {
            space.check(point).map_err(CoreError::from)?;
        }
        let mut seen = std::collections::BTreeSet::new();
        for column in &columns {
            if column.means.len() != points.len() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "metric \"{}\" has {} means for {} design points",
                        column.id,
                        column.means.len(),
                        points.len()
                    ),
                });
            }
            // An empty runs vector means "per-repetition values not recorded"
            // (synthetic sweeps); anything else must align with the points.
            if !column.runs.is_empty() && column.runs.len() != points.len() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "metric \"{}\" has {} run lists for {} design points",
                        column.id,
                        column.runs.len(),
                        points.len()
                    ),
                });
            }
            if !seen.insert(column.id.clone()) {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!("duplicate metric id \"{}\" in sweep result", column.id),
                });
            }
        }
        Ok(Self {
            lppm_name: lppm_name.into(),
            space,
            mode,
            grain: Grain::Dataset,
            points,
            columns,
            user_columns: Vec::new(),
        })
    }

    /// Builds a per-user ([`Grain::PerUser`]) result: the dataset-grain
    /// column store plus one [`UserColumn`] per metric.
    ///
    /// # Errors
    ///
    /// As [`SweepResult::new`], plus: a user column referencing a metric
    /// that has no aggregate column (or disagreeing on its direction),
    /// duplicate users inside a column, or curves not aligned with the
    /// design points.
    pub fn with_user_columns(
        lppm_name: impl Into<String>,
        space: ConfigSpace,
        mode: SweepMode,
        points: Vec<ConfigPoint>,
        columns: Vec<MetricColumn>,
        user_columns: Vec<UserColumn>,
    ) -> Result<Self, CoreError> {
        let mut result = Self::new(lppm_name, space, mode, points, columns)?;
        let mut seen = std::collections::BTreeSet::new();
        for user_column in &user_columns {
            let Some(column) = result.columns.iter().find(|c| c.id == user_column.id) else {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "user column \"{}\" has no matching aggregate column",
                        user_column.id
                    ),
                });
            };
            if column.direction != user_column.direction {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "user column \"{}\" disagrees with its aggregate column's direction",
                        user_column.id
                    ),
                });
            }
            if !seen.insert(user_column.id.clone()) {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!("duplicate user column \"{}\"", user_column.id),
                });
            }
            if user_column.curves.len() != user_column.users.len() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "user column \"{}\" has {} curves for {} users",
                        user_column.id,
                        user_column.curves.len(),
                        user_column.users.len()
                    ),
                });
            }
            let mut users = std::collections::BTreeSet::new();
            for user in &user_column.users {
                if !users.insert(*user) {
                    return Err(CoreError::InvalidConfiguration {
                        reason: format!("user column \"{}\" repeats {user}", user_column.id),
                    });
                }
            }
            for curve in &user_column.curves {
                if curve.len() != result.points.len() {
                    return Err(CoreError::InvalidConfiguration {
                        reason: format!(
                            "user column \"{}\" has a curve with {} values for {} design points",
                            user_column.id,
                            curve.len(),
                            result.points.len()
                        ),
                    });
                }
            }
        }
        result.grain = Grain::PerUser;
        result.user_columns = user_columns;
        Ok(result)
    }

    /// Builds a one-axis result from plain parameter values — the historical
    /// single-scalar constructor, used by synthetic sweeps and tests.
    ///
    /// # Errors
    ///
    /// As [`SweepResult::new`], plus out-of-range parameter values.
    pub fn from_axis(
        lppm_name: impl Into<String>,
        axis: ParameterDescriptor,
        parameters: &[f64],
        columns: Vec<MetricColumn>,
    ) -> Result<Self, CoreError> {
        let space = ConfigSpace::single(axis);
        let points = parameters
            .iter()
            .map(|&value| space.point_from_coords(&[value]))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CoreError::from)?;
        Self::new(lppm_name, space, SweepMode::Grid, points, columns)
    }

    /// Number of design points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` for an empty design (never produced by a runner).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The values of one named axis across the design matrix, aligned with
    /// [`SweepResult::points`].
    pub fn axis_values(&self, axis: &str) -> Option<Vec<f64>> {
        self.space.axis(axis)?;
        Some(self.points.iter().map(|p| p.get(axis).expect("points belong to the space")).collect())
    }

    /// The single axis of a one-axis sweep, or `None` for multi-axis sweeps.
    pub fn single_axis(&self) -> Option<&ParameterDescriptor> {
        self.space.single_axis()
    }

    /// The swept scalar values of a one-axis sweep (legacy 1-D accessor).
    ///
    /// # Panics
    ///
    /// Panics when the sweep covers more than one axis — use
    /// [`SweepResult::axis_values`] there.
    pub fn parameters(&self) -> Vec<f64> {
        let axis = self
            .single_axis()
            .unwrap_or_else(|| {
                panic!(
                    "sweep covers {} axes ({}); use axis_values() instead of parameters()",
                    self.space.len(),
                    self.space.names().join(", ")
                )
            })
            .name()
            .to_string();
        self.axis_values(&axis).expect("the single axis exists")
    }

    /// The metric ids, in suite order.
    pub fn ids(&self) -> Vec<MetricId> {
        self.columns.iter().map(|c| c.id.clone()).collect()
    }

    /// The column of one metric.
    pub fn column(&self, id: &MetricId) -> Option<&MetricColumn> {
        self.columns.iter().find(|c| &c.id == id)
    }

    /// The user-resolved column of one metric (only present at
    /// [`Grain::PerUser`]).
    pub fn user_column(&self, id: &MetricId) -> Option<&UserColumn> {
        self.user_columns.iter().find(|c| &c.id == id)
    }

    /// Every user resolved by at least one metric, in order of first
    /// appearance across the user columns (suite order).
    pub fn users(&self) -> Vec<UserId> {
        let mut users = Vec::new();
        for column in &self.user_columns {
            for user in &column.users {
                if !users.contains(user) {
                    users.push(*user);
                }
            }
        }
        users
    }

    /// The mean values of one metric, aligned with [`SweepResult::points`].
    pub fn values(&self, id: &MetricId) -> Option<&[f64]> {
        self.column(id).map(|c| c.means.as_slice())
    }

    /// The first column improving in `direction` — how the paper's "the
    /// privacy curve" / "the utility curve" map onto a column store.
    pub fn column_by_direction(&self, direction: Direction) -> Option<&MetricColumn> {
        self.columns.iter().find(|c| c.direction == direction)
    }
}

/// Runs configuration-space sweeps for a [`SystemDefinition`] on a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRunner {
    plan: SweepPlan,
}

impl ExperimentRunner {
    /// Creates a runner sweeping the full-factorial grid with the given
    /// sweep configuration (`config.points` values per axis).
    pub fn new(config: SweepConfig) -> Self {
        Self { plan: SweepPlan::grid(config) }
    }

    /// Creates a runner with an explicit [`SweepPlan`] (mode and per-axis
    /// point counts).
    pub fn with_plan(plan: SweepPlan) -> Self {
        Self { plan }
    }

    /// The sweep configuration.
    pub fn config(&self) -> SweepConfig {
        self.plan.config
    }

    /// The full sweep plan.
    pub fn plan(&self) -> &SweepPlan {
        &self.plan
    }

    /// Runs the sweep: for every design point of the plan, protect the
    /// dataset and evaluate every metric of the suite, in suite order.
    ///
    /// The actual-side metric state (POI extraction, bounding boxes — see
    /// [`geopriv_metrics::PrivacyMetric::prepare`]) is prepared once for the
    /// whole sweep and reused at every `(point, repetition)` sample; the
    /// metrics guarantee this is bit-identical to direct evaluation.
    ///
    /// Results are deterministic for a given `(dataset, config.seed)` pair,
    /// regardless of the number of threads.
    ///
    /// # Errors
    ///
    /// Propagates configuration, protection and metric errors.
    pub fn run(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
    ) -> Result<SweepResult, CoreError> {
        let space = system.space();
        let points = self.plan.enumerate(&space)?;
        let per_point = match self.plan.user_shard_size() {
            Some(0) => {
                return Err(CoreError::InvalidConfiguration {
                    reason: "a sharded sweep needs a shard size of at least 1 user".to_string(),
                })
            }
            // A shard covering the whole dataset is the unsharded run: same
            // data, same shard-0 (= unit) seeds, no merge arithmetic.
            Some(users) if users < dataset.user_count() => {
                self.measure_sharded(system, dataset, &points, users)?
            }
            _ => self.measure_shard(system, dataset, &points, 0)?,
        };

        let meta: Vec<(MetricId, Direction)> =
            system.suite().iter().map(|m| (m.id(), m.direction())).collect();
        assemble_sweep(
            system.factory().name(),
            space,
            self.plan.mode,
            self.plan.grain,
            points,
            &meta,
            &per_point,
        )
    }

    /// Measures every design point against one dataset (the whole dataset,
    /// or one user shard of it), preparing the actual-side metric state once.
    fn measure_shard(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
        points: &[ConfigPoint],
        shard: usize,
    ) -> Result<Vec<Vec<Vec<MetricSample>>>, CoreError> {
        let prepared: Vec<geopriv_metrics::PreparedState> = system
            .suite()
            .iter()
            .map(|m| m.prepare(dataset).map_err(CoreError::from))
            .collect::<Result<_, _>>()?;

        // Per point: per repetition: per metric (suite order) sample.
        run_indexed(points.len(), self.plan.config.parallel, |i| {
            self.measure_point(system, dataset, &prepared, i, &points[i], shard)
        })
        .into_iter()
        .collect()
    }

    /// Sharded execution: runs the whole design over one contiguous user
    /// shard at a time and folds the shards together ([`MetricSample::absorb`]).
    /// Only one shard's columns, protected copies and prepared metric state
    /// are live at any moment, so peak memory is O(shard), not O(dataset).
    fn measure_sharded(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
        points: &[ConfigPoint],
        shard_users: usize,
    ) -> Result<Vec<Vec<Vec<MetricSample>>>, CoreError> {
        let user_count = dataset.user_count();
        let mut merged: Vec<Vec<Vec<MetricSample>>> = Vec::new();
        for (shard, start) in (0..user_count).step_by(shard_users).enumerate() {
            let slice = dataset.user_slice(start..(start + shard_users).min(user_count))?;
            let shard_points = self.measure_shard(system, &slice, points, shard)?;
            if shard == 0 {
                merged = shard_points;
            } else {
                for (merged_reps, shard_reps) in merged.iter_mut().zip(shard_points) {
                    for (merged_rep, shard_rep) in merged_reps.iter_mut().zip(shard_reps) {
                        for (merged_sample, shard_sample) in merged_rep.iter_mut().zip(shard_rep) {
                            merged_sample.absorb(shard_sample);
                        }
                    }
                }
            }
        }
        Ok(merged)
    }

    fn measure_point(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
        prepared: &[geopriv_metrics::PreparedState],
        index: usize,
        point: &ConfigPoint,
        shard: usize,
    ) -> Result<Vec<Vec<MetricSample>>, CoreError> {
        let lppm = system.factory().instantiate_at(point)?;
        let mut reps = Vec::with_capacity(self.plan.config.repetitions);
        for repetition in 0..self.plan.config.repetitions {
            // Derive a per-(point, repetition, shard) seed so parallel
            // execution and sequential execution see exactly the same random
            // streams; shard 0 is the historical per-(point, repetition) seed.
            let mut rng = StdRng::seed_from_u64(derive_shard_seed(
                self.plan.config.seed,
                index,
                repetition,
                shard,
            ));
            let protected = lppm.protect_dataset(dataset, &mut rng)?;
            let mut samples = Vec::with_capacity(system.suite().len());
            for (metric, state) in system.suite().iter().zip(prepared) {
                let measured = metric.evaluate_prepared(state, dataset, &protected)?;
                samples.push(MetricSample::of(&measured, self.plan.grain));
            }
            reps.push(samples);
        }
        Ok(reps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{GeoIndistinguishabilityFactory, GridCloakingFactory, PipelineFactory};
    use geopriv_lppm::ParameterScale;
    use geopriv_metrics::{AreaCoverage, PoiRetrieval};
    use geopriv_mobility::generator::TaxiFleetBuilder;

    fn small_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(77);
        TaxiFleetBuilder::new()
            .drivers(3)
            .duration_hours(4.0)
            .sampling_interval_s(60.0)
            .build(&mut rng)
            .unwrap()
    }

    fn small_config() -> SweepConfig {
        SweepConfig { points: 6, repetitions: 1, seed: 42, parallel: true }
    }

    fn privacy_id() -> MetricId {
        MetricId::new("poi-retrieval")
    }

    fn utility_id() -> MetricId {
        MetricId::new("area-coverage")
    }

    fn epsilon_axis() -> ParameterDescriptor {
        ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap()
    }

    fn composed_system() -> SystemDefinition {
        SystemDefinition::with_pair(
            Box::new(
                PipelineFactory::new()
                    .then(GeoIndistinguishabilityFactory::new())
                    .then(GridCloakingFactory::with_range(100.0, 2000.0).unwrap()),
            ),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(SweepConfig::default().validate().is_ok());
        assert!(SweepConfig { points: 1, ..SweepConfig::default() }.validate().is_err());
        assert!(SweepConfig { repetitions: 0, ..SweepConfig::default() }.validate().is_err());
    }

    #[test]
    fn plans_resolve_per_axis_counts() {
        let space = composed_system().space();
        let plan = SweepPlan::grid(small_config());
        assert_eq!(plan.counts(&space).unwrap(), vec![6, 6]);
        let plan = plan.axis_points("cell_size", 3);
        assert_eq!(plan.counts(&space).unwrap(), vec![6, 3]);
        // Later overrides win.
        let plan = plan.axis_points("cell_size", 4);
        assert_eq!(plan.counts(&space).unwrap(), vec![6, 4]);
        assert_eq!(plan.enumerate(&space).unwrap().len(), 24);
        // Unknown axis and degenerate counts are typed errors.
        assert!(SweepPlan::grid(small_config()).axis_points("sigma", 5).counts(&space).is_err());
        assert!(SweepPlan::grid(small_config()).axis_points("epsilon", 1).counts(&space).is_err());
        assert!(SweepPlan::grid(SweepConfig { points: 0, ..small_config() })
            .counts(&space)
            .is_err());
    }

    #[test]
    fn sweep_produces_ordered_bounded_samples() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let runner = ExperimentRunner::new(small_config());
        let result = runner.run(&system, &dataset).unwrap();

        assert_eq!(result.len(), 6);
        assert!(!result.is_empty());
        assert_eq!(result.lppm_name, "geo-indistinguishability");
        assert_eq!(result.space.names(), vec!["epsilon"]);
        assert_eq!(result.mode, SweepMode::Grid);
        assert_eq!(result.ids(), vec![privacy_id(), utility_id()]);
        assert_eq!(result.column(&privacy_id()).unwrap().direction, Direction::LowerIsBetter);
        assert_eq!(result.column(&utility_id()).unwrap().direction, Direction::HigherIsBetter);
        assert_eq!(result.column_by_direction(Direction::LowerIsBetter).unwrap().id, privacy_id());

        // Parameters are sorted and span exactly the paper's range: the sweep
        // pins both endpoints, no floating-point drift tolerated.
        let parameters = result.parameters();
        assert!(parameters.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(parameters[0], 1e-4);
        assert_eq!(*parameters.last().unwrap(), 1.0);
        assert_eq!(result.axis_values("epsilon").unwrap(), parameters);
        assert!(result.axis_values("sigma").is_none());
        assert_eq!(result.single_axis().unwrap().name(), "epsilon");

        // Metrics are bounded.
        for column in &result.columns {
            assert_eq!(column.means.len(), 6);
            for (point, mean) in column.means.iter().enumerate() {
                assert!((0.0..=1.0).contains(mean), "{} = {mean}", column.id);
                assert_eq!(column.runs[point].len(), 1);
                assert_eq!(column.std(point), 0.0);
            }
        }

        // The qualitative shape of Figure 1: privacy and utility are (weakly)
        // higher at the largest epsilon than at the smallest.
        for column in &result.columns {
            assert!(column.means.last().unwrap() >= column.means.first().unwrap());
        }
    }

    #[test]
    fn multi_axis_grids_cover_the_full_factorial() {
        let dataset = small_dataset();
        let system = composed_system();
        let plan = SweepPlan::grid(SweepConfig { points: 3, ..small_config() });
        let result = ExperimentRunner::with_plan(plan).run(&system, &dataset).unwrap();

        assert_eq!(result.len(), 9);
        assert_eq!(result.space.names(), vec!["epsilon", "cell_size"]);
        // Row-major order: the first three points share the epsilon minimum.
        for point in &result.points[..3] {
            assert_eq!(point.get("epsilon"), Some(1e-4));
        }
        assert_eq!(result.points[0].get("cell_size"), Some(100.0));
        assert_eq!(result.points[2].get("cell_size"), Some(2000.0));
        // Every column is aligned with the design matrix and bounded.
        for column in &result.columns {
            assert_eq!(column.means.len(), 9);
            assert!(column.means.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn one_at_a_time_holds_other_axes_at_defaults() {
        let dataset = small_dataset();
        let system = composed_system();
        let plan = SweepPlan::one_at_a_time(SweepConfig { points: 3, ..small_config() });
        let result = ExperimentRunner::with_plan(plan).run(&system, &dataset).unwrap();

        assert_eq!(result.mode, SweepMode::OneAtATime);
        assert_eq!(result.len(), 6);
        let cell_default = system.space().axis("cell_size").unwrap().default_value();
        let epsilon_default = system.space().axis("epsilon").unwrap().default_value();
        for point in &result.points[..3] {
            assert_eq!(point.get("cell_size"), Some(cell_default));
        }
        for point in &result.points[3..] {
            assert_eq!(point.get("epsilon"), Some(epsilon_default));
        }
    }

    #[test]
    fn per_user_grain_keeps_aggregates_identical_and_records_curves() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let dataset_grain = ExperimentRunner::new(small_config()).run(&system, &dataset).unwrap();
        let per_user = ExperimentRunner::with_plan(SweepPlan::grid(small_config()).per_user())
            .run(&system, &dataset)
            .unwrap();

        // The grain is opt-in: dataset-grain sweeps record nothing per user.
        assert_eq!(dataset_grain.grain, Grain::Dataset);
        assert!(dataset_grain.user_columns.is_empty());
        assert!(dataset_grain.users().is_empty());
        assert_eq!(per_user.grain, Grain::PerUser);

        // The aggregate store is bit-identical — same seeds, same arithmetic.
        assert_eq!(per_user.points, dataset_grain.points);
        assert_eq!(per_user.columns, dataset_grain.columns);

        // One user column per metric, every curve aligned with the design.
        assert_eq!(per_user.user_columns.len(), per_user.columns.len());
        for column in &per_user.user_columns {
            assert!(column.user_count() >= 1, "{}", column.id);
            assert_eq!(column.curves.len(), column.users.len());
            for curve in &column.curves {
                assert_eq!(curve.len(), per_user.len());
                assert!(curve.iter().all(|v| (0.0..=1.0).contains(v)));
            }
            // With one repetition the aggregate mean at each point is exactly
            // the mean of the user curves (same values, same summation order).
            for point in 0..per_user.len() {
                let mean = column.curves.iter().map(|c| c[point]).sum::<f64>()
                    / column.user_count() as f64;
                assert_eq!(
                    mean,
                    per_user.column(&column.id).unwrap().means[point],
                    "{} point {point}",
                    column.id
                );
            }
        }

        // Per-user accessors: the utility metric covers every dataset user.
        let coverage = per_user.user_column(&utility_id()).unwrap();
        assert_eq!(coverage.user_count(), dataset.len());
        for trace in dataset.iter() {
            assert!(coverage.curve(trace.user()).is_some());
        }
        assert!(coverage.curve(geopriv_mobility::UserId::new(9999)).is_none());
        assert!(!per_user.users().is_empty());
        assert!(per_user.user_column(&MetricId::new("nope")).is_none());
    }

    #[test]
    fn whole_dataset_shard_is_bit_identical_to_unsharded() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let unsharded = ExperimentRunner::with_plan(SweepPlan::grid(small_config()).per_user())
            .run(&system, &dataset)
            .unwrap();
        // Any shard size covering every user takes the passthrough path.
        for shard_users in [dataset.user_count(), dataset.user_count() + 10, usize::MAX] {
            let sharded = ExperimentRunner::with_plan(
                SweepPlan::grid(small_config()).per_user().shard_users(shard_users),
            )
            .run(&system, &dataset)
            .unwrap();
            assert_eq!(sharded, unsharded, "shard size {shard_users}");
        }
    }

    #[test]
    fn multi_shard_sweeps_are_deterministic_and_cover_every_user() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let plan = || SweepPlan::grid(small_config()).per_user().shard_users(1);
        let sharded = ExperimentRunner::with_plan(plan()).run(&system, &dataset).unwrap();
        // Deterministic: the same sharded plan reproduces itself exactly.
        assert_eq!(sharded, ExperimentRunner::with_plan(plan()).run(&system, &dataset).unwrap());

        // The design matrix and column shape are those of the unsharded run.
        let unsharded = ExperimentRunner::with_plan(SweepPlan::grid(small_config()).per_user())
            .run(&system, &dataset)
            .unwrap();
        assert_eq!(sharded.points, unsharded.points);
        assert_eq!(sharded.ids(), unsharded.ids());

        // Every user of every metric is covered, in the same dataset order
        // (shards partition the user axis contiguously), and every value is
        // bounded like the unsharded measurements.
        for (sharded_col, unsharded_col) in sharded.user_columns.iter().zip(&unsharded.user_columns)
        {
            assert_eq!(sharded_col.users, unsharded_col.users, "{}", sharded_col.id);
            for curve in &sharded_col.curves {
                assert_eq!(curve.len(), sharded.len());
                assert!(curve.iter().all(|v| (0.0..=1.0).contains(v)));
            }
        }
        for column in &sharded.columns {
            assert!(column.means.iter().all(|v| (0.0..=1.0).contains(v)));
        }

        // Shard 0 of a multi-shard run draws the unit-seed streams, so the
        // first user's curve differs from the unsharded run only where later
        // shards would — i.e. not at all: it is the same single-user slice
        // protected under the same seed. (The *aggregates* differ, because
        // shards 1+ draw their own streams.)
        assert_ne!(sharded.columns, unsharded.columns);
    }

    #[test]
    fn sharded_aggregates_are_the_trace_weighted_mean_of_shard_aggregates() {
        // One user per shard and one trace per user: the weighted mean
        // reduces to the plain mean of the per-user values — which is exactly
        // what the per-user curves record, so the invariant checked in
        // `per_user_grain_keeps_aggregates_identical_and_records_curves`
        // must hold shard-merged too.
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let sharded =
            ExperimentRunner::with_plan(SweepPlan::grid(small_config()).per_user().shard_users(1))
                .run(&system, &dataset)
                .unwrap();
        for column in &sharded.user_columns {
            for point in 0..sharded.len() {
                let mean = column.curves.iter().map(|c| c[point]).sum::<f64>()
                    / column.user_count() as f64;
                let aggregate = sharded.column(&column.id).unwrap().means[point];
                assert!(
                    (mean - aggregate).abs() < 1e-12,
                    "{} point {point}: {mean} vs {aggregate}",
                    column.id
                );
            }
        }
    }

    #[test]
    fn zero_shard_size_is_rejected() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let plan = SweepPlan::grid(small_config()).shard_users(0);
        assert_eq!(plan.user_shard_size(), Some(0));
        assert!(ExperimentRunner::with_plan(plan).run(&system, &dataset).is_err());
    }

    #[test]
    fn shard_seeds_extend_unit_seeds() {
        // Shard 0 is the unit-seed identity — the passthrough guarantee.
        for point in 0..8 {
            for rep in 0..4 {
                assert_eq!(derive_shard_seed(42, point, rep, 0), derive_unit_seed(42, point, rep));
            }
        }
        // Distinct (point, rep, shard) units never collide in a realistic sweep.
        let mut seen = std::collections::BTreeSet::new();
        for point in 0..16 {
            for rep in 0..4 {
                for shard in 0..32 {
                    assert!(seen.insert(derive_shard_seed(42, point, rep, shard)));
                }
            }
        }
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let parallel = ExperimentRunner::new(SweepConfig { parallel: true, ..small_config() })
            .run(&system, &dataset)
            .unwrap();
        let sequential = ExperimentRunner::new(SweepConfig { parallel: false, ..small_config() })
            .run(&system, &dataset)
            .unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn sweeps_are_deterministic_in_the_seed() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let run = |seed| {
            ExperimentRunner::new(SweepConfig { seed, ..small_config() })
                .run(&system, &dataset)
                .unwrap()
        };
        assert_eq!(run(1), run(1));
        // Different seeds give different measurements (the mechanism is random).
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn repetitions_are_recorded_and_averaged() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let config = SweepConfig { points: 3, repetitions: 3, seed: 5, parallel: true };
        let result = ExperimentRunner::new(config).run(&system, &dataset).unwrap();
        for column in &result.columns {
            for (point, runs) in column.runs.iter().enumerate() {
                assert_eq!(runs.len(), 3);
                let mean: f64 = runs.iter().sum::<f64>() / 3.0;
                assert!((mean - column.means[point]).abs() < 1e-12);
                assert!(column.std(point) >= 0.0);
            }
        }
    }

    #[test]
    fn unit_seeds_are_unique_and_scheduling_independent() {
        // Distinct (point, repetition) pairs in a realistic sweep never share
        // a seed under one master seed.
        let mut seen = std::collections::BTreeSet::new();
        for point in 0..64 {
            for rep in 0..16 {
                assert!(seen.insert(derive_unit_seed(42, point, rep)));
            }
        }
        // The derivation is a pure function of its three inputs.
        assert_eq!(derive_unit_seed(7, 3, 1), derive_unit_seed(7, 3, 1));
        assert_ne!(derive_unit_seed(7, 3, 1), derive_unit_seed(8, 3, 1));
    }

    #[test]
    fn run_indexed_preserves_index_order_in_both_modes() {
        let sequential = run_indexed(17, false, |i| i * i);
        let parallel = run_indexed(17, true, |i| i * i);
        assert_eq!(sequential, parallel);
        assert_eq!(sequential, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert!(run_indexed(0, true, |i| i).is_empty());
    }

    #[test]
    fn sweep_result_constructor_validates() {
        let column = |id: &str, means: Vec<f64>| MetricColumn {
            id: MetricId::new(id),
            direction: Direction::HigherIsBetter,
            runs: means.iter().map(|&m| vec![m]).collect(),
            means,
        };
        let axis = || ParameterDescriptor::new("p", 0.05, 0.5, ParameterScale::Linear).unwrap();
        assert!(SweepResult::from_axis(
            "m",
            axis(),
            &[0.1, 0.2],
            vec![column("a", vec![0.0, 1.0]), column("b", vec![1.0, 0.0])],
        )
        .is_ok());
        // Out-of-range design points are rejected.
        assert!(SweepResult::from_axis(
            "m",
            axis(),
            &[0.1, 2.0],
            vec![column("a", vec![0.0, 1.0])]
        )
        .is_err());
        // Ragged column.
        assert!(
            SweepResult::from_axis("m", axis(), &[0.1, 0.2], vec![column("a", vec![0.0])]).is_err()
        );
        // Runs recorded but not aligned with the points.
        let mut misaligned = column("a", vec![0.0, 1.0]);
        misaligned.runs.pop();
        assert!(SweepResult::from_axis("m", axis(), &[0.1, 0.2], vec![misaligned]).is_err());
        // Empty runs are the "not recorded" convention used by synthetic sweeps.
        let mut unrecorded = column("a", vec![0.0, 1.0]);
        unrecorded.runs.clear();
        assert!(SweepResult::from_axis("m", axis(), &[0.1, 0.2], vec![unrecorded]).is_ok());
        // Duplicate id.
        assert!(SweepResult::from_axis(
            "m",
            axis(),
            &[0.1, 0.2],
            vec![column("a", vec![0.0, 1.0]), column("a", vec![1.0, 0.0])],
        )
        .is_err());
        // Points from a different space are rejected by the full constructor.
        let foreign = ConfigSpace::single(epsilon_axis()).point(&[("epsilon", 0.01)]).unwrap();
        assert!(SweepResult::new(
            "m",
            ConfigSpace::single(axis()),
            SweepMode::Grid,
            vec![foreign],
            vec![column("a", vec![0.5])],
        )
        .is_err());
    }

    #[test]
    fn invalid_config_is_rejected_by_run() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let runner = ExperimentRunner::new(SweepConfig { points: 1, ..SweepConfig::default() });
        assert!(runner.run(&system, &dataset).is_err());
    }
}
