//! Automated experiment runner (step 2 of the framework, measurement half).
//!
//! "Then comes the modeling phase: experiments are automatically run where
//! parameters p_i and d_i vary in turn while evaluation metrics are
//! measured." [`ExperimentRunner`] sweeps the mechanism's configuration
//! parameter over its range, protects the dataset at every sweep point
//! (optionally several times with different seeds), evaluates the privacy and
//! utility metrics, and collects the resulting [`SweepResult`] — the raw
//! material behind Figure 1 and Equation 2.

use crate::error::CoreError;
use crate::system::SystemDefinition;
use geopriv_lppm::ParameterScale;
use geopriv_mobility::Dataset;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a parameter sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Number of sweep points across the parameter range (Figure 1 uses ~25).
    pub points: usize,
    /// Number of protection/evaluation repetitions per point; metric values
    /// are averaged to smooth out the randomness of the mechanism.
    pub repetitions: usize,
    /// Master seed; every (point, repetition) pair derives its own RNG from it.
    pub seed: u64,
    /// Run sweep points on multiple threads.
    pub parallel: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { points: 25, repetitions: 1, seed: 0xC0FFEE, parallel: true }
    }
}

impl SweepConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for zero points or repetitions.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.points < 2 {
            return Err(CoreError::InvalidConfiguration {
                reason: format!("a sweep needs at least 2 points, got {}", self.points),
            });
        }
        if self.repetitions == 0 {
            return Err(CoreError::InvalidConfiguration {
                reason: "a sweep needs at least 1 repetition".to_string(),
            });
        }
        Ok(())
    }
}

/// The measurements collected at one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSample {
    /// The parameter value (e.g. ε in m⁻¹).
    pub parameter: f64,
    /// Mean privacy-metric value over the repetitions.
    pub privacy: f64,
    /// Mean utility-metric value over the repetitions.
    pub utility: f64,
    /// Per-repetition privacy values.
    pub privacy_runs: Vec<f64>,
    /// Per-repetition utility values.
    pub utility_runs: Vec<f64>,
}

impl SweepSample {
    /// Standard deviation of the privacy metric over the repetitions
    /// (zero for a single repetition).
    pub fn privacy_std(&self) -> f64 {
        std_dev(&self.privacy_runs)
    }

    /// Standard deviation of the utility metric over the repetitions.
    pub fn utility_std(&self) -> f64 {
        std_dev(&self.utility_runs)
    }
}

fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Derives the RNG seed of one `(point, repetition)` work unit from the
/// sweep's master seed.
///
/// This is the seed contract shared by [`ExperimentRunner`] and
/// [`crate::campaign::CampaignRunner`]: because the derived seed depends only
/// on the master seed, the point index and the repetition index — never on
/// scheduling, thread count or the position of the unit inside a larger
/// campaign — any execution strategy reproduces the exact same random streams.
pub fn derive_unit_seed(master_seed: u64, point_index: usize, repetition: usize) -> u64 {
    master_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((point_index as u64) << 32)
        .wrapping_add(repetition as u64)
}

/// Runs `count` independent work items on a shared work-stealing pool and
/// returns their results in index order.
///
/// Sequential execution (`parallel == false`, a single item, or a single
/// available core) calls `work` in index order on the current thread; parallel
/// execution lets each thread atomically claim the next unclaimed index. The
/// output is indistinguishable between the two modes as long as `work(i)` is
/// a pure function of `i`.
pub(crate) fn run_indexed<T, F>(count: usize, parallel: bool, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(count).max(1);
    if !parallel || threads == 1 {
        return (0..count).map(work).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    let next_index = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next_index.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= count {
                    break;
                }
                let result = work(i);
                results.lock()[i] = Some(result);
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every work item was executed"))
        .collect()
}

/// The result of a full parameter sweep: one [`SweepSample`] per point,
/// sorted by increasing parameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Name of the mechanism that was swept.
    pub lppm_name: String,
    /// Name of the swept parameter.
    pub parameter_name: String,
    /// Scale of the swept parameter.
    pub parameter_scale: ParameterScale,
    /// Name of the privacy metric.
    pub privacy_metric_name: String,
    /// Name of the utility metric.
    pub utility_metric_name: String,
    /// The per-point measurements, sorted by parameter value.
    pub samples: Vec<SweepSample>,
}

impl SweepResult {
    /// The swept parameter values.
    pub fn parameters(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.parameter).collect()
    }

    /// The mean privacy values, aligned with [`SweepResult::parameters`].
    pub fn privacy_values(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.privacy).collect()
    }

    /// The mean utility values, aligned with [`SweepResult::parameters`].
    pub fn utility_values(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.utility).collect()
    }
}

/// Runs parameter sweeps for a [`SystemDefinition`] on a dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExperimentRunner {
    config: SweepConfig,
}

impl ExperimentRunner {
    /// Creates a runner with the given sweep configuration.
    pub fn new(config: SweepConfig) -> Self {
        Self { config }
    }

    /// The sweep configuration.
    pub fn config(&self) -> SweepConfig {
        self.config
    }

    /// Runs the sweep: for every parameter value, protect the dataset and
    /// evaluate both metrics.
    ///
    /// The actual-side metric state (POI extraction, bounding boxes — see
    /// [`geopriv_metrics::PrivacyMetric::prepare`]) is prepared once for the
    /// whole sweep and reused at every `(point, repetition)` sample; the
    /// metrics guarantee this is bit-identical to direct evaluation.
    ///
    /// Results are deterministic for a given `(dataset, config.seed)` pair,
    /// regardless of the number of threads.
    ///
    /// # Errors
    ///
    /// Propagates configuration, protection and metric errors.
    pub fn run(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
    ) -> Result<SweepResult, CoreError> {
        self.config.validate()?;
        let descriptor = system.parameter();
        let values = descriptor.sweep(self.config.points);
        let prepared = PreparedPair {
            privacy: system.privacy_metric().prepare(dataset).map_err(CoreError::from)?,
            utility: system.utility_metric().prepare(dataset).map_err(CoreError::from)?,
        };

        let samples: Vec<SweepSample> = if self.config.parallel {
            run_indexed(values.len(), true, |i| {
                self.measure_point(system, dataset, &prepared, i, values[i])
            })
            .into_iter()
            .collect::<Result<Vec<_>, CoreError>>()?
        } else {
            values
                .iter()
                .enumerate()
                .map(|(i, &v)| self.measure_point(system, dataset, &prepared, i, v))
                .collect::<Result<Vec<_>, CoreError>>()?
        };

        Ok(SweepResult {
            lppm_name: system.factory().name().to_string(),
            parameter_name: descriptor.name().to_string(),
            parameter_scale: descriptor.scale(),
            privacy_metric_name: system.privacy_metric().name().to_string(),
            utility_metric_name: system.utility_metric().name().to_string(),
            samples,
        })
    }

    fn measure_point(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
        prepared: &PreparedPair,
        index: usize,
        value: f64,
    ) -> Result<SweepSample, CoreError> {
        let lppm = system.factory().instantiate(value)?;
        let mut privacy_runs = Vec::with_capacity(self.config.repetitions);
        let mut utility_runs = Vec::with_capacity(self.config.repetitions);
        for repetition in 0..self.config.repetitions {
            // Derive a per-(point, repetition) seed so parallel execution and
            // sequential execution see exactly the same random streams.
            let mut rng =
                StdRng::seed_from_u64(derive_unit_seed(self.config.seed, index, repetition));
            let protected = lppm.protect_dataset(dataset, &mut rng)?;
            privacy_runs.push(
                system
                    .privacy_metric()
                    .evaluate_prepared(&prepared.privacy, dataset, &protected)?
                    .value(),
            );
            utility_runs.push(
                system
                    .utility_metric()
                    .evaluate_prepared(&prepared.utility, dataset, &protected)?
                    .value(),
            );
        }
        Ok(SweepSample {
            parameter: value,
            privacy: privacy_runs.iter().sum::<f64>() / privacy_runs.len() as f64,
            utility: utility_runs.iter().sum::<f64>() / utility_runs.len() as f64,
            privacy_runs,
            utility_runs,
        })
    }
}

/// The prepared actual-side state of a system's two metrics.
struct PreparedPair {
    privacy: geopriv_metrics::PreparedState,
    utility: geopriv_metrics::PreparedState,
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_mobility::generator::TaxiFleetBuilder;

    fn small_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(77);
        TaxiFleetBuilder::new()
            .drivers(3)
            .duration_hours(4.0)
            .sampling_interval_s(60.0)
            .build(&mut rng)
            .unwrap()
    }

    fn small_config() -> SweepConfig {
        SweepConfig { points: 6, repetitions: 1, seed: 42, parallel: true }
    }

    #[test]
    fn config_validation() {
        assert!(SweepConfig::default().validate().is_ok());
        assert!(SweepConfig { points: 1, ..SweepConfig::default() }.validate().is_err());
        assert!(SweepConfig { repetitions: 0, ..SweepConfig::default() }.validate().is_err());
    }

    #[test]
    fn sweep_produces_ordered_bounded_samples() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let runner = ExperimentRunner::new(small_config());
        let result = runner.run(&system, &dataset).unwrap();

        assert_eq!(result.samples.len(), 6);
        assert_eq!(result.lppm_name, "geo-indistinguishability");
        assert_eq!(result.parameter_name, "epsilon");
        assert_eq!(result.privacy_metric_name, "poi-retrieval");
        assert_eq!(result.utility_metric_name, "area-coverage");

        // Parameters are sorted and span exactly the paper's range: the sweep
        // pins both endpoints, no floating-point drift tolerated.
        let params = result.parameters();
        assert!(params.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(params[0], 1e-4);
        assert_eq!(*params.last().unwrap(), 1.0);

        // Metrics are bounded.
        for s in &result.samples {
            assert!((0.0..=1.0).contains(&s.privacy), "privacy {}", s.privacy);
            assert!((0.0..=1.0).contains(&s.utility), "utility {}", s.utility);
            assert_eq!(s.privacy_runs.len(), 1);
            assert_eq!(s.privacy_std(), 0.0);
            assert_eq!(s.utility_std(), 0.0);
        }

        // The qualitative shape of Figure 1: privacy and utility are (weakly)
        // higher at the largest epsilon than at the smallest.
        let first = &result.samples[0];
        let last = &result.samples[result.samples.len() - 1];
        assert!(last.privacy >= first.privacy);
        assert!(last.utility >= first.utility);
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let parallel = ExperimentRunner::new(SweepConfig { parallel: true, ..small_config() })
            .run(&system, &dataset)
            .unwrap();
        let sequential = ExperimentRunner::new(SweepConfig { parallel: false, ..small_config() })
            .run(&system, &dataset)
            .unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn sweeps_are_deterministic_in_the_seed() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let run = |seed| {
            ExperimentRunner::new(SweepConfig { seed, ..small_config() })
                .run(&system, &dataset)
                .unwrap()
        };
        assert_eq!(run(1), run(1));
        // Different seeds give different measurements (the mechanism is random).
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn repetitions_are_recorded_and_averaged() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let config = SweepConfig { points: 3, repetitions: 3, seed: 5, parallel: true };
        let result = ExperimentRunner::new(config).run(&system, &dataset).unwrap();
        for s in &result.samples {
            assert_eq!(s.privacy_runs.len(), 3);
            assert_eq!(s.utility_runs.len(), 3);
            let mean: f64 = s.privacy_runs.iter().sum::<f64>() / 3.0;
            assert!((mean - s.privacy).abs() < 1e-12);
            assert!(s.privacy_std() >= 0.0);
        }
    }

    #[test]
    fn unit_seeds_are_unique_and_scheduling_independent() {
        // Distinct (point, repetition) pairs in a realistic sweep never share
        // a seed under one master seed.
        let mut seen = std::collections::BTreeSet::new();
        for point in 0..64 {
            for rep in 0..16 {
                assert!(seen.insert(derive_unit_seed(42, point, rep)));
            }
        }
        // The derivation is a pure function of its three inputs.
        assert_eq!(derive_unit_seed(7, 3, 1), derive_unit_seed(7, 3, 1));
        assert_ne!(derive_unit_seed(7, 3, 1), derive_unit_seed(8, 3, 1));
    }

    #[test]
    fn run_indexed_preserves_index_order_in_both_modes() {
        let sequential = run_indexed(17, false, |i| i * i);
        let parallel = run_indexed(17, true, |i| i * i);
        assert_eq!(sequential, parallel);
        assert_eq!(sequential, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert!(run_indexed(0, true, |i| i).is_empty());
    }

    #[test]
    fn invalid_config_is_rejected_by_run() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let runner = ExperimentRunner::new(SweepConfig { points: 1, ..SweepConfig::default() });
        assert!(runner.run(&system, &dataset).is_err());
    }
}
