//! Automated experiment runner (step 2 of the framework, measurement half).
//!
//! "Then comes the modeling phase: experiments are automatically run where
//! parameters p_i and d_i vary in turn while evaluation metrics are
//! measured." [`ExperimentRunner`] sweeps the mechanism's whole
//! [`ConfigSpace`] under a [`SweepPlan`] — a full-factorial grid with
//! per-axis point counts, or the paper's one-at-a-time design ("parameters
//! p_i … vary in turn", other axes held at their defaults) — protects the
//! dataset at every design point (optionally several times with different
//! seeds), evaluates every metric of the system's suite, and collects the
//! resulting [`SweepResult`]: a design matrix of [`ConfigPoint`]s with one
//! metric column per suite metric — the raw material behind Figure 1 and
//! Equation 2, generalized from the paper's fixed privacy/utility pair and
//! single swept scalar to any number of metrics over any number of axes.

use crate::error::CoreError;
use crate::system::SystemDefinition;
use geopriv_lppm::{ConfigPoint, ConfigSpace, ParameterDescriptor, ParameterScale};
use geopriv_metrics::{Direction, MetricId};
use geopriv_mobility::{Dataset, UserId};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a parameter sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Number of sweep points per axis (Figure 1 uses ~25). Override
    /// individual axes with [`SweepPlan::axis_points`].
    pub points: usize,
    /// Number of protection/evaluation repetitions per design point; metric
    /// values are averaged to smooth out the randomness of the mechanism.
    pub repetitions: usize,
    /// Master seed; every (point, repetition) pair derives its own RNG from it.
    pub seed: u64,
    /// Run design points on multiple threads.
    pub parallel: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { points: 25, repetitions: 1, seed: 0xC0FFEE, parallel: true }
    }
}

impl SweepConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for zero points or repetitions.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.points < 2 {
            return Err(CoreError::InvalidConfiguration {
                reason: format!("a sweep needs at least 2 points per axis, got {}", self.points),
            });
        }
        if self.repetitions == 0 {
            return Err(CoreError::InvalidConfiguration {
                reason: "a sweep needs at least 1 repetition".to_string(),
            });
        }
        Ok(())
    }
}

/// How a multi-axis configuration space is enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SweepMode {
    /// Full-factorial grid: every combination of the per-axis sweep values.
    #[default]
    Grid,
    /// The paper's design: each axis varies in turn over its sweep values
    /// while the other axes are held at their defaults.
    OneAtATime,
    /// Staged evaluate→model→refine loop: a coarse full-factorial pass
    /// (the plan's per-axis counts), then model-guided refinement of the
    /// regions where the fit is still uncertain — constraint boundaries,
    /// active-zone edges and worst-residual gaps — until the plan's
    /// evaluation budget ([`SweepPlan::refine`]) is spent. The design
    /// matrix is irregular: refined points interleave with the coarse grid
    /// in coordinate order.
    Adaptive,
}

/// The grain at which a sweep records its measurements.
///
/// Every metric evaluation computes a user-keyed breakdown either way (the
/// metrics need it for their aggregates); the grain decides whether the sweep
/// *keeps* it. At [`Grain::Dataset`] only the dataset-level means survive —
/// the historical behavior, with unchanged memory. At [`Grain::PerUser`] the
/// sweep additionally records one [`UserColumn`] per metric: one response
/// curve per user over the design points, the raw material for configuring
/// each user's LPPM individually (the paper's headline scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Grain {
    /// Record dataset-level aggregates only (the default).
    #[default]
    Dataset,
    /// Additionally record one curve per user and metric.
    PerUser,
}

/// A named interval `(axis, (lo, hi))` on one configuration axis — the
/// currency of the adaptive feedback loop: [`SweepPlan::focus`] consumes
/// them and `Configurator::constraint_boundaries` produces them.
pub type AxisInterval = (String, (f64, f64));

/// The full description of a sweep: base [`SweepConfig`], enumeration
/// [`SweepMode`], measurement [`Grain`] and optional per-axis point-count
/// overrides.
///
/// On a one-axis space both modes enumerate exactly
/// [`ParameterDescriptor::sweep`]`(config.points)` in order — the historical
/// single-scalar behavior, bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Points per axis, repetitions, master seed, parallelism.
    pub config: SweepConfig,
    /// Grid, one-at-a-time or adaptive enumeration.
    pub mode: SweepMode,
    /// Whether per-user curves are recorded alongside the dataset means.
    pub grain: Grain,
    per_axis: Vec<(String, usize)>,
    shard_users: Option<usize>,
    refine_budget: Option<usize>,
    focus: Vec<AxisInterval>,
    cache_dir: Option<std::path::PathBuf>,
}

impl SweepPlan {
    /// A full-factorial plan with `config.points` values per axis.
    pub fn grid(config: SweepConfig) -> Self {
        Self {
            config,
            mode: SweepMode::Grid,
            grain: Grain::Dataset,
            per_axis: Vec::new(),
            shard_users: None,
            refine_budget: None,
            focus: Vec::new(),
            cache_dir: None,
        }
    }

    /// A one-at-a-time plan with `config.points` values per axis.
    pub fn one_at_a_time(config: SweepConfig) -> Self {
        Self { mode: SweepMode::OneAtATime, ..Self::grid(config) }
    }

    /// An adaptive plan: a coarse grid of `config.points` values per axis,
    /// then model-guided refinement until `budget` total evaluations.
    /// Equivalent to `SweepPlan::grid(config).refine(budget)`.
    pub fn adaptive(config: SweepConfig, budget: usize) -> Self {
        Self::grid(config).refine(budget)
    }

    /// Overrides the point count of one named axis (later calls win).
    #[must_use]
    pub fn axis_points(mut self, axis: impl Into<String>, points: usize) -> Self {
        self.per_axis.push((axis.into(), points));
        self
    }

    /// Records per-user curves ([`Grain::PerUser`]) alongside the dataset
    /// means. The aggregate columns stay bit-identical to a dataset-grain
    /// sweep with the same seed.
    #[must_use]
    pub fn per_user(mut self) -> Self {
        self.grain = Grain::PerUser;
        self
    }

    /// Sets the measurement grain explicitly.
    #[must_use]
    pub fn grain(mut self, grain: Grain) -> Self {
        self.grain = grain;
        self
    }

    /// Executes the sweep in shards of at most `users` users at a time.
    ///
    /// The columnar dataset is sorted by user, so each shard is one
    /// contiguous [`geopriv_mobility::Dataset::user_slice`] copy: the live
    /// working set of a sharded sweep (shard columns, protected columns,
    /// prepared metric state) is O(shard), not O(dataset) — the execution
    /// mode that carries per-user sweeps to million-user datasets.
    ///
    /// Determinism contract: a plan whose shard covers the whole dataset
    /// (`users >= user_count`) is **bit-identical** to the unsharded run —
    /// the first shard draws exactly the [`derive_unit_seed`] streams and its
    /// samples are passed through unmerged. A genuinely multi-shard run is a
    /// *different* deterministic experiment: shard `s > 0` draws its own
    /// documented stream ([`derive_shard_seed`]), dataset-level aggregates
    /// become evaluated-trace-weighted means of the shard aggregates, and
    /// metrics that frame themselves on the actual dataset (grid metrics)
    /// build shard-local frames.
    #[must_use]
    pub fn shard_users(mut self, users: usize) -> Self {
        self.shard_users = Some(users);
        self
    }

    /// The shard size in users, if sharded execution was requested.
    pub fn user_shard_size(&self) -> Option<usize> {
        self.shard_users
    }

    /// Persists (and reuses) per-user measurements under `dir`, switching the
    /// runner to the **cached per-user execution mode**
    /// ([`ExperimentRunner::run_cached`]).
    ///
    /// Determinism contract: like a genuinely multi-shard run, cached
    /// execution is its own documented deterministic experiment — every user
    /// is protected under her own identity-keyed stream
    /// ([`derive_user_seed`]), so re-measuring *only the changed users* draws
    /// exactly the bits a full run would have drawn for them. Within the
    /// mode, a warm run (any subset of users served from the cache) is
    /// **bit-identical** to a cold run (empty cache, every user measured):
    /// the cache stores raw `f64` bit patterns and the merge arithmetic sees
    /// identical inputs in identical (dataset) user order either way. A
    /// corrupt or unwritable cache degrades to the cold path with a warning
    /// ([`crate::cache::CacheStats::warnings`]) — never a different result.
    #[must_use]
    pub fn cached(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The measurement-cache directory, if cached execution was requested.
    pub fn cache_directory(&self) -> Option<&std::path::Path> {
        self.cache_dir.as_deref()
    }

    /// Switches the plan to [`SweepMode::Adaptive`] with a total evaluation
    /// budget of `budget` design points (coarse pass included).
    ///
    /// The coarse pass is the plan's full-factorial grid; whatever budget is
    /// left after it is spent on model-guided refinement. A budget no larger
    /// than the coarse pass therefore disables refinement entirely — such a
    /// run measures **bit-identical** values to [`SweepPlan::grid`] at the
    /// same counts (only the result's `mode` tag differs).
    #[must_use]
    pub fn refine(mut self, budget: usize) -> Self {
        self.mode = SweepMode::Adaptive;
        self.refine_budget = Some(budget);
        self
    }

    /// The total evaluation budget of an adaptive plan, if one was set.
    pub fn refinement_budget(&self) -> Option<usize> {
        self.refine_budget
    }

    /// Asks adaptive refinement to prioritize the interval `[lo, hi]` of one
    /// named axis — the hook the [`crate::configurator::Configurator`] uses
    /// to feed constraint boundaries
    /// ([`crate::configurator::Configurator::constraint_boundaries`]) back
    /// into planning. A degenerate interval (`lo == hi`) marks a single
    /// boundary location; the planner bisects the widest measured gap
    /// overlapping each focus interval first.
    #[must_use]
    pub fn focus(mut self, axis: impl Into<String>, lo: f64, hi: f64) -> Self {
        self.focus.push((axis.into(), (lo, hi)));
        self
    }

    /// The focus intervals refinement prioritizes, in insertion order.
    pub fn focus_intervals(&self) -> &[AxisInterval] {
        &self.focus
    }

    /// The per-axis point counts this plan assigns to `space`, in axis order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for an invalid base
    /// config, an override naming no axis of the space, or an override below
    /// 2 points.
    pub fn counts(&self, space: &ConfigSpace) -> Result<Vec<usize>, CoreError> {
        self.config.validate()?;
        for (name, points) in &self.per_axis {
            if space.axis(name).is_none() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "axis-points override names \"{name}\", which is not an axis of the \
                         space ({})",
                        space.names().join(", ")
                    ),
                });
            }
            if *points < 2 {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!("axis \"{name}\" needs at least 2 points, got {points}"),
                });
            }
        }
        for (name, (lo, hi)) in &self.focus {
            if space.axis(name).is_none() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "focus interval names \"{name}\", which is not an axis of the space ({})",
                        space.names().join(", ")
                    ),
                });
            }
            if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!("focus interval [{lo}, {hi}] on \"{name}\" is not ordered"),
                });
            }
        }
        Ok(space
            .names()
            .iter()
            .map(|name| {
                self.per_axis
                    .iter()
                    .rev()
                    .find(|(n, _)| n == name)
                    .map_or(self.config.points, |(_, p)| *p)
            })
            .collect())
    }

    /// Enumerates the *statically known* design points of this plan over
    /// `space`, in the deterministic order the runner assigns point indices
    /// (and therefore RNG streams) to. For [`SweepMode::Adaptive`] this is
    /// the coarse pass only — refinement points are chosen at run time from
    /// the measurements and cannot be enumerated up front.
    ///
    /// # Errors
    ///
    /// Propagates [`SweepPlan::counts`] errors.
    pub fn enumerate(&self, space: &ConfigSpace) -> Result<Vec<ConfigPoint>, CoreError> {
        let counts = self.counts(space)?;
        match self.mode {
            SweepMode::Grid | SweepMode::Adaptive => Ok(space.grid(&counts)?),
            SweepMode::OneAtATime => Ok(space.one_at_a_time(&counts)?),
        }
    }
}

/// The measurements of one metric across a whole sweep: one column of the
/// [`SweepResult`] column store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricColumn {
    /// Id of the metric inside the suite.
    pub id: MetricId,
    /// Which way the metric improves.
    pub direction: Direction,
    /// Mean metric value per design point (over the repetitions), aligned
    /// with [`SweepResult::points`].
    pub means: Vec<f64>,
    /// Per-repetition metric values per design point.
    pub runs: Vec<Vec<f64>>,
}

impl MetricColumn {
    /// Standard deviation of the metric over the repetitions at one design
    /// point (zero for a single repetition).
    pub fn std(&self, point: usize) -> f64 {
        self.runs.get(point).map_or(0.0, |runs| std_dev(runs))
    }
}

/// The user-resolved measurements of one metric across a whole sweep: one
/// response curve per evaluated user, recorded only when the sweep requests
/// [`Grain::PerUser`].
///
/// A metric may exclude users it cannot evaluate (POI retrieval for users
/// without POIs), so different metrics of the same sweep may resolve
/// different user sets — join them by [`UserId`], never by position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserColumn {
    /// Id of the metric inside the suite.
    pub id: MetricId,
    /// Which way the metric improves.
    pub direction: Direction,
    /// The users this metric evaluated, in dataset (trace) order.
    pub users: Vec<UserId>,
    /// `curves[u][p]`: mean metric value of `users[u]` at design point `p`
    /// (over the repetitions), aligned with [`SweepResult::points`].
    pub curves: Vec<Vec<f64>>,
}

impl UserColumn {
    /// The response curve of one user, aligned with the design points.
    pub fn curve(&self, user: UserId) -> Option<&[f64]> {
        self.users
            .iter()
            .position(|u| *u == user)
            .and_then(|i| self.curves.get(i))
            .map(Vec::as_slice)
    }

    /// Number of users this metric resolved.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }
}

/// One metric evaluation as the sweep engines carry it between measurement
/// and assembly: the dataset-level aggregate, plus the user-keyed breakdown
/// when (and only when) the sweep runs at [`Grain::PerUser`] — dataset-grain
/// sweeps drop the breakdown inside the work unit, keeping their memory
/// footprint unchanged.
#[derive(Debug, Clone)]
pub(crate) struct MetricSample {
    pub(crate) value: f64,
    /// Number of evaluated traces behind `value` — the weight sharded
    /// execution combines shard aggregates with.
    pub(crate) weight: usize,
    pub(crate) per_user: Vec<(UserId, f64)>,
}

impl MetricSample {
    pub(crate) fn of(measured: &geopriv_metrics::MetricValue, grain: Grain) -> Self {
        Self {
            value: measured.value(),
            weight: measured.evaluated_count(),
            per_user: match grain {
                Grain::Dataset => Vec::new(),
                Grain::PerUser => measured.per_user().to_vec(),
            },
        }
    }

    /// Folds another shard's sample of the same (point, repetition, metric)
    /// into this one: the aggregate becomes the evaluated-trace-weighted mean
    /// and the user-keyed breakdowns concatenate (shards partition the user
    /// axis, so the keys are disjoint by construction).
    fn absorb(&mut self, shard: MetricSample) {
        let total = self.weight + shard.weight;
        if total > 0 {
            self.value = (self.value * self.weight as f64 + shard.value * shard.weight as f64)
                / total as f64;
        }
        self.weight = total;
        self.per_user.extend(shard.per_user);
    }
}

/// Groups per-unit measurements into a [`SweepResult`], reproducing the
/// historical aggregation arithmetic exactly (repetitions averaged in
/// repetition order, one column per suite metric) and — at
/// [`Grain::PerUser`] — assembling one [`UserColumn`] per metric from the
/// per-unit breakdowns.
///
/// `per_point[p][r][k]` is the sample of metric `k` at design point `p`,
/// repetition `r`. Shared by [`ExperimentRunner`] and
/// [`crate::campaign::CampaignRunner`] so both engines produce identical
/// stores by construction.
pub(crate) fn assemble_sweep(
    lppm_name: &str,
    space: ConfigSpace,
    mode: SweepMode,
    grain: Grain,
    points: Vec<ConfigPoint>,
    meta: &[(MetricId, Direction)],
    per_point: &[Vec<Vec<MetricSample>>],
) -> Result<SweepResult, CoreError> {
    let mut columns: Vec<MetricColumn> = meta
        .iter()
        .map(|(id, direction)| MetricColumn {
            id: id.clone(),
            direction: *direction,
            means: Vec::with_capacity(points.len()),
            runs: Vec::with_capacity(points.len()),
        })
        .collect();
    for point_reps in per_point {
        for (k, column) in columns.iter_mut().enumerate() {
            let runs: Vec<f64> = point_reps
                .iter()
                .map(|rep| sample_at(rep, k).map(|sample| sample.value))
                .collect::<Result<_, _>>()?;
            column.means.push(runs.iter().sum::<f64>() / runs.len() as f64);
            column.runs.push(runs);
        }
    }

    if grain == Grain::Dataset {
        return SweepResult::new(lppm_name, space, mode, points, columns);
    }

    // Per-user curves. A metric's evaluated-user set is derived from the
    // *actual* dataset alone (the metric contracts guarantee it), so it must
    // be identical at every (point, repetition) — anything else would make
    // the curves meaningless and is reported as an error.
    let mut user_columns = Vec::with_capacity(meta.len());
    for (k, (id, direction)) in meta.iter().enumerate() {
        let users: Vec<UserId> = match per_point.first().and_then(|reps| reps.first()) {
            Some(rep) => sample_at(rep, k)?.per_user.iter().map(|(user, _)| *user).collect(),
            None => Vec::new(),
        };
        for (p, point_reps) in per_point.iter().enumerate() {
            for (r, rep) in point_reps.iter().enumerate() {
                let sample = sample_at(rep, k)?;
                if sample.per_user.len() != users.len()
                    || sample.per_user.iter().zip(&users).any(|((u, _), expected)| u != expected)
                {
                    return Err(CoreError::InvalidConfiguration {
                        reason: format!(
                            "metric \"{id}\" resolved a different user set at design point {p}, \
                             repetition {r} — per-user sweeps need a breakdown that is stable \
                             across the sweep"
                        ),
                    });
                }
            }
        }
        let reps = per_point.first().map_or(0, Vec::len).max(1) as f64;
        // curves[u][p], built point-major: each point sums its repetitions in
        // repetition order, exactly the historical per-user arithmetic.
        let mut curves: Vec<Vec<f64>> = vec![Vec::with_capacity(per_point.len()); users.len()];
        for point_reps in per_point {
            let mut sums = vec![0.0f64; users.len()];
            for rep in point_reps {
                for ((_, value), sum) in sample_at(rep, k)?.per_user.iter().zip(sums.iter_mut()) {
                    *sum += value;
                }
            }
            for (curve, sum) in curves.iter_mut().zip(sums) {
                curve.push(sum / reps);
            }
        }
        user_columns.push(UserColumn { id: id.clone(), direction: *direction, users, curves });
    }
    SweepResult::with_user_columns(lppm_name, space, mode, points, columns, user_columns)
}

/// The sample of metric `k` inside one repetition's suite-ordered samples, as
/// a typed error instead of a panic when the unit is malformed (an engine
/// invariant violation).
fn sample_at(rep: &[MetricSample], k: usize) -> Result<&MetricSample, CoreError> {
    rep.get(k).ok_or_else(|| CoreError::Internal {
        reason: format!("work unit carries {} metric samples, needed sample {k}", rep.len()),
    })
}

fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Derives the RNG seed of one `(point, repetition)` work unit from the
/// sweep's master seed.
///
/// This is the seed contract shared by [`ExperimentRunner`] and
/// [`crate::campaign::CampaignRunner`]: because the derived seed depends only
/// on the master seed, the point index and the repetition index — never on
/// scheduling, thread count or the position of the unit inside a larger
/// campaign — any execution strategy reproduces the exact same random streams.
pub fn derive_unit_seed(master_seed: u64, point_index: usize, repetition: usize) -> u64 {
    master_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((point_index as u64) << 32)
        .wrapping_add(repetition as u64)
}

/// Derives the RNG seed of one `(point, repetition, shard)` work unit of a
/// sharded sweep ([`SweepPlan::shard_users`]).
///
/// Shard 0 draws **exactly** the [`derive_unit_seed`] stream — this is what
/// makes a whole-dataset shard bit-identical to the unsharded run. Every
/// later shard remixes the unit seed with its shard index, so shards are
/// independent deterministic streams regardless of scheduling.
pub fn derive_shard_seed(
    master_seed: u64,
    point_index: usize,
    repetition: usize,
    shard: usize,
) -> u64 {
    remix_shard(derive_unit_seed(master_seed, point_index, repetition), shard)
}

/// Remixes a per-unit seed with a shard index: shard 0 is the identity (the
/// passthrough guarantee behind whole-dataset shards), every later shard is
/// an independent deterministic stream. Shared by the positional
/// ([`derive_shard_seed`]) and point-identity ([`derive_point_seed`]) seed
/// families so sharding composes identically with both.
fn remix_shard(unit_seed: u64, shard: usize) -> u64 {
    if shard == 0 {
        unit_seed
    } else {
        unit_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(shard as u64)
    }
}

/// Derives the RNG seed of one `(point, repetition)` work unit from the
/// point's *identity* rather than its position in the design enumeration.
///
/// Adaptive refinement discovers points incrementally, so a positional seed
/// ([`derive_unit_seed`]) would tie a point's random stream to the order the
/// planner happened to propose it in — any change to the refinement schedule
/// (a different budget, an extra focus interval) would perturb measurements
/// at points both schedules visit. Keying the seed on the point's stable
/// coordinate token ([`geopriv_lppm::ConfigPoint::cache_token`], an
/// axis-ordered full-precision rendering of its coordinates) makes each
/// refined point's measurement a pure function of `(master seed, point,
/// repetition)`: two adaptive runs that visit the same point measure the
/// identical value no matter when they visit it. The token is hashed with
/// FNV-1a (a fixed, platform-independent function — never the standard
/// library's randomized hasher).
///
/// Grid and one-at-a-time sweeps keep the historical positional contract;
/// the coarse pass of an adaptive sweep does too, which is what makes a
/// refinement-disabled adaptive run bit-identical to [`SweepMode::Grid`].
pub fn derive_point_seed(master_seed: u64, point: &ConfigPoint, repetition: usize) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325; // FNV-1a 64-bit offset basis.
    for byte in point.cache_token().bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3); // FNV-1a 64-bit prime.
    }
    master_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(hash)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(repetition as u64)
}

/// Derives the RNG seed of one `(point, repetition, user)` work unit of a
/// cached per-user sweep ([`SweepPlan::cached`]).
///
/// The seed is keyed on the user's *identity* — never her position in the
/// dataset — so her stream survives fleet growth, user removal and
/// reordering: re-measuring one changed user draws exactly the bits a full
/// cached run would have drawn for her, which is what makes partial
/// re-measurement merge bit-identically into a cold run's result. Each
/// user's stream is an independent remix of the positional unit seed
/// ([`derive_unit_seed`]), xor-folded with the FNV offset basis so user 0's
/// stream is distinct from the unsharded unit stream.
pub fn derive_user_seed(
    master_seed: u64,
    point_index: usize,
    repetition: usize,
    user: UserId,
) -> u64 {
    derive_unit_seed(master_seed, point_index, repetition)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(user.value() ^ 0xCBF2_9CE4_8422_2325)
}

/// How a design point derives its RNG streams: positionally (the
/// Grid/OneAtATime contract, [`derive_unit_seed`]) or from its stable
/// coordinate token ([`derive_point_seed`], adaptive refinement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seeding {
    Positional,
    PointIdentity,
}

/// Runs `count` independent work items on a shared work-stealing pool and
/// returns their results in index order.
///
/// Sequential execution (`parallel == false`, a single item, or a single
/// available core) calls `work` in index order on the current thread; parallel
/// execution lets each thread atomically claim the next unclaimed index. The
/// output is indistinguishable between the two modes as long as `work(i)` is
/// a pure function of `i`.
///
/// # Errors
///
/// Returns [`CoreError::Internal`] if a work slot was never filled — an
/// engine invariant violation that surfaces as a typed error instead of a
/// worker panic.
pub(crate) fn run_indexed<T, F>(count: usize, parallel: bool, work: F) -> Result<Vec<T>, CoreError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(count).max(1);
    if !parallel || threads == 1 {
        return Ok((0..count).map(work).collect());
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    let next_index = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next_index.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= count {
                    break;
                }
                let result = work(i);
                if let Some(slot) = results.lock().get_mut(i) {
                    *slot = Some(result);
                }
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.ok_or_else(|| CoreError::Internal {
                reason: format!("work item {i} of {count} was never executed by the pool"),
            })
        })
        .collect()
}

/// The result of a full sweep: the design matrix (one [`ConfigPoint`] per
/// measured configuration, in enumeration order) and a per-metric column
/// store, one [`MetricColumn`] per suite metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Name of the mechanism that was swept.
    pub lppm_name: String,
    /// The swept configuration space.
    pub space: ConfigSpace,
    /// How the space was enumerated.
    pub mode: SweepMode,
    /// The grain the sweep was recorded at. At [`Grain::Dataset`] (the
    /// historical behavior) `user_columns` is empty.
    pub grain: Grain,
    /// The measured design points, in enumeration order.
    pub points: Vec<ConfigPoint>,
    /// One column per metric, in suite order.
    pub columns: Vec<MetricColumn>,
    /// One user-resolved column per metric (suite order), recorded only at
    /// [`Grain::PerUser`].
    pub user_columns: Vec<UserColumn>,
}

impl SweepResult {
    /// Builds a dataset-grain result, validating that every design point
    /// belongs to the space, that every column has one mean (and, when
    /// per-repetition runs are recorded, one run list) per point and that
    /// metric ids are unique.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for foreign points,
    /// ragged columns or duplicate ids.
    pub fn new(
        lppm_name: impl Into<String>,
        space: ConfigSpace,
        mode: SweepMode,
        points: Vec<ConfigPoint>,
        columns: Vec<MetricColumn>,
    ) -> Result<Self, CoreError> {
        for point in &points {
            space.check(point).map_err(CoreError::from)?;
        }
        let mut seen = std::collections::BTreeSet::new();
        for column in &columns {
            if column.means.len() != points.len() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "metric \"{}\" has {} means for {} design points",
                        column.id,
                        column.means.len(),
                        points.len()
                    ),
                });
            }
            // An empty runs vector means "per-repetition values not recorded"
            // (synthetic sweeps); anything else must align with the points.
            if !column.runs.is_empty() && column.runs.len() != points.len() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "metric \"{}\" has {} run lists for {} design points",
                        column.id,
                        column.runs.len(),
                        points.len()
                    ),
                });
            }
            if !seen.insert(column.id.clone()) {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!("duplicate metric id \"{}\" in sweep result", column.id),
                });
            }
        }
        Ok(Self {
            lppm_name: lppm_name.into(),
            space,
            mode,
            grain: Grain::Dataset,
            points,
            columns,
            user_columns: Vec::new(),
        })
    }

    /// Builds a per-user ([`Grain::PerUser`]) result: the dataset-grain
    /// column store plus one [`UserColumn`] per metric.
    ///
    /// # Errors
    ///
    /// As [`SweepResult::new`], plus: a user column referencing a metric
    /// that has no aggregate column (or disagreeing on its direction),
    /// duplicate users inside a column, or curves not aligned with the
    /// design points.
    pub fn with_user_columns(
        lppm_name: impl Into<String>,
        space: ConfigSpace,
        mode: SweepMode,
        points: Vec<ConfigPoint>,
        columns: Vec<MetricColumn>,
        user_columns: Vec<UserColumn>,
    ) -> Result<Self, CoreError> {
        let mut result = Self::new(lppm_name, space, mode, points, columns)?;
        let mut seen = std::collections::BTreeSet::new();
        for user_column in &user_columns {
            let Some(column) = result.columns.iter().find(|c| c.id == user_column.id) else {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "user column \"{}\" has no matching aggregate column",
                        user_column.id
                    ),
                });
            };
            if column.direction != user_column.direction {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "user column \"{}\" disagrees with its aggregate column's direction",
                        user_column.id
                    ),
                });
            }
            if !seen.insert(user_column.id.clone()) {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!("duplicate user column \"{}\"", user_column.id),
                });
            }
            if user_column.curves.len() != user_column.users.len() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "user column \"{}\" has {} curves for {} users",
                        user_column.id,
                        user_column.curves.len(),
                        user_column.users.len()
                    ),
                });
            }
            let mut users = std::collections::BTreeSet::new();
            for user in &user_column.users {
                if !users.insert(*user) {
                    return Err(CoreError::InvalidConfiguration {
                        reason: format!("user column \"{}\" repeats {user}", user_column.id),
                    });
                }
            }
            for curve in &user_column.curves {
                if curve.len() != result.points.len() {
                    return Err(CoreError::InvalidConfiguration {
                        reason: format!(
                            "user column \"{}\" has a curve with {} values for {} design points",
                            user_column.id,
                            curve.len(),
                            result.points.len()
                        ),
                    });
                }
            }
        }
        result.grain = Grain::PerUser;
        result.user_columns = user_columns;
        Ok(result)
    }

    /// Builds a one-axis result from plain parameter values — the historical
    /// single-scalar constructor, used by synthetic sweeps and tests.
    ///
    /// # Errors
    ///
    /// As [`SweepResult::new`], plus out-of-range parameter values.
    pub fn from_axis(
        lppm_name: impl Into<String>,
        axis: ParameterDescriptor,
        parameters: &[f64],
        columns: Vec<MetricColumn>,
    ) -> Result<Self, CoreError> {
        let space = ConfigSpace::single(axis);
        let points = parameters
            .iter()
            .map(|&value| space.point_from_coords(&[value]))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CoreError::from)?;
        Self::new(lppm_name, space, SweepMode::Grid, points, columns)
    }

    /// Number of design points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` for an empty design (never produced by a runner).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The values of one named axis across the design matrix, aligned with
    /// [`SweepResult::points`]. `None` for an axis the space (or any design
    /// point) does not carry — never a panic, even on a malformed store.
    pub fn axis_values(&self, axis: &str) -> Option<Vec<f64>> {
        self.space.axis(axis)?;
        self.points.iter().map(|p| p.get(axis)).collect()
    }

    /// The single axis of a one-axis sweep, or `None` for multi-axis sweeps.
    pub fn single_axis(&self) -> Option<&ParameterDescriptor> {
        self.space.single_axis()
    }

    /// The swept scalar values of a one-axis sweep (legacy 1-D accessor).
    ///
    /// # Panics
    ///
    /// Panics when the sweep covers more than one axis — use
    /// [`SweepResult::axis_values`] there, or [`SweepResult::try_parameters`]
    /// for the non-panicking form.
    pub fn parameters(&self) -> Vec<f64> {
        // audit:allow(P1): documented panicking legacy accessor; try_parameters is the typed form
        self.try_parameters().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The swept scalar values of a one-axis sweep, as a typed error instead
    /// of a panic when the sweep covers more than one axis.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for a multi-axis sweep,
    /// [`CoreError::Internal`] if a design point lacks the axis (a store
    /// invariant the validating constructors rule out).
    pub fn try_parameters(&self) -> Result<Vec<f64>, CoreError> {
        let Some(axis) = self.single_axis() else {
            return Err(CoreError::InvalidConfiguration {
                reason: format!(
                    "sweep covers {} axes ({}); use axis_values() instead of parameters()",
                    self.space.len(),
                    self.space.names().join(", ")
                ),
            });
        };
        let name = axis.name().to_string();
        self.axis_values(&name).ok_or_else(|| CoreError::Internal {
            reason: format!("a design point lacks the sweep's single axis \"{name}\""),
        })
    }

    /// The metric ids, in suite order.
    pub fn ids(&self) -> Vec<MetricId> {
        self.columns.iter().map(|c| c.id.clone()).collect()
    }

    /// The column of one metric.
    pub fn column(&self, id: &MetricId) -> Option<&MetricColumn> {
        self.columns.iter().find(|c| &c.id == id)
    }

    /// The user-resolved column of one metric (only present at
    /// [`Grain::PerUser`]).
    pub fn user_column(&self, id: &MetricId) -> Option<&UserColumn> {
        self.user_columns.iter().find(|c| &c.id == id)
    }

    /// Every user resolved by at least one metric, in order of first
    /// appearance across the user columns (suite order).
    pub fn users(&self) -> Vec<UserId> {
        let mut users = Vec::new();
        for column in &self.user_columns {
            for user in &column.users {
                if !users.contains(user) {
                    users.push(*user);
                }
            }
        }
        users
    }

    /// The mean values of one metric, aligned with [`SweepResult::points`].
    pub fn values(&self, id: &MetricId) -> Option<&[f64]> {
        self.column(id).map(|c| c.means.as_slice())
    }

    /// The first column improving in `direction` — how the paper's "the
    /// privacy curve" / "the utility curve" map onto a column store.
    pub fn column_by_direction(&self, direction: Direction) -> Option<&MetricColumn> {
        self.columns.iter().find(|c| c.direction == direction)
    }
}

/// Runs configuration-space sweeps for a [`SystemDefinition`] on a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRunner {
    plan: SweepPlan,
}

impl ExperimentRunner {
    /// Creates a runner sweeping the full-factorial grid with the given
    /// sweep configuration (`config.points` values per axis).
    pub fn new(config: SweepConfig) -> Self {
        Self { plan: SweepPlan::grid(config) }
    }

    /// Creates a runner with an explicit [`SweepPlan`] (mode and per-axis
    /// point counts).
    pub fn with_plan(plan: SweepPlan) -> Self {
        Self { plan }
    }

    /// The sweep configuration.
    pub fn config(&self) -> SweepConfig {
        self.plan.config
    }

    /// The full sweep plan.
    pub fn plan(&self) -> &SweepPlan {
        &self.plan
    }

    /// Runs the sweep: for every design point of the plan, protect the
    /// dataset and evaluate every metric of the suite, in suite order.
    ///
    /// The actual-side metric state (POI extraction, bounding boxes — see
    /// [`geopriv_metrics::PrivacyMetric::prepare`]) is prepared once for the
    /// whole sweep and reused at every `(point, repetition)` sample; the
    /// metrics guarantee this is bit-identical to direct evaluation.
    ///
    /// Results are deterministic for a given `(dataset, config.seed)` pair,
    /// regardless of the number of threads.
    ///
    /// # Errors
    ///
    /// Propagates configuration, protection and metric errors.
    pub fn run(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
    ) -> Result<SweepResult, CoreError> {
        if self.plan.cache_directory().is_some() {
            return Ok(self.run_cached(system, dataset)?.result);
        }
        let space = system.space();
        if self.plan.mode == SweepMode::Adaptive {
            return self.run_adaptive(system, dataset, space);
        }
        let points = self.plan.enumerate(&space)?;
        let per_point = self.measure_points(system, dataset, &points, Seeding::Positional)?;
        assemble_sweep(
            system.factory().name(),
            space,
            self.plan.mode,
            self.plan.grain,
            points,
            &Self::suite_meta(system),
            &per_point,
        )
    }

    /// Runs the sweep in the cached per-user execution mode
    /// ([`SweepPlan::cached`]): users whose
    /// [`geopriv_metrics::DatasetFingerprint::per_user`] sub-fingerprint
    /// matches the persisted entry are decoded from the cache bit-exactly;
    /// every other user is measured on her own
    /// [`geopriv_mobility::Dataset::user_slice`] under her identity-keyed
    /// streams ([`derive_user_seed`]), and the cache file is rewritten. The
    /// merged [`SweepResult`] is bit-identical between a cold run (empty
    /// cache) and any warm run over the same dataset — see the contract on
    /// [`SweepPlan::cached`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] when the plan has no cache
    /// directory, is adaptive (refinement points depend on measurements, so
    /// per-user entries cannot be keyed up front), or is sharded (cached
    /// execution already measures one user at a time); propagates
    /// configuration, protection and metric errors. Cache integrity problems
    /// are never errors — they surface as [`crate::cache::CacheStats::warnings`]
    /// with a cold-path fallback.
    pub fn run_cached(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
    ) -> Result<CachedSweep, CoreError> {
        let Some(dir) = self.plan.cache_directory() else {
            return Err(CoreError::InvalidConfiguration {
                reason: "cached execution needs a cache directory — call SweepPlan::cached(dir)"
                    .to_string(),
            });
        };
        if self.plan.mode == SweepMode::Adaptive {
            return Err(CoreError::InvalidConfiguration {
                reason: "adaptive plans cannot be cached: refinement points depend on measured \
                         values, so per-user cache entries cannot be keyed up front"
                    .to_string(),
            });
        }
        if self.plan.user_shard_size().is_some() {
            return Err(CoreError::InvalidConfiguration {
                reason: "sharded and cached execution cannot be combined — cached execution \
                         already measures one user at a time"
                    .to_string(),
            });
        }
        let space = system.space();
        let points = self.plan.enumerate(&space)?;
        let reps = self.plan.config.repetitions;
        let meta = Self::suite_meta(system);
        let signature = cache_signature(system, &space, &self.plan, &points, &meta);
        let cache = crate::cache::MeasurementCache::open(dir);
        let (stored, mut warnings) = cache.load(&signature, points.len(), reps, meta.len());
        let stored: std::collections::BTreeMap<u64, crate::cache::CachedUserEntry> =
            stored.into_iter().map(|entry| (entry.user.value(), entry)).collect();

        // Classify every user of the dataset (in dataset order) as a cache
        // hit (sub-fingerprint unchanged) or a miss to re-measure.
        let fingerprints = geopriv_metrics::DatasetFingerprint::of(dataset).per_user();
        let mut entries: Vec<Option<crate::cache::CachedUserEntry>> =
            Vec::with_capacity(fingerprints.len());
        let mut misses: Vec<(usize, UserId, u64)> = Vec::new();
        for (index, &(user, fingerprint)) in fingerprints.iter().enumerate() {
            match stored.get(&user.value()) {
                Some(entry) if entry.fingerprint == fingerprint => {
                    entries.push(Some(entry.clone()));
                }
                _ => {
                    entries.push(None);
                    misses.push((index, user, fingerprint));
                }
            }
        }
        let hits = entries.iter().filter(|slot| slot.is_some()).count();

        // Re-measure the misses, one user-slice at a time, in parallel.
        let measured = run_indexed(misses.len(), self.plan.config.parallel, |j| {
            let Some(&(index, user, fingerprint)) = misses.get(j) else {
                return Err(CoreError::Internal {
                    reason: format!("cache miss {j} of {} out of range", misses.len()),
                });
            };
            let per_point = self.measure_user(system, dataset, index, user, &points)?;
            crate::cache::CachedUserEntry::new(
                user,
                fingerprint,
                points.len(),
                reps,
                meta.len(),
                per_point,
            )
            .ok_or_else(|| CoreError::Internal {
                reason: format!("user {user} produced a ragged measurement block"),
            })
        })?;
        for ((index, _, _), entry) in misses.iter().zip(measured) {
            let Some(slot) = entries.get_mut(*index) else {
                return Err(CoreError::Internal {
                    reason: format!("cache slot {index} out of range"),
                });
            };
            *slot = Some(entry?);
        }
        let entries: Vec<crate::cache::CachedUserEntry> = entries
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.ok_or_else(|| CoreError::Internal {
                    reason: format!("cache slot {i} was never filled"),
                })
            })
            .collect::<Result<_, _>>()?;

        // Persist the refreshed entry set (current users only — departed
        // users age out) whenever anything was re-measured.
        if !misses.is_empty() {
            warnings.extend(cache.store(&signature, &entries));
        }

        // Merge per (point, repetition, metric) across users in dataset
        // order: the first user's sample passes through, every later user is
        // absorbed as an evaluated-trace-weighted fold — the same arithmetic
        // whether a sample came from the cache or a fresh measurement.
        let mut per_point: Vec<Vec<Vec<MetricSample>>> = Vec::with_capacity(points.len());
        for p in 0..points.len() {
            let mut point_reps = Vec::with_capacity(reps);
            for r in 0..reps {
                let mut merged: Option<Vec<MetricSample>> = None;
                for entry in &entries {
                    let samples = entry.samples_at(p, r).ok_or_else(|| CoreError::Internal {
                        reason: format!(
                            "cache entry of user {} lacks sample ({p}, {r})",
                            entry.user
                        ),
                    })?;
                    let user_samples: Vec<MetricSample> = samples
                        .iter()
                        .map(|sample| MetricSample {
                            value: sample.value,
                            weight: sample.weight as usize,
                            per_user: match (self.plan.grain, sample.breakdown) {
                                (Grain::PerUser, Some(value)) => vec![(entry.user, value)],
                                _ => Vec::new(),
                            },
                        })
                        .collect();
                    match &mut merged {
                        None => merged = Some(user_samples),
                        Some(merged) => {
                            for (into, sample) in merged.iter_mut().zip(user_samples) {
                                into.absorb(sample);
                            }
                        }
                    }
                }
                point_reps.push(merged.unwrap_or_default());
            }
            per_point.push(point_reps);
        }
        let result = assemble_sweep(
            system.factory().name(),
            space,
            self.plan.mode,
            self.plan.grain,
            points,
            &meta,
            &per_point,
        )?;
        Ok(CachedSweep {
            result,
            stats: crate::cache::CacheStats {
                users: fingerprints.len(),
                hits,
                misses: misses.len(),
                warnings,
            },
        })
    }

    /// Measures one user's whole design: protect her own slice at every
    /// `(point, repetition)` under her identity-keyed seed stream, evaluate
    /// every suite metric against per-user prepared state.
    fn measure_user(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
        index: usize,
        user: UserId,
        points: &[ConfigPoint],
    ) -> Result<Vec<Vec<Vec<crate::cache::CachedSample>>>, CoreError> {
        let slice = dataset.user_slice(index..index + 1)?;
        let prepared: Vec<geopriv_metrics::PreparedState> = system
            .suite()
            .iter()
            .map(|m| m.prepare(&slice).map_err(CoreError::from))
            .collect::<Result<_, _>>()?;
        let mut per_point = Vec::with_capacity(points.len());
        for (p, point) in points.iter().enumerate() {
            let lppm = system.factory().instantiate_at(point)?;
            let mut point_reps = Vec::with_capacity(self.plan.config.repetitions);
            for repetition in 0..self.plan.config.repetitions {
                let seed = derive_user_seed(self.plan.config.seed, p, repetition, user);
                let mut rng = StdRng::seed_from_u64(seed);
                let protected = lppm.protect_dataset(&slice, &mut rng)?;
                let mut samples = Vec::with_capacity(system.suite().len());
                for (metric, state) in system.suite().iter().zip(&prepared) {
                    let measured = metric.evaluate_prepared(state, &slice, &protected)?;
                    samples.push(crate::cache::CachedSample {
                        value: measured.value(),
                        weight: measured.evaluated_count() as u64,
                        breakdown: measured.value_for(user),
                    });
                }
                point_reps.push(samples);
            }
            per_point.push(point_reps);
        }
        Ok(per_point)
    }

    fn suite_meta(system: &SystemDefinition) -> Vec<(MetricId, Direction)> {
        system.suite().iter().map(|m| (m.id(), m.direction())).collect()
    }

    /// Measures an arbitrary batch of design points — the full enumeration of
    /// a one-shot plan, or one refinement batch of an adaptive plan — with
    /// the plan's shard dispatch applied either way.
    fn measure_points(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
        points: &[ConfigPoint],
        seeding: Seeding,
    ) -> Result<Vec<Vec<Vec<MetricSample>>>, CoreError> {
        match self.plan.user_shard_size() {
            Some(0) => Err(CoreError::InvalidConfiguration {
                reason: "a sharded sweep needs a shard size of at least 1 user".to_string(),
            }),
            // A shard covering the whole dataset is the unsharded run: same
            // data, same shard-0 (= unit) seeds, no merge arithmetic.
            Some(users) if users < dataset.user_count() => {
                self.measure_sharded(system, dataset, points, users, seeding)
            }
            _ => self.measure_shard(system, dataset, points, 0, seeding),
        }
    }

    /// Measures every design point against one dataset (the whole dataset,
    /// or one user shard of it), preparing the actual-side metric state once.
    fn measure_shard(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
        points: &[ConfigPoint],
        shard: usize,
        seeding: Seeding,
    ) -> Result<Vec<Vec<Vec<MetricSample>>>, CoreError> {
        let prepared: Vec<geopriv_metrics::PreparedState> = system
            .suite()
            .iter()
            .map(|m| m.prepare(dataset).map_err(CoreError::from))
            .collect::<Result<_, _>>()?;

        // Per point: per repetition: per metric (suite order) sample.
        run_indexed(points.len(), self.plan.config.parallel, |i| {
            let Some(point) = points.get(i) else {
                return Err(CoreError::Internal {
                    reason: format!("design point {i} of {} out of range", points.len()),
                });
            };
            self.measure_point(system, dataset, &prepared, i, point, shard, seeding)
        })?
        .into_iter()
        .collect()
    }

    /// Sharded execution: runs the whole design over one contiguous user
    /// shard at a time and folds the shards together ([`MetricSample::absorb`]).
    /// Only one shard's columns, protected copies and prepared metric state
    /// are live at any moment, so peak memory is O(shard), not O(dataset).
    fn measure_sharded(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
        points: &[ConfigPoint],
        shard_users: usize,
        seeding: Seeding,
    ) -> Result<Vec<Vec<Vec<MetricSample>>>, CoreError> {
        let user_count = dataset.user_count();
        let mut merged: Vec<Vec<Vec<MetricSample>>> = Vec::new();
        for (shard, start) in (0..user_count).step_by(shard_users).enumerate() {
            let slice = dataset.user_slice(start..(start + shard_users).min(user_count))?;
            let shard_points = self.measure_shard(system, &slice, points, shard, seeding)?;
            if shard == 0 {
                merged = shard_points;
            } else {
                for (merged_reps, shard_reps) in merged.iter_mut().zip(shard_points) {
                    for (merged_rep, shard_rep) in merged_reps.iter_mut().zip(shard_reps) {
                        for (merged_sample, shard_sample) in merged_rep.iter_mut().zip(shard_rep) {
                            merged_sample.absorb(shard_sample);
                        }
                    }
                }
            }
        }
        Ok(merged)
    }

    #[allow(clippy::too_many_arguments)]
    fn measure_point(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
        prepared: &[geopriv_metrics::PreparedState],
        index: usize,
        point: &ConfigPoint,
        shard: usize,
        seeding: Seeding,
    ) -> Result<Vec<Vec<MetricSample>>, CoreError> {
        let lppm = system.factory().instantiate_at(point)?;
        let mut reps = Vec::with_capacity(self.plan.config.repetitions);
        for repetition in 0..self.plan.config.repetitions {
            // Derive a per-(point, repetition, shard) seed so parallel
            // execution and sequential execution see exactly the same random
            // streams; shard 0 is the historical per-(point, repetition) seed.
            let unit = match seeding {
                Seeding::Positional => derive_unit_seed(self.plan.config.seed, index, repetition),
                Seeding::PointIdentity => {
                    derive_point_seed(self.plan.config.seed, point, repetition)
                }
            };
            let mut rng = StdRng::seed_from_u64(remix_shard(unit, shard));
            let protected = lppm.protect_dataset(dataset, &mut rng)?;
            let mut samples = Vec::with_capacity(system.suite().len());
            for (metric, state) in system.suite().iter().zip(prepared) {
                let measured = metric.evaluate_prepared(state, dataset, &protected)?;
                samples.push(MetricSample::of(&measured, self.plan.grain));
            }
            reps.push(samples);
        }
        Ok(reps)
    }

    /// The staged evaluate→model→refine loop of [`SweepMode::Adaptive`].
    ///
    /// 1. **Coarse pass** — the plan's full-factorial grid, measured with the
    ///    exact positional seeds of [`SweepPlan::grid`] (bit-identical values
    ///    when refinement never triggers).
    /// 2. **Model** — fit the suite on everything measured so far and
    ///    diagnose it ([`crate::modeling::Modeler::diagnose`]): residuals,
    ///    active-zone edges, worst-fit points.
    /// 3. **Refine** — propose new points where the model is least certain
    ///    (focus intervals first, then zone-edge bisection, then
    ///    worst-residual gaps), measure them under point-identity seeds
    ///    ([`derive_point_seed`]) and loop until the budget is spent or no
    ///    candidate remains.
    ///
    /// At [`Grain::PerUser`] the loop applies successive halving across
    /// users: each round refits the per-user models, early-stops users whose
    /// [`crate::modeling::UserFitOutcome`] is already saturated or settled,
    /// and keeps spending zone-edge evaluations on the most uncertain half.
    fn run_adaptive(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
        space: ConfigSpace,
    ) -> Result<SweepResult, CoreError> {
        let meta = Self::suite_meta(system);
        let coarse = self.plan.enumerate(&space)?;
        let budget = self.plan.refine_budget.unwrap_or(coarse.len()).max(coarse.len());
        let samples = self.measure_points(system, dataset, &coarse, Seeding::Positional)?;
        let mut measured: Vec<(ConfigPoint, Vec<Vec<MetricSample>>)> =
            coarse.into_iter().zip(samples).collect();
        let mut seen: std::collections::BTreeSet<String> =
            measured.iter().map(|(p, _)| p.cache_token()).collect();
        let mut remaining = budget - measured.len();
        // Successive-halving state: the users still driving refinement
        // (`None` until the first per-user fit, `Some` shrinks by half each
        // round as curves settle).
        let mut active_users: Option<Vec<UserId>> = None;

        while remaining > 0 {
            let result = self.assemble_adaptive(system, &space, &meta, &mut measured)?;
            // A suite the modeler cannot fit yet gives refinement nothing to
            // steer by; return the measurements gathered so far.
            let Ok(fitted) = crate::modeling::Modeler::new().fit(&result) else { break };
            let modeler = crate::modeling::Modeler::new();
            let mut driving = vec![modeler.diagnose(&result, &fitted)?];
            if self.plan.grain == Grain::PerUser {
                let per_user = modeler.fit_per_user(&result)?;
                let ranked = rank_uncertain_users(&result, &per_user, active_users.as_deref());
                let keep = ranked.len().div_ceil(2).min(ranked.len());
                let survivors = ranked.get(..keep).unwrap_or_default();
                for (user, _) in survivors {
                    if let Some(suite) = per_user.fitted(*user) {
                        driving.push(modeler.diagnose_user(&result, suite, *user)?);
                    }
                }
                active_users = Some(survivors.iter().map(|(u, _)| *u).collect());
            }
            let per_round =
                remaining.min((2 * space.len()).max(4) + 2 * driving.len().saturating_sub(1));
            let candidates = plan_refinement(
                &space,
                &result,
                &driving,
                self.plan.focus_intervals(),
                &mut seen,
                per_round,
            )?;
            if candidates.is_empty() {
                break;
            }
            let samples =
                self.measure_points(system, dataset, &candidates, Seeding::PointIdentity)?;
            remaining -= candidates.len();
            measured.extend(candidates.into_iter().zip(samples));
        }

        self.assemble_adaptive(system, &space, &meta, &mut measured)
    }

    /// Sorts the (coarse ∪ refined) measurements into the stable coordinate
    /// order of the result's design matrix and assembles them. Grid
    /// enumeration is row-major with the last axis fastest — exactly
    /// lexicographic coordinate order — so on a refinement-free run the sort
    /// is the identity permutation and the assembled store matches
    /// [`SweepPlan::grid`] bit for bit.
    fn assemble_adaptive(
        &self,
        system: &SystemDefinition,
        space: &ConfigSpace,
        meta: &[(MetricId, Direction)],
        measured: &mut [(ConfigPoint, Vec<Vec<MetricSample>>)],
    ) -> Result<SweepResult, CoreError> {
        measured.sort_by(|(a, _), (b, _)| {
            a.coords()
                .iter()
                .zip(b.coords())
                .map(|(x, y)| x.total_cmp(&y))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let points: Vec<ConfigPoint> = measured.iter().map(|(p, _)| p.clone()).collect();
        let per_point: Vec<Vec<Vec<MetricSample>>> =
            measured.iter().map(|(_, s)| s.clone()).collect();
        assemble_sweep(
            system.factory().name(),
            space.clone(),
            SweepMode::Adaptive,
            self.plan.grain,
            points,
            meta,
            &per_point,
        )
    }
}

/// The outcome of a cached sweep ([`ExperimentRunner::run_cached`]): the
/// assembled result plus how much of it came from the persistent cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedSweep {
    /// The merged sweep — bit-identical between cold and warm executions.
    pub result: SweepResult,
    /// Cache accounting: hits, misses and any integrity warnings.
    pub stats: crate::cache::CacheStats,
}

/// Renders the signature that keys a cached sweep's file: everything that
/// pins the measured values except the users themselves — the system
/// ([`SystemDefinition::cache_key`]: mechanism name, space
/// [`ConfigSpace::cache_token`], metric cache keys), the enumeration mode,
/// the master seed, the repetition count, the ordered design-point tokens and
/// the suite's metric ids. Per-user validity is keyed separately, by each
/// entry's sub-fingerprint.
fn cache_signature(
    system: &SystemDefinition,
    space: &ConfigSpace,
    plan: &SweepPlan,
    points: &[ConfigPoint],
    meta: &[(MetricId, Direction)],
) -> String {
    let point_tokens: Vec<String> = points.iter().map(ConfigPoint::cache_token).collect();
    let metric_ids: Vec<String> =
        meta.iter().map(|(id, direction)| format!("{id}:{direction:?}")).collect();
    format!(
        "geopriv-measurement-cache-v1\nsystem={}\nspace={}\nmode={:?}\nseed={}\nrepetitions={}\n\
         metrics={}\npoints={}",
        system.cache_key(),
        space.cache_token(),
        plan.mode,
        plan.config.seed,
        plan.config.repetitions,
        metric_ids.join("|"),
        point_tokens.join(";"),
    )
}

/// Ranks the users still worth refining for, most uncertain first (ties by
/// user id for determinism). A user's uncertainty is the worst absolute
/// residual of her own fitted models against her own measured curves; users
/// whose [`crate::modeling::UserFitOutcome`] is `Unfit` (saturated or
/// otherwise unmodelable) are early-stopped — no further evaluations are
/// spent on them. `active` restricts ranking to the survivors of earlier
/// halving rounds.
fn rank_uncertain_users(
    result: &SweepResult,
    per_user: &crate::modeling::PerUserFits,
    active: Option<&[UserId]>,
) -> Vec<(UserId, f64)> {
    let mut ranked: Vec<(UserId, f64)> = per_user
        .users
        .iter()
        .filter(|fit| match active {
            Some(survivors) => survivors.contains(&fit.user),
            None => true,
        })
        .filter_map(|fit| {
            let suite = fit.outcome.fitted()?;
            let mut worst = 0.0f64;
            for model in &suite.models {
                let curve = result.user_column(&model.id)?.curve(fit.user)?;
                for (point, &value) in result.points.iter().zip(curve) {
                    let predicted = model.predict(point).ok()?;
                    worst = worst.max((value - predicted).abs());
                }
            }
            Some((fit.user, worst))
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked
}

/// The midpoint of `[a, b]` in the axis's own scale: arithmetic on linear
/// axes, geometric on logarithmic ones — the bisection step of refinement.
fn scale_midpoint(scale: ParameterScale, a: f64, b: f64) -> f64 {
    match scale {
        ParameterScale::Linear => (a + b) / 2.0,
        ParameterScale::Logarithmic => (a * b).sqrt(),
    }
}

/// The width of the gap `[a, b]` in the axis's own scale (log axes measure
/// ratios), the yardstick by which refinement picks where to bisect.
fn gap_width(scale: ParameterScale, a: f64, b: f64) -> f64 {
    match scale {
        ParameterScale::Linear => b - a,
        ParameterScale::Logarithmic => b / a,
    }
}

/// Proposes the next batch of refinement points, most valuable first, from
/// three sources in priority order:
///
/// 1. **Focus intervals** ([`SweepPlan::focus`], typically constraint
///    boundaries from
///    [`crate::configurator::Configurator::constraint_boundaries`]): bisect
///    the widest measured gap overlapping each interval.
/// 2. **Active-zone edges** (from [`crate::modeling::FitDiagnostics`], the
///    dataset suite first, then per-user suites most-uncertain-first):
///    bisect between each zone edge and its nearest measured neighbor
///    outside the zone — the bracket holding the saturation knee.
/// 3. **Worst residuals**: at each metric's worst-fit point, bisect toward
///    the neighbor on the wider-gap side of every axis.
///
/// Pure and deterministic: candidates depend only on the measurements and
/// diagnostics, never on scheduling. `seen` (every coordinate token already
/// measured or proposed) deduplicates across rounds; at most `limit`
/// candidates are returned.
fn plan_refinement(
    space: &ConfigSpace,
    result: &SweepResult,
    driving: &[crate::modeling::FitDiagnostics],
    focus: &[AxisInterval],
    seen: &mut std::collections::BTreeSet<String>,
    limit: usize,
) -> Result<Vec<ConfigPoint>, CoreError> {
    let axes = space.axes();
    // Sorted unique measured values per axis: the 1-D projections the gap
    // arithmetic works on.
    let unique: Vec<Vec<f64>> = (0..axes.len())
        .map(|i| {
            let mut values: Vec<f64> =
                result.points.iter().filter_map(|p| p.coords().get(i).copied()).collect();
            values.sort_by(f64::total_cmp);
            values.dedup();
            values
        })
        .collect();
    let mut candidates: Vec<ConfigPoint> = Vec::new();
    let push = |coords: &[f64],
                candidates: &mut Vec<ConfigPoint>,
                seen: &mut std::collections::BTreeSet<String>|
     -> Result<(), CoreError> {
        if candidates.len() >= limit {
            return Ok(());
        }
        let point = space.point_from_coords(coords).map_err(CoreError::from)?;
        if seen.insert(point.cache_token()) {
            candidates.push(point);
        }
        Ok(())
    };

    // Base coordinates for embedding a 1-D bisection into the full space:
    // the overall worst-fit point of the dataset suite (the region the model
    // is least certain about), in-zone axes untouched.
    let base: Vec<f64> = driving
        .first()
        .and_then(|diag| {
            diag.metrics
                .iter()
                .max_by(|a, b| a.max_residual().total_cmp(&b.max_residual()))
                .and_then(|m| result.points.get(m.worst_point))
                .map(ConfigPoint::coords)
        })
        .unwrap_or_else(|| axes.iter().map(ParameterDescriptor::default_value).collect());

    // 1. Constraint-boundary focus intervals.
    for (name, (lo, hi)) in focus {
        let Some(i) = axes.iter().position(|a| a.name() == name) else { continue };
        let (Some(axis), Some(values)) = (axes.get(i), unique.get(i)) else { continue };
        let widest = values
            .windows(2)
            .filter_map(|w| match w {
                [a, b] if *b >= *lo && *a <= *hi => Some((*a, *b)),
                _ => None,
            })
            .map(|(a, b)| (gap_width(axis.scale(), a, b), a, b))
            .max_by(|a, b| a.0.total_cmp(&b.0));
        if let Some((_, a, b)) = widest {
            let mut coords = base.clone();
            let Some(slot) = coords.get_mut(i) else { continue };
            *slot = scale_midpoint(axis.scale(), a, b);
            push(&coords, &mut candidates, seen)?;
        }
    }

    // 2. Active-zone edge bisection.
    for diag in driving {
        for metric in &diag.metrics {
            for (name, (zone_lo, zone_hi)) in &metric.zone_edges {
                let Some(i) = axes.iter().position(|a| a.name() == name) else { continue };
                let (Some(axis), Some(values)) = (axes.get(i), unique.get(i)) else { continue };
                let below = values.iter().rev().find(|&&v| v < *zone_lo).map(|&v| (v, *zone_lo));
                let above = values.iter().find(|&&v| v > *zone_hi).map(|&v| (*zone_hi, v));
                for (a, b) in below.into_iter().chain(above) {
                    let mut coords = base.clone();
                    let Some(slot) = coords.get_mut(i) else { continue };
                    *slot = scale_midpoint(axis.scale(), a, b);
                    push(&coords, &mut candidates, seen)?;
                }
            }
        }
    }

    // 3. Worst-residual gaps.
    for diag in driving {
        for metric in &diag.metrics {
            if metric.residuals.is_empty() {
                continue;
            }
            let Some(at_worst) = result.points.get(metric.worst_point).map(ConfigPoint::coords)
            else {
                continue;
            };
            for (i, axis) in axes.iter().enumerate() {
                let Some(values) = unique.get(i) else { continue };
                let Some(&worst_value) = at_worst.get(i) else { continue };
                let Some(position) = values.iter().position(|&v| v == worst_value) else {
                    continue;
                };
                let left =
                    position.checked_sub(1).and_then(|p| values.get(p)).map(|&v| (v, worst_value));
                let right = values.get(position + 1).map(|&v| (worst_value, v));
                let side = match (left, right) {
                    (Some(l), Some(r)) => {
                        let wider_left =
                            gap_width(axis.scale(), l.0, l.1) >= gap_width(axis.scale(), r.0, r.1);
                        Some(if wider_left { l } else { r })
                    }
                    (gap, None) | (None, gap) => gap,
                };
                if let Some((a, b)) = side {
                    let mut coords = at_worst.clone();
                    let Some(slot) = coords.get_mut(i) else { continue };
                    *slot = scale_midpoint(axis.scale(), a, b);
                    push(&coords, &mut candidates, seen)?;
                }
            }
        }
    }

    Ok(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{GeoIndistinguishabilityFactory, GridCloakingFactory, PipelineFactory};
    use geopriv_metrics::{AreaCoverage, PoiRetrieval};
    use geopriv_mobility::generator::TaxiFleetBuilder;

    fn small_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(77);
        TaxiFleetBuilder::new()
            .drivers(3)
            .duration_hours(4.0)
            .sampling_interval_s(60.0)
            .build(&mut rng)
            .unwrap()
    }

    fn small_config() -> SweepConfig {
        SweepConfig { points: 6, repetitions: 1, seed: 42, parallel: true }
    }

    fn privacy_id() -> MetricId {
        MetricId::new("poi-retrieval")
    }

    fn utility_id() -> MetricId {
        MetricId::new("area-coverage")
    }

    fn epsilon_axis() -> ParameterDescriptor {
        ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap()
    }

    fn composed_system() -> SystemDefinition {
        SystemDefinition::with_pair(
            Box::new(
                PipelineFactory::new()
                    .then(GeoIndistinguishabilityFactory::new())
                    .then(GridCloakingFactory::with_range(100.0, 2000.0).unwrap()),
            ),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(SweepConfig::default().validate().is_ok());
        assert!(SweepConfig { points: 1, ..SweepConfig::default() }.validate().is_err());
        assert!(SweepConfig { repetitions: 0, ..SweepConfig::default() }.validate().is_err());
    }

    #[test]
    fn plans_resolve_per_axis_counts() {
        let space = composed_system().space();
        let plan = SweepPlan::grid(small_config());
        assert_eq!(plan.counts(&space).unwrap(), vec![6, 6]);
        let plan = plan.axis_points("cell_size", 3);
        assert_eq!(plan.counts(&space).unwrap(), vec![6, 3]);
        // Later overrides win.
        let plan = plan.axis_points("cell_size", 4);
        assert_eq!(plan.counts(&space).unwrap(), vec![6, 4]);
        assert_eq!(plan.enumerate(&space).unwrap().len(), 24);
        // Unknown axis and degenerate counts are typed errors.
        assert!(SweepPlan::grid(small_config()).axis_points("sigma", 5).counts(&space).is_err());
        assert!(SweepPlan::grid(small_config()).axis_points("epsilon", 1).counts(&space).is_err());
        assert!(SweepPlan::grid(SweepConfig { points: 0, ..small_config() })
            .counts(&space)
            .is_err());
    }

    #[test]
    fn sweep_produces_ordered_bounded_samples() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let runner = ExperimentRunner::new(small_config());
        let result = runner.run(&system, &dataset).unwrap();

        assert_eq!(result.len(), 6);
        assert!(!result.is_empty());
        assert_eq!(result.lppm_name, "geo-indistinguishability");
        assert_eq!(result.space.names(), vec!["epsilon"]);
        assert_eq!(result.mode, SweepMode::Grid);
        assert_eq!(result.ids(), vec![privacy_id(), utility_id()]);
        assert_eq!(result.column(&privacy_id()).unwrap().direction, Direction::LowerIsBetter);
        assert_eq!(result.column(&utility_id()).unwrap().direction, Direction::HigherIsBetter);
        assert_eq!(result.column_by_direction(Direction::LowerIsBetter).unwrap().id, privacy_id());

        // Parameters are sorted and span exactly the paper's range: the sweep
        // pins both endpoints, no floating-point drift tolerated.
        let parameters = result.parameters();
        assert!(parameters.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(parameters[0], 1e-4);
        assert_eq!(*parameters.last().unwrap(), 1.0);
        assert_eq!(result.axis_values("epsilon").unwrap(), parameters);
        assert!(result.axis_values("sigma").is_none());
        assert_eq!(result.single_axis().unwrap().name(), "epsilon");

        // Metrics are bounded.
        for column in &result.columns {
            assert_eq!(column.means.len(), 6);
            for (point, mean) in column.means.iter().enumerate() {
                assert!((0.0..=1.0).contains(mean), "{} = {mean}", column.id);
                assert_eq!(column.runs[point].len(), 1);
                assert_eq!(column.std(point), 0.0);
            }
        }

        // The qualitative shape of Figure 1: privacy and utility are (weakly)
        // higher at the largest epsilon than at the smallest.
        for column in &result.columns {
            assert!(column.means.last().unwrap() >= column.means.first().unwrap());
        }
    }

    #[test]
    fn multi_axis_grids_cover_the_full_factorial() {
        let dataset = small_dataset();
        let system = composed_system();
        let plan = SweepPlan::grid(SweepConfig { points: 3, ..small_config() });
        let result = ExperimentRunner::with_plan(plan).run(&system, &dataset).unwrap();

        assert_eq!(result.len(), 9);
        assert_eq!(result.space.names(), vec!["epsilon", "cell_size"]);
        // Row-major order: the first three points share the epsilon minimum.
        for point in &result.points[..3] {
            assert_eq!(point.get("epsilon"), Some(1e-4));
        }
        assert_eq!(result.points[0].get("cell_size"), Some(100.0));
        assert_eq!(result.points[2].get("cell_size"), Some(2000.0));
        // Every column is aligned with the design matrix and bounded.
        for column in &result.columns {
            assert_eq!(column.means.len(), 9);
            assert!(column.means.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn one_at_a_time_holds_other_axes_at_defaults() {
        let dataset = small_dataset();
        let system = composed_system();
        let plan = SweepPlan::one_at_a_time(SweepConfig { points: 3, ..small_config() });
        let result = ExperimentRunner::with_plan(plan).run(&system, &dataset).unwrap();

        assert_eq!(result.mode, SweepMode::OneAtATime);
        assert_eq!(result.len(), 6);
        let cell_default = system.space().axis("cell_size").unwrap().default_value();
        let epsilon_default = system.space().axis("epsilon").unwrap().default_value();
        for point in &result.points[..3] {
            assert_eq!(point.get("cell_size"), Some(cell_default));
        }
        for point in &result.points[3..] {
            assert_eq!(point.get("epsilon"), Some(epsilon_default));
        }
    }

    #[test]
    fn per_user_grain_keeps_aggregates_identical_and_records_curves() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let dataset_grain = ExperimentRunner::new(small_config()).run(&system, &dataset).unwrap();
        let per_user = ExperimentRunner::with_plan(SweepPlan::grid(small_config()).per_user())
            .run(&system, &dataset)
            .unwrap();

        // The grain is opt-in: dataset-grain sweeps record nothing per user.
        assert_eq!(dataset_grain.grain, Grain::Dataset);
        assert!(dataset_grain.user_columns.is_empty());
        assert!(dataset_grain.users().is_empty());
        assert_eq!(per_user.grain, Grain::PerUser);

        // The aggregate store is bit-identical — same seeds, same arithmetic.
        assert_eq!(per_user.points, dataset_grain.points);
        assert_eq!(per_user.columns, dataset_grain.columns);

        // One user column per metric, every curve aligned with the design.
        assert_eq!(per_user.user_columns.len(), per_user.columns.len());
        for column in &per_user.user_columns {
            assert!(column.user_count() >= 1, "{}", column.id);
            assert_eq!(column.curves.len(), column.users.len());
            for curve in &column.curves {
                assert_eq!(curve.len(), per_user.len());
                assert!(curve.iter().all(|v| (0.0..=1.0).contains(v)));
            }
            // With one repetition the aggregate mean at each point is exactly
            // the mean of the user curves (same values, same summation order).
            for point in 0..per_user.len() {
                let mean = column.curves.iter().map(|c| c[point]).sum::<f64>()
                    / column.user_count() as f64;
                assert_eq!(
                    mean,
                    per_user.column(&column.id).unwrap().means[point],
                    "{} point {point}",
                    column.id
                );
            }
        }

        // Per-user accessors: the utility metric covers every dataset user.
        let coverage = per_user.user_column(&utility_id()).unwrap();
        assert_eq!(coverage.user_count(), dataset.len());
        for trace in dataset.iter() {
            assert!(coverage.curve(trace.user()).is_some());
        }
        assert!(coverage.curve(geopriv_mobility::UserId::new(9999)).is_none());
        assert!(!per_user.users().is_empty());
        assert!(per_user.user_column(&MetricId::new("nope")).is_none());
    }

    #[test]
    fn whole_dataset_shard_is_bit_identical_to_unsharded() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let unsharded = ExperimentRunner::with_plan(SweepPlan::grid(small_config()).per_user())
            .run(&system, &dataset)
            .unwrap();
        // Any shard size covering every user takes the passthrough path.
        for shard_users in [dataset.user_count(), dataset.user_count() + 10, usize::MAX] {
            let sharded = ExperimentRunner::with_plan(
                SweepPlan::grid(small_config()).per_user().shard_users(shard_users),
            )
            .run(&system, &dataset)
            .unwrap();
            assert_eq!(sharded, unsharded, "shard size {shard_users}");
        }
    }

    #[test]
    fn multi_shard_sweeps_are_deterministic_and_cover_every_user() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let plan = || SweepPlan::grid(small_config()).per_user().shard_users(1);
        let sharded = ExperimentRunner::with_plan(plan()).run(&system, &dataset).unwrap();
        // Deterministic: the same sharded plan reproduces itself exactly.
        assert_eq!(sharded, ExperimentRunner::with_plan(plan()).run(&system, &dataset).unwrap());

        // The design matrix and column shape are those of the unsharded run.
        let unsharded = ExperimentRunner::with_plan(SweepPlan::grid(small_config()).per_user())
            .run(&system, &dataset)
            .unwrap();
        assert_eq!(sharded.points, unsharded.points);
        assert_eq!(sharded.ids(), unsharded.ids());

        // Every user of every metric is covered, in the same dataset order
        // (shards partition the user axis contiguously), and every value is
        // bounded like the unsharded measurements.
        for (sharded_col, unsharded_col) in sharded.user_columns.iter().zip(&unsharded.user_columns)
        {
            assert_eq!(sharded_col.users, unsharded_col.users, "{}", sharded_col.id);
            for curve in &sharded_col.curves {
                assert_eq!(curve.len(), sharded.len());
                assert!(curve.iter().all(|v| (0.0..=1.0).contains(v)));
            }
        }
        for column in &sharded.columns {
            assert!(column.means.iter().all(|v| (0.0..=1.0).contains(v)));
        }

        // Shard 0 of a multi-shard run draws the unit-seed streams, so the
        // first user's curve differs from the unsharded run only where later
        // shards would — i.e. not at all: it is the same single-user slice
        // protected under the same seed. (The *aggregates* differ, because
        // shards 1+ draw their own streams.)
        assert_ne!(sharded.columns, unsharded.columns);
    }

    #[test]
    fn sharded_aggregates_are_the_trace_weighted_mean_of_shard_aggregates() {
        // One user per shard and one trace per user: the weighted mean
        // reduces to the plain mean of the per-user values — which is exactly
        // what the per-user curves record, so the invariant checked in
        // `per_user_grain_keeps_aggregates_identical_and_records_curves`
        // must hold shard-merged too.
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let sharded =
            ExperimentRunner::with_plan(SweepPlan::grid(small_config()).per_user().shard_users(1))
                .run(&system, &dataset)
                .unwrap();
        for column in &sharded.user_columns {
            for point in 0..sharded.len() {
                let mean = column.curves.iter().map(|c| c[point]).sum::<f64>()
                    / column.user_count() as f64;
                let aggregate = sharded.column(&column.id).unwrap().means[point];
                assert!(
                    (mean - aggregate).abs() < 1e-12,
                    "{} point {point}: {mean} vs {aggregate}",
                    column.id
                );
            }
        }
    }

    #[test]
    fn zero_shard_size_is_rejected() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let plan = SweepPlan::grid(small_config()).shard_users(0);
        assert_eq!(plan.user_shard_size(), Some(0));
        assert!(ExperimentRunner::with_plan(plan).run(&system, &dataset).is_err());
    }

    #[test]
    fn shard_seeds_extend_unit_seeds() {
        // Shard 0 is the unit-seed identity — the passthrough guarantee.
        for point in 0..8 {
            for rep in 0..4 {
                assert_eq!(derive_shard_seed(42, point, rep, 0), derive_unit_seed(42, point, rep));
            }
        }
        // Distinct (point, rep, shard) units never collide in a realistic sweep.
        let mut seen = std::collections::BTreeSet::new();
        for point in 0..16 {
            for rep in 0..4 {
                for shard in 0..32 {
                    assert!(seen.insert(derive_shard_seed(42, point, rep, shard)));
                }
            }
        }
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let parallel = ExperimentRunner::new(SweepConfig { parallel: true, ..small_config() })
            .run(&system, &dataset)
            .unwrap();
        let sequential = ExperimentRunner::new(SweepConfig { parallel: false, ..small_config() })
            .run(&system, &dataset)
            .unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn sweeps_are_deterministic_in_the_seed() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let run = |seed| {
            ExperimentRunner::new(SweepConfig { seed, ..small_config() })
                .run(&system, &dataset)
                .unwrap()
        };
        assert_eq!(run(1), run(1));
        // Different seeds give different measurements (the mechanism is random).
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn repetitions_are_recorded_and_averaged() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let config = SweepConfig { points: 3, repetitions: 3, seed: 5, parallel: true };
        let result = ExperimentRunner::new(config).run(&system, &dataset).unwrap();
        for column in &result.columns {
            for (point, runs) in column.runs.iter().enumerate() {
                assert_eq!(runs.len(), 3);
                let mean: f64 = runs.iter().sum::<f64>() / 3.0;
                assert!((mean - column.means[point]).abs() < 1e-12);
                assert!(column.std(point) >= 0.0);
            }
        }
    }

    #[test]
    fn unit_seeds_are_unique_and_scheduling_independent() {
        // Distinct (point, repetition) pairs in a realistic sweep never share
        // a seed under one master seed.
        let mut seen = std::collections::BTreeSet::new();
        for point in 0..64 {
            for rep in 0..16 {
                assert!(seen.insert(derive_unit_seed(42, point, rep)));
            }
        }
        // The derivation is a pure function of its three inputs.
        assert_eq!(derive_unit_seed(7, 3, 1), derive_unit_seed(7, 3, 1));
        assert_ne!(derive_unit_seed(7, 3, 1), derive_unit_seed(8, 3, 1));
    }

    #[test]
    fn run_indexed_preserves_index_order_in_both_modes() {
        let sequential = run_indexed(17, false, |i| i * i).unwrap();
        let parallel = run_indexed(17, true, |i| i * i).unwrap();
        assert_eq!(sequential, parallel);
        assert_eq!(sequential, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert!(run_indexed(0, true, |i| i).unwrap().is_empty());
    }

    #[test]
    fn sweep_result_constructor_validates() {
        let column = |id: &str, means: Vec<f64>| MetricColumn {
            id: MetricId::new(id),
            direction: Direction::HigherIsBetter,
            runs: means.iter().map(|&m| vec![m]).collect(),
            means,
        };
        let axis = || ParameterDescriptor::new("p", 0.05, 0.5, ParameterScale::Linear).unwrap();
        assert!(SweepResult::from_axis(
            "m",
            axis(),
            &[0.1, 0.2],
            vec![column("a", vec![0.0, 1.0]), column("b", vec![1.0, 0.0])],
        )
        .is_ok());
        // Out-of-range design points are rejected.
        assert!(SweepResult::from_axis(
            "m",
            axis(),
            &[0.1, 2.0],
            vec![column("a", vec![0.0, 1.0])]
        )
        .is_err());
        // Ragged column.
        assert!(
            SweepResult::from_axis("m", axis(), &[0.1, 0.2], vec![column("a", vec![0.0])]).is_err()
        );
        // Runs recorded but not aligned with the points.
        let mut misaligned = column("a", vec![0.0, 1.0]);
        misaligned.runs.pop();
        assert!(SweepResult::from_axis("m", axis(), &[0.1, 0.2], vec![misaligned]).is_err());
        // Empty runs are the "not recorded" convention used by synthetic sweeps.
        let mut unrecorded = column("a", vec![0.0, 1.0]);
        unrecorded.runs.clear();
        assert!(SweepResult::from_axis("m", axis(), &[0.1, 0.2], vec![unrecorded]).is_ok());
        // Duplicate id.
        assert!(SweepResult::from_axis(
            "m",
            axis(),
            &[0.1, 0.2],
            vec![column("a", vec![0.0, 1.0]), column("a", vec![1.0, 0.0])],
        )
        .is_err());
        // Points from a different space are rejected by the full constructor.
        let foreign = ConfigSpace::single(epsilon_axis()).point(&[("epsilon", 0.01)]).unwrap();
        assert!(SweepResult::new(
            "m",
            ConfigSpace::single(axis()),
            SweepMode::Grid,
            vec![foreign],
            vec![column("a", vec![0.5])],
        )
        .is_err());
    }

    #[test]
    fn invalid_config_is_rejected_by_run() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let runner = ExperimentRunner::new(SweepConfig { points: 1, ..SweepConfig::default() });
        assert!(runner.run(&system, &dataset).is_err());
    }

    #[test]
    fn adaptive_without_refinement_is_bit_identical_to_grid() {
        let dataset = small_dataset();
        // Single-axis system.
        let system = SystemDefinition::paper_geoi();
        let grid = ExperimentRunner::new(small_config()).run(&system, &dataset).unwrap();
        // Budget 0 clamps to the coarse-pass size: refinement is disabled.
        let adaptive = ExperimentRunner::with_plan(SweepPlan::adaptive(small_config(), 0))
            .run(&system, &dataset)
            .unwrap();
        assert_eq!(adaptive.mode, SweepMode::Adaptive);
        let mut relabeled = grid.clone();
        relabeled.mode = SweepMode::Adaptive;
        assert_eq!(adaptive, relabeled);

        // Multi-axis system, per-user grain: user columns must match too.
        let system = composed_system();
        let grid_plan = SweepPlan::grid(small_config()).per_user();
        let grid = ExperimentRunner::with_plan(grid_plan).run(&system, &dataset).unwrap();
        let budget = grid.len(); // exactly the coarse pass, nothing left to refine
        let adaptive_plan = SweepPlan::adaptive(small_config(), budget).per_user();
        let adaptive = ExperimentRunner::with_plan(adaptive_plan).run(&system, &dataset).unwrap();
        let mut relabeled = grid.clone();
        relabeled.mode = SweepMode::Adaptive;
        assert_eq!(adaptive, relabeled);
    }

    #[test]
    fn adaptive_refinement_adds_points_within_bounds_and_budget() {
        let dataset = small_dataset();
        let system = composed_system();
        let config = SweepConfig { points: 3, ..small_config() };
        let coarse = 9; // 3 x 3 grid
        let budget = coarse + 5;
        let plan = SweepPlan::adaptive(config, budget);
        let result = ExperimentRunner::with_plan(plan.clone()).run(&system, &dataset).unwrap();

        assert!(result.len() > coarse, "refinement added no points");
        assert!(result.len() <= budget, "budget exceeded: {} > {budget}", result.len());
        let space = system.space();
        for point in &result.points {
            space.check(point).unwrap();
        }
        // Points stay sorted in coordinate order so downstream per-axis
        // modeling sees a monotone design even though it is irregular.
        let coords: Vec<Vec<f64>> = result.points.iter().map(ConfigPoint::coords).collect();
        let mut sorted = coords.clone();
        sorted.sort_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        assert_eq!(coords, sorted);

        // Bit-identical on rerun.
        let again = ExperimentRunner::with_plan(plan).run(&system, &dataset).unwrap();
        assert_eq!(result, again);
    }

    #[test]
    fn adaptive_per_user_grain_records_full_curves() {
        let dataset = small_dataset();
        let system = composed_system();
        let config = SweepConfig { points: 3, ..small_config() };
        let plan = SweepPlan::adaptive(config, 13).per_user();
        let result = ExperimentRunner::with_plan(plan).run(&system, &dataset).unwrap();

        assert!(result.len() > 9);
        assert_eq!(result.user_columns.len(), 2);
        for column in &result.user_columns {
            // Successive halving prunes which users drive *planning*, never
            // which users are measured: every curve spans every point.
            assert_eq!(column.user_count(), 3);
            for user in result.users() {
                assert_eq!(column.curve(user).unwrap().len(), result.len());
            }
        }
    }

    #[test]
    fn point_seeds_are_keyed_by_coordinates_not_enumeration_order() {
        let space = composed_system().space();
        let a = space.point_from_coords(&[0.01, 500.0]).unwrap();
        let b = space.point_from_coords(&[0.01, 700.0]).unwrap();

        // Same coordinates, same seed — no matter when the point is planned.
        assert_eq!(derive_point_seed(42, &a, 0), derive_point_seed(42, &a, 0));
        // Distinct coordinates, master seeds and repetitions all decorrelate.
        assert_ne!(derive_point_seed(42, &a, 0), derive_point_seed(42, &b, 0));
        assert_ne!(derive_point_seed(42, &a, 0), derive_point_seed(43, &a, 0));
        assert_ne!(derive_point_seed(42, &a, 0), derive_point_seed(42, &a, 1));
    }

    #[test]
    fn focus_intervals_are_validated() {
        let space = composed_system().space();
        let ok = SweepPlan::adaptive(small_config(), 20).focus("epsilon", 0.01, 0.1);
        assert!(ok.counts(&space).is_ok());
        assert_eq!(ok.focus_intervals().len(), 1);
        let unknown = SweepPlan::adaptive(small_config(), 20).focus("sigma", 0.01, 0.1);
        assert!(unknown.counts(&space).is_err());
        let inverted = SweepPlan::adaptive(small_config(), 20).focus("epsilon", 0.1, 0.01);
        assert!(inverted.counts(&space).is_err());
        let non_finite = SweepPlan::adaptive(small_config(), 20).focus("epsilon", f64::NAN, 0.1);
        assert!(non_finite.counts(&space).is_err());
    }

    #[test]
    fn adaptive_shares_coarse_measurements_across_budgets() {
        // Growing the budget must never change the values measured at points
        // both runs share: refinement seeds are keyed by coordinates, not by
        // the order in which the planner emitted them.
        let dataset = small_dataset();
        let system = composed_system();
        let config = SweepConfig { points: 3, ..small_config() };
        let small = ExperimentRunner::with_plan(SweepPlan::adaptive(config, 11))
            .run(&system, &dataset)
            .unwrap();
        let large = ExperimentRunner::with_plan(SweepPlan::adaptive(config, 15))
            .run(&system, &dataset)
            .unwrap();
        for (i, point) in small.points.iter().enumerate() {
            let Some(j) = large.points.iter().position(|p| p.cache_token() == point.cache_token())
            else {
                continue;
            };
            for (sc, lc) in small.columns.iter().zip(&large.columns) {
                assert_eq!(sc.means[i].to_bits(), lc.means[j].to_bits());
            }
        }
    }
}
