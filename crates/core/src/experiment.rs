//! Automated experiment runner (step 2 of the framework, measurement half).
//!
//! "Then comes the modeling phase: experiments are automatically run where
//! parameters p_i and d_i vary in turn while evaluation metrics are
//! measured." [`ExperimentRunner`] sweeps the mechanism's whole
//! [`ConfigSpace`] under a [`SweepPlan`] — a full-factorial grid with
//! per-axis point counts, or the paper's one-at-a-time design ("parameters
//! p_i … vary in turn", other axes held at their defaults) — protects the
//! dataset at every design point (optionally several times with different
//! seeds), evaluates every metric of the system's suite, and collects the
//! resulting [`SweepResult`]: a design matrix of [`ConfigPoint`]s with one
//! metric column per suite metric — the raw material behind Figure 1 and
//! Equation 2, generalized from the paper's fixed privacy/utility pair and
//! single swept scalar to any number of metrics over any number of axes.

use crate::error::CoreError;
use crate::system::SystemDefinition;
use geopriv_lppm::{ConfigPoint, ConfigSpace, ParameterDescriptor};
use geopriv_metrics::{Direction, MetricId};
use geopriv_mobility::Dataset;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a parameter sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Number of sweep points per axis (Figure 1 uses ~25). Override
    /// individual axes with [`SweepPlan::axis_points`].
    pub points: usize,
    /// Number of protection/evaluation repetitions per design point; metric
    /// values are averaged to smooth out the randomness of the mechanism.
    pub repetitions: usize,
    /// Master seed; every (point, repetition) pair derives its own RNG from it.
    pub seed: u64,
    /// Run design points on multiple threads.
    pub parallel: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { points: 25, repetitions: 1, seed: 0xC0FFEE, parallel: true }
    }
}

impl SweepConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for zero points or repetitions.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.points < 2 {
            return Err(CoreError::InvalidConfiguration {
                reason: format!("a sweep needs at least 2 points per axis, got {}", self.points),
            });
        }
        if self.repetitions == 0 {
            return Err(CoreError::InvalidConfiguration {
                reason: "a sweep needs at least 1 repetition".to_string(),
            });
        }
        Ok(())
    }
}

/// How a multi-axis configuration space is enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SweepMode {
    /// Full-factorial grid: every combination of the per-axis sweep values.
    #[default]
    Grid,
    /// The paper's design: each axis varies in turn over its sweep values
    /// while the other axes are held at their defaults.
    OneAtATime,
}

/// The full description of a sweep: base [`SweepConfig`], enumeration
/// [`SweepMode`] and optional per-axis point-count overrides.
///
/// On a one-axis space both modes enumerate exactly
/// [`ParameterDescriptor::sweep`]`(config.points)` in order — the historical
/// single-scalar behavior, bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Points per axis, repetitions, master seed, parallelism.
    pub config: SweepConfig,
    /// Grid or one-at-a-time enumeration.
    pub mode: SweepMode,
    per_axis: Vec<(String, usize)>,
}

impl SweepPlan {
    /// A full-factorial plan with `config.points` values per axis.
    pub fn grid(config: SweepConfig) -> Self {
        Self { config, mode: SweepMode::Grid, per_axis: Vec::new() }
    }

    /// A one-at-a-time plan with `config.points` values per axis.
    pub fn one_at_a_time(config: SweepConfig) -> Self {
        Self { config, mode: SweepMode::OneAtATime, per_axis: Vec::new() }
    }

    /// Overrides the point count of one named axis (later calls win).
    #[must_use]
    pub fn axis_points(mut self, axis: impl Into<String>, points: usize) -> Self {
        self.per_axis.push((axis.into(), points));
        self
    }

    /// The per-axis point counts this plan assigns to `space`, in axis order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for an invalid base
    /// config, an override naming no axis of the space, or an override below
    /// 2 points.
    pub fn counts(&self, space: &ConfigSpace) -> Result<Vec<usize>, CoreError> {
        self.config.validate()?;
        for (name, points) in &self.per_axis {
            if space.axis(name).is_none() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "axis-points override names \"{name}\", which is not an axis of the \
                         space ({})",
                        space.names().join(", ")
                    ),
                });
            }
            if *points < 2 {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!("axis \"{name}\" needs at least 2 points, got {points}"),
                });
            }
        }
        Ok(space
            .names()
            .iter()
            .map(|name| {
                self.per_axis
                    .iter()
                    .rev()
                    .find(|(n, _)| n == name)
                    .map_or(self.config.points, |(_, p)| *p)
            })
            .collect())
    }

    /// Enumerates the design points of this plan over `space`, in the
    /// deterministic order the runner assigns point indices (and therefore
    /// RNG streams) to.
    ///
    /// # Errors
    ///
    /// Propagates [`SweepPlan::counts`] errors.
    pub fn enumerate(&self, space: &ConfigSpace) -> Result<Vec<ConfigPoint>, CoreError> {
        let counts = self.counts(space)?;
        match self.mode {
            SweepMode::Grid => Ok(space.grid(&counts)?),
            SweepMode::OneAtATime => Ok(space.one_at_a_time(&counts)?),
        }
    }
}

/// The measurements of one metric across a whole sweep: one column of the
/// [`SweepResult`] column store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricColumn {
    /// Id of the metric inside the suite.
    pub id: MetricId,
    /// Which way the metric improves.
    pub direction: Direction,
    /// Mean metric value per design point (over the repetitions), aligned
    /// with [`SweepResult::points`].
    pub means: Vec<f64>,
    /// Per-repetition metric values per design point.
    pub runs: Vec<Vec<f64>>,
}

impl MetricColumn {
    /// Standard deviation of the metric over the repetitions at one design
    /// point (zero for a single repetition).
    pub fn std(&self, point: usize) -> f64 {
        self.runs.get(point).map_or(0.0, |runs| std_dev(runs))
    }
}

fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Derives the RNG seed of one `(point, repetition)` work unit from the
/// sweep's master seed.
///
/// This is the seed contract shared by [`ExperimentRunner`] and
/// [`crate::campaign::CampaignRunner`]: because the derived seed depends only
/// on the master seed, the point index and the repetition index — never on
/// scheduling, thread count or the position of the unit inside a larger
/// campaign — any execution strategy reproduces the exact same random streams.
pub fn derive_unit_seed(master_seed: u64, point_index: usize, repetition: usize) -> u64 {
    master_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((point_index as u64) << 32)
        .wrapping_add(repetition as u64)
}

/// Runs `count` independent work items on a shared work-stealing pool and
/// returns their results in index order.
///
/// Sequential execution (`parallel == false`, a single item, or a single
/// available core) calls `work` in index order on the current thread; parallel
/// execution lets each thread atomically claim the next unclaimed index. The
/// output is indistinguishable between the two modes as long as `work(i)` is
/// a pure function of `i`.
pub(crate) fn run_indexed<T, F>(count: usize, parallel: bool, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(count).max(1);
    if !parallel || threads == 1 {
        return (0..count).map(work).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    let next_index = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next_index.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= count {
                    break;
                }
                let result = work(i);
                results.lock()[i] = Some(result);
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every work item was executed"))
        .collect()
}

/// The result of a full sweep: the design matrix (one [`ConfigPoint`] per
/// measured configuration, in enumeration order) and a per-metric column
/// store, one [`MetricColumn`] per suite metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Name of the mechanism that was swept.
    pub lppm_name: String,
    /// The swept configuration space.
    pub space: ConfigSpace,
    /// How the space was enumerated.
    pub mode: SweepMode,
    /// The measured design points, in enumeration order.
    pub points: Vec<ConfigPoint>,
    /// One column per metric, in suite order.
    pub columns: Vec<MetricColumn>,
}

impl SweepResult {
    /// Builds a result, validating that every design point belongs to the
    /// space, that every column has one mean (and, when per-repetition runs
    /// are recorded, one run list) per point and that metric ids are unique.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for foreign points,
    /// ragged columns or duplicate ids.
    pub fn new(
        lppm_name: impl Into<String>,
        space: ConfigSpace,
        mode: SweepMode,
        points: Vec<ConfigPoint>,
        columns: Vec<MetricColumn>,
    ) -> Result<Self, CoreError> {
        for point in &points {
            space.check(point).map_err(CoreError::from)?;
        }
        let mut seen = std::collections::BTreeSet::new();
        for column in &columns {
            if column.means.len() != points.len() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "metric \"{}\" has {} means for {} design points",
                        column.id,
                        column.means.len(),
                        points.len()
                    ),
                });
            }
            // An empty runs vector means "per-repetition values not recorded"
            // (synthetic sweeps); anything else must align with the points.
            if !column.runs.is_empty() && column.runs.len() != points.len() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "metric \"{}\" has {} run lists for {} design points",
                        column.id,
                        column.runs.len(),
                        points.len()
                    ),
                });
            }
            if !seen.insert(column.id.clone()) {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!("duplicate metric id \"{}\" in sweep result", column.id),
                });
            }
        }
        Ok(Self { lppm_name: lppm_name.into(), space, mode, points, columns })
    }

    /// Builds a one-axis result from plain parameter values — the historical
    /// single-scalar constructor, used by synthetic sweeps and tests.
    ///
    /// # Errors
    ///
    /// As [`SweepResult::new`], plus out-of-range parameter values.
    pub fn from_axis(
        lppm_name: impl Into<String>,
        axis: ParameterDescriptor,
        parameters: &[f64],
        columns: Vec<MetricColumn>,
    ) -> Result<Self, CoreError> {
        let space = ConfigSpace::single(axis);
        let points = parameters
            .iter()
            .map(|&value| space.point_from_coords(&[value]))
            .collect::<Result<Vec<_>, _>>()
            .map_err(CoreError::from)?;
        Self::new(lppm_name, space, SweepMode::Grid, points, columns)
    }

    /// Number of design points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` for an empty design (never produced by a runner).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The values of one named axis across the design matrix, aligned with
    /// [`SweepResult::points`].
    pub fn axis_values(&self, axis: &str) -> Option<Vec<f64>> {
        self.space.axis(axis)?;
        Some(self.points.iter().map(|p| p.get(axis).expect("points belong to the space")).collect())
    }

    /// The single axis of a one-axis sweep, or `None` for multi-axis sweeps.
    pub fn single_axis(&self) -> Option<&ParameterDescriptor> {
        self.space.single_axis()
    }

    /// The swept scalar values of a one-axis sweep (legacy 1-D accessor).
    ///
    /// # Panics
    ///
    /// Panics when the sweep covers more than one axis — use
    /// [`SweepResult::axis_values`] there.
    pub fn parameters(&self) -> Vec<f64> {
        let axis = self
            .single_axis()
            .unwrap_or_else(|| {
                panic!(
                    "sweep covers {} axes ({}); use axis_values() instead of parameters()",
                    self.space.len(),
                    self.space.names().join(", ")
                )
            })
            .name()
            .to_string();
        self.axis_values(&axis).expect("the single axis exists")
    }

    /// The metric ids, in suite order.
    pub fn ids(&self) -> Vec<MetricId> {
        self.columns.iter().map(|c| c.id.clone()).collect()
    }

    /// The column of one metric.
    pub fn column(&self, id: &MetricId) -> Option<&MetricColumn> {
        self.columns.iter().find(|c| &c.id == id)
    }

    /// The mean values of one metric, aligned with [`SweepResult::points`].
    pub fn values(&self, id: &MetricId) -> Option<&[f64]> {
        self.column(id).map(|c| c.means.as_slice())
    }

    /// The first column improving in `direction` — how the paper's "the
    /// privacy curve" / "the utility curve" map onto a column store.
    pub fn column_by_direction(&self, direction: Direction) -> Option<&MetricColumn> {
        self.columns.iter().find(|c| c.direction == direction)
    }
}

/// Runs configuration-space sweeps for a [`SystemDefinition`] on a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRunner {
    plan: SweepPlan,
}

impl ExperimentRunner {
    /// Creates a runner sweeping the full-factorial grid with the given
    /// sweep configuration (`config.points` values per axis).
    pub fn new(config: SweepConfig) -> Self {
        Self { plan: SweepPlan::grid(config) }
    }

    /// Creates a runner with an explicit [`SweepPlan`] (mode and per-axis
    /// point counts).
    pub fn with_plan(plan: SweepPlan) -> Self {
        Self { plan }
    }

    /// The sweep configuration.
    pub fn config(&self) -> SweepConfig {
        self.plan.config
    }

    /// The full sweep plan.
    pub fn plan(&self) -> &SweepPlan {
        &self.plan
    }

    /// Runs the sweep: for every design point of the plan, protect the
    /// dataset and evaluate every metric of the suite, in suite order.
    ///
    /// The actual-side metric state (POI extraction, bounding boxes — see
    /// [`geopriv_metrics::PrivacyMetric::prepare`]) is prepared once for the
    /// whole sweep and reused at every `(point, repetition)` sample; the
    /// metrics guarantee this is bit-identical to direct evaluation.
    ///
    /// Results are deterministic for a given `(dataset, config.seed)` pair,
    /// regardless of the number of threads.
    ///
    /// # Errors
    ///
    /// Propagates configuration, protection and metric errors.
    pub fn run(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
    ) -> Result<SweepResult, CoreError> {
        let space = system.space();
        let points = self.plan.enumerate(&space)?;
        let prepared: Vec<geopriv_metrics::PreparedState> = system
            .suite()
            .iter()
            .map(|m| m.prepare(dataset).map_err(CoreError::from))
            .collect::<Result<_, _>>()?;

        // Per point: per metric (suite order): per repetition value.
        let per_point: Vec<Vec<Vec<f64>>> =
            run_indexed(points.len(), self.plan.config.parallel, |i| {
                self.measure_point(system, dataset, &prepared, i, &points[i])
            })
            .into_iter()
            .collect::<Result<Vec<_>, CoreError>>()?;

        let mut columns: Vec<MetricColumn> = system
            .suite()
            .iter()
            .map(|m| MetricColumn {
                id: m.id(),
                direction: m.direction(),
                means: Vec::with_capacity(points.len()),
                runs: Vec::with_capacity(points.len()),
            })
            .collect();
        for point_runs in per_point {
            for (column, runs) in columns.iter_mut().zip(point_runs) {
                column.means.push(runs.iter().sum::<f64>() / runs.len() as f64);
                column.runs.push(runs);
            }
        }

        SweepResult::new(system.factory().name(), space, self.plan.mode, points, columns)
    }

    fn measure_point(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
        prepared: &[geopriv_metrics::PreparedState],
        index: usize,
        point: &ConfigPoint,
    ) -> Result<Vec<Vec<f64>>, CoreError> {
        let lppm = system.factory().instantiate_at(point)?;
        let mut runs_by_metric: Vec<Vec<f64>> =
            vec![Vec::with_capacity(self.plan.config.repetitions); system.suite().len()];
        for repetition in 0..self.plan.config.repetitions {
            // Derive a per-(point, repetition) seed so parallel execution and
            // sequential execution see exactly the same random streams.
            let mut rng =
                StdRng::seed_from_u64(derive_unit_seed(self.plan.config.seed, index, repetition));
            let protected = lppm.protect_dataset(dataset, &mut rng)?;
            for ((metric, state), runs) in
                system.suite().iter().zip(prepared).zip(runs_by_metric.iter_mut())
            {
                runs.push(metric.evaluate_prepared(state, dataset, &protected)?.value());
            }
        }
        Ok(runs_by_metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{GeoIndistinguishabilityFactory, GridCloakingFactory, PipelineFactory};
    use geopriv_lppm::ParameterScale;
    use geopriv_metrics::{AreaCoverage, PoiRetrieval};
    use geopriv_mobility::generator::TaxiFleetBuilder;

    fn small_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(77);
        TaxiFleetBuilder::new()
            .drivers(3)
            .duration_hours(4.0)
            .sampling_interval_s(60.0)
            .build(&mut rng)
            .unwrap()
    }

    fn small_config() -> SweepConfig {
        SweepConfig { points: 6, repetitions: 1, seed: 42, parallel: true }
    }

    fn privacy_id() -> MetricId {
        MetricId::new("poi-retrieval")
    }

    fn utility_id() -> MetricId {
        MetricId::new("area-coverage")
    }

    fn epsilon_axis() -> ParameterDescriptor {
        ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap()
    }

    fn composed_system() -> SystemDefinition {
        SystemDefinition::with_pair(
            Box::new(
                PipelineFactory::new()
                    .then(GeoIndistinguishabilityFactory::new())
                    .then(GridCloakingFactory::with_range(100.0, 2000.0).unwrap()),
            ),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(SweepConfig::default().validate().is_ok());
        assert!(SweepConfig { points: 1, ..SweepConfig::default() }.validate().is_err());
        assert!(SweepConfig { repetitions: 0, ..SweepConfig::default() }.validate().is_err());
    }

    #[test]
    fn plans_resolve_per_axis_counts() {
        let space = composed_system().space();
        let plan = SweepPlan::grid(small_config());
        assert_eq!(plan.counts(&space).unwrap(), vec![6, 6]);
        let plan = plan.axis_points("cell_size", 3);
        assert_eq!(plan.counts(&space).unwrap(), vec![6, 3]);
        // Later overrides win.
        let plan = plan.axis_points("cell_size", 4);
        assert_eq!(plan.counts(&space).unwrap(), vec![6, 4]);
        assert_eq!(plan.enumerate(&space).unwrap().len(), 24);
        // Unknown axis and degenerate counts are typed errors.
        assert!(SweepPlan::grid(small_config()).axis_points("sigma", 5).counts(&space).is_err());
        assert!(SweepPlan::grid(small_config()).axis_points("epsilon", 1).counts(&space).is_err());
        assert!(SweepPlan::grid(SweepConfig { points: 0, ..small_config() })
            .counts(&space)
            .is_err());
    }

    #[test]
    fn sweep_produces_ordered_bounded_samples() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let runner = ExperimentRunner::new(small_config());
        let result = runner.run(&system, &dataset).unwrap();

        assert_eq!(result.len(), 6);
        assert!(!result.is_empty());
        assert_eq!(result.lppm_name, "geo-indistinguishability");
        assert_eq!(result.space.names(), vec!["epsilon"]);
        assert_eq!(result.mode, SweepMode::Grid);
        assert_eq!(result.ids(), vec![privacy_id(), utility_id()]);
        assert_eq!(result.column(&privacy_id()).unwrap().direction, Direction::LowerIsBetter);
        assert_eq!(result.column(&utility_id()).unwrap().direction, Direction::HigherIsBetter);
        assert_eq!(result.column_by_direction(Direction::LowerIsBetter).unwrap().id, privacy_id());

        // Parameters are sorted and span exactly the paper's range: the sweep
        // pins both endpoints, no floating-point drift tolerated.
        let parameters = result.parameters();
        assert!(parameters.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(parameters[0], 1e-4);
        assert_eq!(*parameters.last().unwrap(), 1.0);
        assert_eq!(result.axis_values("epsilon").unwrap(), parameters);
        assert!(result.axis_values("sigma").is_none());
        assert_eq!(result.single_axis().unwrap().name(), "epsilon");

        // Metrics are bounded.
        for column in &result.columns {
            assert_eq!(column.means.len(), 6);
            for (point, mean) in column.means.iter().enumerate() {
                assert!((0.0..=1.0).contains(mean), "{} = {mean}", column.id);
                assert_eq!(column.runs[point].len(), 1);
                assert_eq!(column.std(point), 0.0);
            }
        }

        // The qualitative shape of Figure 1: privacy and utility are (weakly)
        // higher at the largest epsilon than at the smallest.
        for column in &result.columns {
            assert!(column.means.last().unwrap() >= column.means.first().unwrap());
        }
    }

    #[test]
    fn multi_axis_grids_cover_the_full_factorial() {
        let dataset = small_dataset();
        let system = composed_system();
        let plan = SweepPlan::grid(SweepConfig { points: 3, ..small_config() });
        let result = ExperimentRunner::with_plan(plan).run(&system, &dataset).unwrap();

        assert_eq!(result.len(), 9);
        assert_eq!(result.space.names(), vec!["epsilon", "cell_size"]);
        // Row-major order: the first three points share the epsilon minimum.
        for point in &result.points[..3] {
            assert_eq!(point.get("epsilon"), Some(1e-4));
        }
        assert_eq!(result.points[0].get("cell_size"), Some(100.0));
        assert_eq!(result.points[2].get("cell_size"), Some(2000.0));
        // Every column is aligned with the design matrix and bounded.
        for column in &result.columns {
            assert_eq!(column.means.len(), 9);
            assert!(column.means.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn one_at_a_time_holds_other_axes_at_defaults() {
        let dataset = small_dataset();
        let system = composed_system();
        let plan = SweepPlan::one_at_a_time(SweepConfig { points: 3, ..small_config() });
        let result = ExperimentRunner::with_plan(plan).run(&system, &dataset).unwrap();

        assert_eq!(result.mode, SweepMode::OneAtATime);
        assert_eq!(result.len(), 6);
        let cell_default = system.space().axis("cell_size").unwrap().default_value();
        let epsilon_default = system.space().axis("epsilon").unwrap().default_value();
        for point in &result.points[..3] {
            assert_eq!(point.get("cell_size"), Some(cell_default));
        }
        for point in &result.points[3..] {
            assert_eq!(point.get("epsilon"), Some(epsilon_default));
        }
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let parallel = ExperimentRunner::new(SweepConfig { parallel: true, ..small_config() })
            .run(&system, &dataset)
            .unwrap();
        let sequential = ExperimentRunner::new(SweepConfig { parallel: false, ..small_config() })
            .run(&system, &dataset)
            .unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn sweeps_are_deterministic_in_the_seed() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let run = |seed| {
            ExperimentRunner::new(SweepConfig { seed, ..small_config() })
                .run(&system, &dataset)
                .unwrap()
        };
        assert_eq!(run(1), run(1));
        // Different seeds give different measurements (the mechanism is random).
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn repetitions_are_recorded_and_averaged() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let config = SweepConfig { points: 3, repetitions: 3, seed: 5, parallel: true };
        let result = ExperimentRunner::new(config).run(&system, &dataset).unwrap();
        for column in &result.columns {
            for (point, runs) in column.runs.iter().enumerate() {
                assert_eq!(runs.len(), 3);
                let mean: f64 = runs.iter().sum::<f64>() / 3.0;
                assert!((mean - column.means[point]).abs() < 1e-12);
                assert!(column.std(point) >= 0.0);
            }
        }
    }

    #[test]
    fn unit_seeds_are_unique_and_scheduling_independent() {
        // Distinct (point, repetition) pairs in a realistic sweep never share
        // a seed under one master seed.
        let mut seen = std::collections::BTreeSet::new();
        for point in 0..64 {
            for rep in 0..16 {
                assert!(seen.insert(derive_unit_seed(42, point, rep)));
            }
        }
        // The derivation is a pure function of its three inputs.
        assert_eq!(derive_unit_seed(7, 3, 1), derive_unit_seed(7, 3, 1));
        assert_ne!(derive_unit_seed(7, 3, 1), derive_unit_seed(8, 3, 1));
    }

    #[test]
    fn run_indexed_preserves_index_order_in_both_modes() {
        let sequential = run_indexed(17, false, |i| i * i);
        let parallel = run_indexed(17, true, |i| i * i);
        assert_eq!(sequential, parallel);
        assert_eq!(sequential, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert!(run_indexed(0, true, |i| i).is_empty());
    }

    #[test]
    fn sweep_result_constructor_validates() {
        let column = |id: &str, means: Vec<f64>| MetricColumn {
            id: MetricId::new(id),
            direction: Direction::HigherIsBetter,
            runs: means.iter().map(|&m| vec![m]).collect(),
            means,
        };
        let axis = || ParameterDescriptor::new("p", 0.05, 0.5, ParameterScale::Linear).unwrap();
        assert!(SweepResult::from_axis(
            "m",
            axis(),
            &[0.1, 0.2],
            vec![column("a", vec![0.0, 1.0]), column("b", vec![1.0, 0.0])],
        )
        .is_ok());
        // Out-of-range design points are rejected.
        assert!(SweepResult::from_axis(
            "m",
            axis(),
            &[0.1, 2.0],
            vec![column("a", vec![0.0, 1.0])]
        )
        .is_err());
        // Ragged column.
        assert!(
            SweepResult::from_axis("m", axis(), &[0.1, 0.2], vec![column("a", vec![0.0])]).is_err()
        );
        // Runs recorded but not aligned with the points.
        let mut misaligned = column("a", vec![0.0, 1.0]);
        misaligned.runs.pop();
        assert!(SweepResult::from_axis("m", axis(), &[0.1, 0.2], vec![misaligned]).is_err());
        // Empty runs are the "not recorded" convention used by synthetic sweeps.
        let mut unrecorded = column("a", vec![0.0, 1.0]);
        unrecorded.runs.clear();
        assert!(SweepResult::from_axis("m", axis(), &[0.1, 0.2], vec![unrecorded]).is_ok());
        // Duplicate id.
        assert!(SweepResult::from_axis(
            "m",
            axis(),
            &[0.1, 0.2],
            vec![column("a", vec![0.0, 1.0]), column("a", vec![1.0, 0.0])],
        )
        .is_err());
        // Points from a different space are rejected by the full constructor.
        let foreign = ConfigSpace::single(epsilon_axis()).point(&[("epsilon", 0.01)]).unwrap();
        assert!(SweepResult::new(
            "m",
            ConfigSpace::single(axis()),
            SweepMode::Grid,
            vec![foreign],
            vec![column("a", vec![0.5])],
        )
        .is_err());
    }

    #[test]
    fn invalid_config_is_rejected_by_run() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let runner = ExperimentRunner::new(SweepConfig { points: 1, ..SweepConfig::default() });
        assert!(runner.run(&system, &dataset).is_err());
    }
}
