//! Automated experiment runner (step 2 of the framework, measurement half).
//!
//! "Then comes the modeling phase: experiments are automatically run where
//! parameters p_i and d_i vary in turn while evaluation metrics are
//! measured." [`ExperimentRunner`] sweeps the mechanism's configuration
//! parameter over its range, protects the dataset at every sweep point
//! (optionally several times with different seeds), evaluates every metric of
//! the system's suite, and collects the resulting [`SweepResult`] — the raw
//! material behind Figure 1 and Equation 2, generalized from the paper's
//! fixed privacy/utility pair to any number of metrics.

use crate::error::CoreError;
use crate::system::SystemDefinition;
use geopriv_lppm::ParameterScale;
use geopriv_metrics::{Direction, MetricId};
use geopriv_mobility::Dataset;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a parameter sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Number of sweep points across the parameter range (Figure 1 uses ~25).
    pub points: usize,
    /// Number of protection/evaluation repetitions per point; metric values
    /// are averaged to smooth out the randomness of the mechanism.
    pub repetitions: usize,
    /// Master seed; every (point, repetition) pair derives its own RNG from it.
    pub seed: u64,
    /// Run sweep points on multiple threads.
    pub parallel: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { points: 25, repetitions: 1, seed: 0xC0FFEE, parallel: true }
    }
}

impl SweepConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for zero points or repetitions.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.points < 2 {
            return Err(CoreError::InvalidConfiguration {
                reason: format!("a sweep needs at least 2 points, got {}", self.points),
            });
        }
        if self.repetitions == 0 {
            return Err(CoreError::InvalidConfiguration {
                reason: "a sweep needs at least 1 repetition".to_string(),
            });
        }
        Ok(())
    }
}

/// The measurements of one metric across a whole sweep: one column of the
/// [`SweepResult`] column store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricColumn {
    /// Id of the metric inside the suite.
    pub id: MetricId,
    /// Which way the metric improves.
    pub direction: Direction,
    /// Mean metric value per sweep point (over the repetitions), aligned with
    /// [`SweepResult::parameters`].
    pub means: Vec<f64>,
    /// Per-repetition metric values per sweep point.
    pub runs: Vec<Vec<f64>>,
}

impl MetricColumn {
    /// Standard deviation of the metric over the repetitions at one sweep
    /// point (zero for a single repetition).
    pub fn std(&self, point: usize) -> f64 {
        self.runs.get(point).map_or(0.0, |runs| std_dev(runs))
    }
}

fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Derives the RNG seed of one `(point, repetition)` work unit from the
/// sweep's master seed.
///
/// This is the seed contract shared by [`ExperimentRunner`] and
/// [`crate::campaign::CampaignRunner`]: because the derived seed depends only
/// on the master seed, the point index and the repetition index — never on
/// scheduling, thread count or the position of the unit inside a larger
/// campaign — any execution strategy reproduces the exact same random streams.
pub fn derive_unit_seed(master_seed: u64, point_index: usize, repetition: usize) -> u64 {
    master_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((point_index as u64) << 32)
        .wrapping_add(repetition as u64)
}

/// Runs `count` independent work items on a shared work-stealing pool and
/// returns their results in index order.
///
/// Sequential execution (`parallel == false`, a single item, or a single
/// available core) calls `work` in index order on the current thread; parallel
/// execution lets each thread atomically claim the next unclaimed index. The
/// output is indistinguishable between the two modes as long as `work(i)` is
/// a pure function of `i`.
pub(crate) fn run_indexed<T, F>(count: usize, parallel: bool, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(count).max(1);
    if !parallel || threads == 1 {
        return (0..count).map(work).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    let next_index = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next_index.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= count {
                    break;
                }
                let result = work(i);
                results.lock()[i] = Some(result);
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every work item was executed"))
        .collect()
}

/// The result of a full parameter sweep: a per-metric column store, one
/// [`MetricColumn`] per suite metric, over parameters sorted by increasing
/// value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Name of the mechanism that was swept.
    pub lppm_name: String,
    /// Name of the swept parameter.
    pub parameter_name: String,
    /// Scale of the swept parameter.
    pub parameter_scale: ParameterScale,
    /// The swept parameter values, in increasing order.
    pub parameters: Vec<f64>,
    /// One column per metric, in suite order.
    pub columns: Vec<MetricColumn>,
}

impl SweepResult {
    /// Builds a result, validating that every column has one mean (and, when
    /// per-repetition runs are recorded, one run list) per parameter and that
    /// metric ids are unique.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for ragged columns or
    /// duplicate ids.
    pub fn new(
        lppm_name: impl Into<String>,
        parameter_name: impl Into<String>,
        parameter_scale: ParameterScale,
        parameters: Vec<f64>,
        columns: Vec<MetricColumn>,
    ) -> Result<Self, CoreError> {
        let mut seen = std::collections::BTreeSet::new();
        for column in &columns {
            if column.means.len() != parameters.len() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "metric \"{}\" has {} means for {} sweep points",
                        column.id,
                        column.means.len(),
                        parameters.len()
                    ),
                });
            }
            // An empty runs vector means "per-repetition values not recorded"
            // (synthetic sweeps); anything else must align with the points.
            if !column.runs.is_empty() && column.runs.len() != parameters.len() {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!(
                        "metric \"{}\" has {} run lists for {} sweep points",
                        column.id,
                        column.runs.len(),
                        parameters.len()
                    ),
                });
            }
            if !seen.insert(column.id.clone()) {
                return Err(CoreError::InvalidConfiguration {
                    reason: format!("duplicate metric id \"{}\" in sweep result", column.id),
                });
            }
        }
        Ok(Self {
            lppm_name: lppm_name.into(),
            parameter_name: parameter_name.into(),
            parameter_scale,
            parameters,
            columns,
        })
    }

    /// Number of sweep points.
    pub fn points(&self) -> usize {
        self.parameters.len()
    }

    /// The metric ids, in suite order.
    pub fn ids(&self) -> Vec<MetricId> {
        self.columns.iter().map(|c| c.id.clone()).collect()
    }

    /// The column of one metric.
    pub fn column(&self, id: &MetricId) -> Option<&MetricColumn> {
        self.columns.iter().find(|c| &c.id == id)
    }

    /// The mean values of one metric, aligned with
    /// [`SweepResult::parameters`].
    pub fn values(&self, id: &MetricId) -> Option<&[f64]> {
        self.column(id).map(|c| c.means.as_slice())
    }

    /// The first column improving in `direction` — how the paper's "the
    /// privacy curve" / "the utility curve" map onto a column store.
    pub fn column_by_direction(&self, direction: Direction) -> Option<&MetricColumn> {
        self.columns.iter().find(|c| c.direction == direction)
    }
}

/// Runs parameter sweeps for a [`SystemDefinition`] on a dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExperimentRunner {
    config: SweepConfig,
}

impl ExperimentRunner {
    /// Creates a runner with the given sweep configuration.
    pub fn new(config: SweepConfig) -> Self {
        Self { config }
    }

    /// The sweep configuration.
    pub fn config(&self) -> SweepConfig {
        self.config
    }

    /// Runs the sweep: for every parameter value, protect the dataset and
    /// evaluate every metric of the suite, in suite order.
    ///
    /// The actual-side metric state (POI extraction, bounding boxes — see
    /// [`geopriv_metrics::PrivacyMetric::prepare`]) is prepared once for the
    /// whole sweep and reused at every `(point, repetition)` sample; the
    /// metrics guarantee this is bit-identical to direct evaluation.
    ///
    /// Results are deterministic for a given `(dataset, config.seed)` pair,
    /// regardless of the number of threads.
    ///
    /// # Errors
    ///
    /// Propagates configuration, protection and metric errors.
    pub fn run(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
    ) -> Result<SweepResult, CoreError> {
        self.config.validate()?;
        let descriptor = system.parameter();
        let values = descriptor.sweep(self.config.points);
        let prepared: Vec<geopriv_metrics::PreparedState> = system
            .suite()
            .iter()
            .map(|m| m.prepare(dataset).map_err(CoreError::from))
            .collect::<Result<_, _>>()?;

        // Per point: per metric (suite order): per repetition value.
        let per_point: Vec<Vec<Vec<f64>>> = run_indexed(values.len(), self.config.parallel, |i| {
            self.measure_point(system, dataset, &prepared, i, values[i])
        })
        .into_iter()
        .collect::<Result<Vec<_>, CoreError>>()?;

        let mut columns: Vec<MetricColumn> = system
            .suite()
            .iter()
            .map(|m| MetricColumn {
                id: m.id(),
                direction: m.direction(),
                means: Vec::with_capacity(values.len()),
                runs: Vec::with_capacity(values.len()),
            })
            .collect();
        for point_runs in per_point {
            for (column, runs) in columns.iter_mut().zip(point_runs) {
                column.means.push(runs.iter().sum::<f64>() / runs.len() as f64);
                column.runs.push(runs);
            }
        }

        SweepResult::new(
            system.factory().name(),
            descriptor.name(),
            descriptor.scale(),
            values,
            columns,
        )
    }

    fn measure_point(
        &self,
        system: &SystemDefinition,
        dataset: &Dataset,
        prepared: &[geopriv_metrics::PreparedState],
        index: usize,
        value: f64,
    ) -> Result<Vec<Vec<f64>>, CoreError> {
        let lppm = system.factory().instantiate(value)?;
        let mut runs_by_metric: Vec<Vec<f64>> =
            vec![Vec::with_capacity(self.config.repetitions); system.suite().len()];
        for repetition in 0..self.config.repetitions {
            // Derive a per-(point, repetition) seed so parallel execution and
            // sequential execution see exactly the same random streams.
            let mut rng =
                StdRng::seed_from_u64(derive_unit_seed(self.config.seed, index, repetition));
            let protected = lppm.protect_dataset(dataset, &mut rng)?;
            for ((metric, state), runs) in
                system.suite().iter().zip(prepared).zip(runs_by_metric.iter_mut())
            {
                runs.push(metric.evaluate_prepared(state, dataset, &protected)?.value());
            }
        }
        Ok(runs_by_metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_mobility::generator::TaxiFleetBuilder;

    fn small_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(77);
        TaxiFleetBuilder::new()
            .drivers(3)
            .duration_hours(4.0)
            .sampling_interval_s(60.0)
            .build(&mut rng)
            .unwrap()
    }

    fn small_config() -> SweepConfig {
        SweepConfig { points: 6, repetitions: 1, seed: 42, parallel: true }
    }

    fn privacy_id() -> MetricId {
        MetricId::new("poi-retrieval")
    }

    fn utility_id() -> MetricId {
        MetricId::new("area-coverage")
    }

    #[test]
    fn config_validation() {
        assert!(SweepConfig::default().validate().is_ok());
        assert!(SweepConfig { points: 1, ..SweepConfig::default() }.validate().is_err());
        assert!(SweepConfig { repetitions: 0, ..SweepConfig::default() }.validate().is_err());
    }

    #[test]
    fn sweep_produces_ordered_bounded_samples() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let runner = ExperimentRunner::new(small_config());
        let result = runner.run(&system, &dataset).unwrap();

        assert_eq!(result.points(), 6);
        assert_eq!(result.lppm_name, "geo-indistinguishability");
        assert_eq!(result.parameter_name, "epsilon");
        assert_eq!(result.ids(), vec![privacy_id(), utility_id()]);
        assert_eq!(result.column(&privacy_id()).unwrap().direction, Direction::LowerIsBetter);
        assert_eq!(result.column(&utility_id()).unwrap().direction, Direction::HigherIsBetter);
        assert_eq!(result.column_by_direction(Direction::LowerIsBetter).unwrap().id, privacy_id());

        // Parameters are sorted and span exactly the paper's range: the sweep
        // pins both endpoints, no floating-point drift tolerated.
        assert!(result.parameters.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(result.parameters[0], 1e-4);
        assert_eq!(*result.parameters.last().unwrap(), 1.0);

        // Metrics are bounded.
        for column in &result.columns {
            assert_eq!(column.means.len(), 6);
            for (point, mean) in column.means.iter().enumerate() {
                assert!((0.0..=1.0).contains(mean), "{} = {mean}", column.id);
                assert_eq!(column.runs[point].len(), 1);
                assert_eq!(column.std(point), 0.0);
            }
        }

        // The qualitative shape of Figure 1: privacy and utility are (weakly)
        // higher at the largest epsilon than at the smallest.
        for column in &result.columns {
            assert!(column.means.last().unwrap() >= column.means.first().unwrap());
        }
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let parallel = ExperimentRunner::new(SweepConfig { parallel: true, ..small_config() })
            .run(&system, &dataset)
            .unwrap();
        let sequential = ExperimentRunner::new(SweepConfig { parallel: false, ..small_config() })
            .run(&system, &dataset)
            .unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn sweeps_are_deterministic_in_the_seed() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let run = |seed| {
            ExperimentRunner::new(SweepConfig { seed, ..small_config() })
                .run(&system, &dataset)
                .unwrap()
        };
        assert_eq!(run(1), run(1));
        // Different seeds give different measurements (the mechanism is random).
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn repetitions_are_recorded_and_averaged() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let config = SweepConfig { points: 3, repetitions: 3, seed: 5, parallel: true };
        let result = ExperimentRunner::new(config).run(&system, &dataset).unwrap();
        for column in &result.columns {
            for (point, runs) in column.runs.iter().enumerate() {
                assert_eq!(runs.len(), 3);
                let mean: f64 = runs.iter().sum::<f64>() / 3.0;
                assert!((mean - column.means[point]).abs() < 1e-12);
                assert!(column.std(point) >= 0.0);
            }
        }
    }

    #[test]
    fn unit_seeds_are_unique_and_scheduling_independent() {
        // Distinct (point, repetition) pairs in a realistic sweep never share
        // a seed under one master seed.
        let mut seen = std::collections::BTreeSet::new();
        for point in 0..64 {
            for rep in 0..16 {
                assert!(seen.insert(derive_unit_seed(42, point, rep)));
            }
        }
        // The derivation is a pure function of its three inputs.
        assert_eq!(derive_unit_seed(7, 3, 1), derive_unit_seed(7, 3, 1));
        assert_ne!(derive_unit_seed(7, 3, 1), derive_unit_seed(8, 3, 1));
    }

    #[test]
    fn run_indexed_preserves_index_order_in_both_modes() {
        let sequential = run_indexed(17, false, |i| i * i);
        let parallel = run_indexed(17, true, |i| i * i);
        assert_eq!(sequential, parallel);
        assert_eq!(sequential, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert!(run_indexed(0, true, |i| i).is_empty());
    }

    #[test]
    fn sweep_result_constructor_validates() {
        let column = |id: &str, means: Vec<f64>| MetricColumn {
            id: MetricId::new(id),
            direction: Direction::HigherIsBetter,
            runs: means.iter().map(|&m| vec![m]).collect(),
            means,
        };
        assert!(SweepResult::new(
            "m",
            "p",
            ParameterScale::Linear,
            vec![0.1, 0.2],
            vec![column("a", vec![0.0, 1.0]), column("b", vec![1.0, 0.0])],
        )
        .is_ok());
        // Ragged column.
        assert!(SweepResult::new(
            "m",
            "p",
            ParameterScale::Linear,
            vec![0.1, 0.2],
            vec![column("a", vec![0.0])],
        )
        .is_err());
        // Runs recorded but not aligned with the points.
        let mut misaligned = column("a", vec![0.0, 1.0]);
        misaligned.runs.pop();
        assert!(SweepResult::new(
            "m",
            "p",
            ParameterScale::Linear,
            vec![0.1, 0.2],
            vec![misaligned],
        )
        .is_err());
        // Empty runs are the "not recorded" convention used by synthetic sweeps.
        let mut unrecorded = column("a", vec![0.0, 1.0]);
        unrecorded.runs.clear();
        assert!(SweepResult::new(
            "m",
            "p",
            ParameterScale::Linear,
            vec![0.1, 0.2],
            vec![unrecorded],
        )
        .is_ok());
        // Duplicate id.
        assert!(SweepResult::new(
            "m",
            "p",
            ParameterScale::Linear,
            vec![0.1, 0.2],
            vec![column("a", vec![0.0, 1.0]), column("a", vec![1.0, 0.0])],
        )
        .is_err());
    }

    #[test]
    fn invalid_config_is_rejected_by_run() {
        let dataset = small_dataset();
        let system = SystemDefinition::paper_geoi();
        let runner = ExperimentRunner::new(SweepConfig { points: 1, ..SweepConfig::default() });
        assert!(runner.run(&system, &dataset).is_err());
    }
}
