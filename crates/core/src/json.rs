//! A minimal JSON parser for the framework's wire formats.
//!
//! The vendored `serde` is a marker-trait shim (see `vendor/README.md`), so
//! the JSON the framework *renders* by hand (the [`crate::report`] exporters,
//! the bench baselines) must also be *parsed* by hand. This module is that
//! inverse: a small recursive-descent parser producing a [`JsonValue`] tree
//! whose objects preserve insertion order — the property the round-trip
//! golden tests rely on.
//!
//! Numbers are parsed with Rust's `str::parse::<f64>`, which is correctly
//! rounded: a float rendered with the exporters' shortest round-trip
//! `Display` re-parses to the bit-identical `f64`. That is what lets the
//! serving layer hand protected coordinates through JSON without breaking
//! the workspace's bit-equivalence contracts.

use crate::error::CoreError;
use std::fmt;

/// One parsed JSON value. Object members keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`, like the exporters emit).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source member order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Parse`] on malformed input, with a byte offset
    /// in the reason.
    pub fn parse(input: &str) -> Result<JsonValue, CoreError> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// The member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(name, _)| name == key).map(|(_, value)| value)
            }
            _ => None,
        }
    }

    /// The object members, in source order.
    pub fn members(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The array elements.
    pub fn elements(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(elements) => Some(elements),
            _ => None,
        }
    }

    /// The numeric value; `null` reads as NaN (the exporters render
    /// non-finite floats as `null`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(value) => Some(*value),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The numeric value as an exact unsigned integer.
    ///
    /// Numbers are carried as `f64`, which represents integers exactly only
    /// up to 2⁵³ − 1; beyond that, distinct source integers collapse onto
    /// one float. Rather than silently rounding (which would let two
    /// different user ids collide onto one identity), values above that
    /// bound return `None` — ids in the wire formats must fit 53 bits.
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = ((1u64 << 53) - 1) as f64;
        match self {
            JsonValue::Number(value)
                if value.fract() == 0.0 && *value >= 0.0 && *value <= MAX_EXACT =>
            {
                Some(*value as u64)
            }
            _ => None,
        }
    }

    /// The string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(value) => Some(value),
            _ => None,
        }
    }

    /// The boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(value) => Some(*value),
            _ => None,
        }
    }

    /// A one-word description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind())
    }
}

/// Maximum container nesting the parser accepts. The recursive descent uses
/// the call stack, so an unbounded depth would let a small hostile document
/// (kilobytes of `[`) overflow the stack and abort the process — a failure
/// no `catch_unwind` can intercept. 128 is far beyond any document the
/// exporters emit while keeping the worst-case stack a few frames deep.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, reason: &str) -> CoreError {
        CoreError::Parse { reason: format!("{reason} (at byte {})", self.pos) }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), CoreError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, CoreError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected \"{word}\"")))
        }
    }

    fn nested(
        &mut self,
        container: fn(&mut Self) -> Result<JsonValue, CoreError>,
    ) -> Result<JsonValue, CoreError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("document nesting exceeds the depth limit"));
        }
        self.depth += 1;
        let value = container(self);
        self.depth -= 1;
        value
    }

    fn value(&mut self) -> Result<JsonValue, CoreError> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, CoreError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, CoreError> {
        self.expect(b'[')?;
        let mut elements = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(elements));
        }
        loop {
            elements.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(elements));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, CoreError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("malformed \\u escape"))?;
                            // The exporters only emit BMP escapes (control
                            // characters); surrogate pairs are out of scope.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.error("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the byte
                    // stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, CoreError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        let value: f64 = text.parse().map_err(|_| self.error("malformed number"))?;
        Ok(JsonValue::Number(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap().as_bool(), Some(false));
        assert_eq!(JsonValue::parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("\"a b\"").unwrap().as_str(), Some("a b"));
        assert_eq!(
            JsonValue::parse("[1, 2]").unwrap(),
            JsonValue::Array(vec![JsonValue::Number(1.0), JsonValue::Number(2.0)])
        );
        let object = JsonValue::parse("{\"a\": 1, \"b\": [true, null]}").unwrap();
        assert_eq!(object.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(object.get("b").unwrap().elements().unwrap().len(), 2);
        assert!(object.get("c").is_none());
        assert_eq!(object.members().unwrap()[0].0, "a");
        assert_eq!(JsonValue::parse("{}").unwrap(), JsonValue::Object(vec![]));
        assert_eq!(JsonValue::parse("[]").unwrap(), JsonValue::Array(vec![]));
    }

    #[test]
    fn object_member_order_is_preserved() {
        let object = JsonValue::parse("{\"z\": 1, \"a\": 2, \"m\": 3}").unwrap();
        let keys: Vec<&str> = object.members().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn string_escapes_resolve() {
        assert_eq!(
            JsonValue::parse(r#""a\"b\\c\nd\te\u0001""#).unwrap().as_str(),
            Some("a\"b\\c\nd\te\u{1}")
        );
        assert_eq!(JsonValue::parse(r#""caf\u00e9 é""#).unwrap().as_str(), Some("café é"));
    }

    #[test]
    fn shortest_roundtrip_floats_reparse_bit_identically() {
        // The exporters render floats with the shortest round-trip Display;
        // the parser must give the bit-identical f64 back.
        for &value in
            &[0.1, 1.0 / 3.0, 1e-4, 0.010022339934432, f64::MAX, f64::MIN_POSITIVE, -2.5e-17]
        {
            let rendered = format!("{value}");
            let parsed = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), value.to_bits(), "{rendered} drifted");
        }
        // Non-finite floats are rendered as null and read back as NaN.
        assert!(JsonValue::parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn malformed_documents_fail_with_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": }",
            "tru",
            "\"open",
            "1 2",
            "{\"a\":1,}",
            "nul",
            "--1",
            "\"bad \\q escape\"",
            "\"\\u00g1\"",
        ] {
            let err = JsonValue::parse(bad).unwrap_err();
            assert!(
                matches!(err, CoreError::Parse { .. }),
                "{bad:?} should fail with Parse, got {err}"
            );
            assert!(err.to_string().contains("at byte"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn hostile_nesting_is_rejected_not_a_stack_overflow() {
        // ~100KB of '[' used to overflow the worker stack and SIGABRT the
        // whole process; the depth limit turns it into a typed parse error.
        for hostile in ["[".repeat(100_000), "{\"a\":".repeat(100_000)] {
            let err = JsonValue::parse(&hostile).unwrap_err();
            assert!(matches!(err, CoreError::Parse { .. }));
            assert!(err.to_string().contains("depth"), "{err}");
        }
        // Sane nesting well below the limit still parses.
        let nested = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(JsonValue::parse(&nested).is_ok());
    }

    #[test]
    fn as_u64_rejects_inexact_integers() {
        // 2^53 - 1 is the largest exactly-representable integer; beyond it
        // distinct ids collapse onto one f64 and must not become one user.
        assert_eq!(JsonValue::parse("9007199254740991").unwrap().as_u64(), Some((1u64 << 53) - 1));
        for too_big in ["9007199254740992", "9007199254740993", "18446744073709551615", "1e300"] {
            assert_eq!(JsonValue::parse(too_big).unwrap().as_u64(), None, "{too_big}");
        }
    }

    #[test]
    fn accessor_mismatches_return_none() {
        let value = JsonValue::parse("{\"a\": 1.5}").unwrap();
        assert!(value.as_f64().is_none());
        assert!(value.as_str().is_none());
        assert!(value.as_bool().is_none());
        assert!(value.elements().is_none());
        assert!(value.get("a").unwrap().as_u64().is_none()); // 1.5 is not integral
        assert!(value.get("a").unwrap().members().is_none());
        assert_eq!(value.kind(), "object");
        assert_eq!(value.to_string(), "object");
        assert_eq!(JsonValue::Null.kind(), "null");
        assert_eq!(JsonValue::parse("-1").unwrap().as_u64(), None);
    }
}
