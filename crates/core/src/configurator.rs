//! Configuration by model inversion (step 3 of the framework).
//!
//! "Finally, the LPPM configuration (i.e. the value of p_i) is computed by
//! inverting the f function, using the specified privacy and utility
//! objectives." [`Configurator`] turns a [`FittedSuite`] and a set of
//! per-metric [`Objectives`] into a concrete [`ConfigPoint`]
//! recommendation — the paper's "configuring ε = 0.01 ensures 80 % utility
//! while guaranteeing 10 % privacy".
//!
//! On a one-axis space the inversion is analytic, exactly as in the paper:
//! every constraint's feasible interval is computed by inverting the fitted
//! model and the intervals are intersected. On multi-axis spaces the
//! configurator searches the modeled region on a deterministic scale-aware
//! candidate grid, keeps the points satisfying every constraint, and
//! recommends the one with the largest worst-case slack.

use crate::error::CoreError;
use crate::experiment::run_indexed;
use crate::modeling::{FittedSuite, MetricModel, MetricResponse, PerUserFits, UserFitOutcome};
use crate::objectives::{Constraint, ConstraintKind, Objectives};
use geopriv_lppm::{ConfigPoint, ConfigSpace, ParameterDescriptor, ParameterScale};
use geopriv_metrics::MetricId;
use geopriv_mobility::UserId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome of inverting the fitted models for a set of objectives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The recommended configuration: one value per axis of the space.
    pub point: ConfigPoint,
    /// Per axis, the interval of values covered by configurations satisfying
    /// every constraint (for a one-axis space, the exact analytic feasible
    /// interval intersected with the constrained models' domains).
    pub feasible: Vec<(String, (f64, f64))>,
    /// Metric values predicted by the fitted models at the recommended
    /// point, for every metric of the suite, in suite order.
    pub predictions: Vec<(MetricId, f64)>,
}

impl Recommendation {
    /// The predicted value of one metric at the recommended point.
    pub fn predicted(&self, id: &MetricId) -> Option<f64> {
        self.predictions.iter().find(|(m, _)| m == id).map(|(_, v)| *v)
    }

    /// The recommended scalar value of a one-axis recommendation (legacy 1-D
    /// accessor).
    ///
    /// # Panics
    ///
    /// Panics for multi-axis recommendations — read
    /// [`Recommendation::point`] there.
    pub fn parameter(&self) -> f64 {
        self.point.single().unwrap_or_else(|| {
            panic!("recommendation spans {} axes; read .point instead", self.point.len())
        })
    }

    /// The axis name of a one-axis recommendation (legacy 1-D accessor).
    ///
    /// # Panics
    ///
    /// Panics for multi-axis recommendations.
    pub fn parameter_name(&self) -> &str {
        match self.point.values() {
            [(name, _)] => name,
            values => panic!("recommendation spans {} axes; read .point instead", values.len()),
        }
    }

    /// The feasible interval of a one-axis recommendation (legacy 1-D
    /// accessor).
    ///
    /// # Panics
    ///
    /// Panics for multi-axis recommendations — read
    /// [`Recommendation::feasible`] there.
    pub fn feasible_range(&self) -> (f64, f64) {
        match self.feasible.as_slice() {
            [(_, range)] => *range,
            ranges => panic!("recommendation spans {} axes; read .feasible instead", ranges.len()),
        }
    }
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ((name, value), (_, range))) in
            self.point.values().iter().zip(&self.feasible).enumerate()
        {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{name} = {value:.4} (feasible in [{:.4}, {:.4}])", range.0, range.1)?;
        }
        for (id, value) in &self.predictions {
            write!(f, ", predicted {id} {value:.3}")?;
        }
        Ok(())
    }
}

/// The explicit per-user feasibility verdict of a
/// [`Configurator::recommend_per_user`] entry.
///
/// # Fallback policy (normative)
///
/// This enum is the single normative statement of the framework's fallback
/// policy; every other description of it (reports, wire formats, the serving
/// layer) mirrors what is written here:
///
/// 1. A **feasible** user is deployed at the point her *own* models
///    recommend. Only these users carry `fallback = false` on the wire.
/// 2. An **infeasible** user (her own models admit no point satisfying every
///    objective) is assigned the *dataset-level* point — the recommendation
///    the whole dataset's models produce — with the reason recorded. Her
///    predictions are still computed under her own models at that point.
/// 3. An **unmodeled** user (excluded by a metric, or a degenerate response)
///    is likewise assigned the dataset-level point; she has no models, so
///    her predictions are empty.
/// 4. The policy never invents intermediate points and never drops a user:
///    every user of the study appears in the output with exactly one of
///    these three verdicts, and the deployed point is always either her own
///    or the dataset anchor.
///
/// The serving layer extends the same policy to users *absent* from the
/// recommendation entirely (seen at request time only): they are served at
/// the dataset-level point, exactly as rule 2 treats known-but-infeasible
/// users.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UserVerdict {
    /// The user's own models admit a configuration satisfying every
    /// constraint; her recommended point is her own.
    Feasible,
    /// No configuration satisfies every constraint under this user's models;
    /// the fallback policy assigned her the dataset-level point.
    Infeasible {
        /// Why the user's own inversion failed.
        reason: String,
    },
    /// The user could not be modeled at all (a metric excluded her, or her
    /// response was degenerate); the fallback policy assigned her the
    /// dataset-level point.
    Unmodeled {
        /// Why the user has no models.
        reason: String,
    },
}

impl UserVerdict {
    /// Returns `true` for a user whose own models produced her point.
    pub fn is_feasible(&self) -> bool {
        matches!(self, UserVerdict::Feasible)
    }

    /// Short machine-stable label (`feasible` / `infeasible` / `unmodeled`).
    pub fn label(&self) -> &'static str {
        match self {
            UserVerdict::Feasible => "feasible",
            UserVerdict::Infeasible { .. } => "infeasible",
            UserVerdict::Unmodeled { .. } => "unmodeled",
        }
    }
}

impl fmt::Display for UserVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UserVerdict::Feasible => write!(f, "feasible"),
            UserVerdict::Infeasible { reason } => write!(f, "infeasible ({reason})"),
            UserVerdict::Unmodeled { reason } => write!(f, "unmodeled ({reason})"),
        }
    }
}

/// One user's row of a per-user recommendation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserRecommendation {
    /// The user this row configures.
    pub user: UserId,
    /// Whether the point is the user's own or the fallback, and why.
    pub verdict: UserVerdict,
    /// The configuration to deploy for this user: her own satisfying point
    /// when feasible, the dataset-level point otherwise.
    pub point: ConfigPoint,
    /// Metric values predicted at `point` under the *user's own* models, in
    /// suite order — empty for [`UserVerdict::Unmodeled`] users (they have
    /// no models to predict with).
    pub predictions: Vec<(MetricId, f64)>,
}

impl UserRecommendation {
    /// The predicted value of one metric at this user's point.
    pub fn predicted(&self, id: &MetricId) -> Option<f64> {
        self.predictions.iter().find(|(m, _)| m == id).map(|(_, v)| *v)
    }

    /// Returns `true` when the fallback policy assigned this user's point.
    pub fn used_fallback(&self) -> bool {
        !self.verdict.is_feasible()
    }
}

/// The outcome of a per-user inversion: the dataset-level recommendation
/// (also the fallback anchor) plus one [`UserRecommendation`] per user.
///
/// This is the deployment artifact of the framework: exported with
/// [`crate::report::per_user_recommendation_to_json`] and loaded back by the
/// serving layer with [`crate::report::per_user_recommendation_from_json`].
/// Which users ride [`PerUserRecommendation::dataset`] is governed by the
/// fallback policy documented on [`UserVerdict`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerUserRecommendation {
    /// The dataset-grain recommendation — what every user would get without
    /// per-user configuration, and the fallback point for infeasible users.
    pub dataset: Recommendation,
    /// One row per user, in the sweep's user order.
    pub users: Vec<UserRecommendation>,
}

impl PerUserRecommendation {
    /// The row of one user.
    pub fn get(&self, user: UserId) -> Option<&UserRecommendation> {
        self.users.iter().find(|u| u.user == user)
    }

    /// Number of users configured with their own point.
    pub fn feasible_count(&self) -> usize {
        self.users.iter().filter(|u| u.verdict.is_feasible()).count()
    }

    /// Number of users on the fallback point.
    pub fn fallback_count(&self) -> usize {
        self.users.len() - self.feasible_count()
    }
}

/// Inverts fitted metric models to recommend a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Configurator {
    fitted: FittedSuite,
    resolution: usize,
}

impl Configurator {
    /// Creates a configurator from a fitted suite. Axis scales (arithmetic
    /// vs geometric midpoints, candidate spacing) come from the suite's
    /// [`geopriv_lppm::ConfigSpace`].
    pub fn new(fitted: FittedSuite) -> Self {
        Self { fitted, resolution: 25 }
    }

    /// Sets the per-axis candidate resolution of the multi-axis search
    /// (default 25; clamped to at least 2). One-axis recommendations are
    /// analytic and ignore it.
    #[must_use]
    pub fn with_search_resolution(mut self, resolution: usize) -> Self {
        self.resolution = resolution.max(2);
        self
    }

    /// The underlying fitted suite.
    pub fn fitted(&self) -> &FittedSuite {
        &self.fitted
    }

    /// Computes the parameter interval satisfying one constraint
    /// `metric(x) ≤/≥ bound` for a monotone model, clipped to `domain`.
    fn interval_for(
        model: &crate::modeling::ParametricModel,
        constraint: &Constraint,
        domain: (f64, f64),
    ) -> Result<(f64, f64), CoreError> {
        let critical = model.invert(constraint.bound())?;
        // An upper bound on an increasing metric caps the parameter from
        // above; the three other (kind, slope-sign) combinations follow by
        // symmetry.
        let caps_above = match constraint.kind() {
            ConstraintKind::AtMost => model.is_increasing(),
            ConstraintKind::AtLeast => !model.is_increasing(),
        };
        if caps_above {
            Ok((domain.0, critical.min(domain.1)))
        } else {
            Ok((critical.max(domain.0), domain.1))
        }
    }

    /// The per-axis locations of the constraint boundaries: for every
    /// constrained metric with an invertible 1-D fit along an axis, the
    /// parameter value where the fitted model meets the constraint's bound —
    /// `(axis name, (boundary, boundary))` as a degenerate interval, the
    /// format [`crate::experiment::SweepPlan::focus`] accepts.
    ///
    /// This is the feedback edge of the adaptive planning loop
    /// ([`crate::experiment::SweepMode::Adaptive`]): a coarse fit's boundary
    /// estimates go back into the plan, and refinement bisects the measured
    /// gaps around them so the next fit pins the feasibility boundary down
    /// more precisely. Metrics without an axis fit on a given axis (surface
    /// responses) and non-invertible (flat) responses contribute nothing;
    /// boundaries outside a model's fitted domain are dropped (they are
    /// extrapolations, not boundaries the data saw).
    ///
    /// # Errors
    ///
    /// As [`Configurator::recommend`] for unknown metrics, invalid bounds or
    /// an empty objective set.
    pub fn constraint_boundaries(
        &self,
        objectives: &Objectives,
    ) -> Result<Vec<crate::experiment::AxisInterval>, CoreError> {
        let constrained = Self::constrained_models(&self.fitted, objectives)?;
        let mut boundaries = Vec::new();
        for axis in self.fitted.space.axes() {
            for (_, constraint, model) in &constrained {
                let Some(fit) = model.axis_fit(axis.name()) else { continue };
                let Ok(critical) = fit.model.invert(constraint.bound()) else { continue };
                let (lo, hi) = fit.model.domain();
                if critical.is_finite() && critical >= lo && critical <= hi {
                    boundaries.push((axis.name().to_string(), (critical, critical)));
                }
            }
        }
        Ok(boundaries)
    }

    /// Resolves and validates every constrained metric's model inside
    /// `fitted`.
    fn constrained_models<'a>(
        fitted: &'a FittedSuite,
        objectives: &'a Objectives,
    ) -> Result<Vec<(&'a MetricId, &'a Constraint, &'a MetricModel)>, CoreError> {
        if objectives.is_empty() {
            return Err(CoreError::InvalidConfiguration {
                reason: "recommendation needs at least one constraint".to_string(),
            });
        }
        objectives
            .constraints()
            .iter()
            .map(|(id, constraint)| {
                constraint.validate()?;
                let model = fitted.model(id).ok_or_else(|| CoreError::UnknownMetric {
                    metric: id.to_string(),
                    available: fitted.ids().iter().map(MetricId::to_string).collect(),
                })?;
                Ok((id, constraint, model))
            })
            .collect()
    }

    /// Recommends a configuration point satisfying every constraint.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfiguration`] for an empty objective set or an
    ///   invalid bound.
    /// * [`CoreError::UnknownMetric`] when a constraint references a metric
    ///   that was not fitted.
    /// * [`CoreError::Infeasible`] when no configuration in the modeled
    ///   region satisfies every constraint.
    /// * [`CoreError::Analysis`] when a model cannot be inverted.
    pub fn recommend(&self, objectives: &Objectives) -> Result<Recommendation, CoreError> {
        Self::recommend_on(&self.fitted, self.resolution, objectives)
    }

    /// [`Configurator::recommend`] over an arbitrary fitted suite — the
    /// shared engine behind the dataset-level recommendation and every
    /// per-user recommendation.
    fn recommend_on(
        fitted: &FittedSuite,
        resolution: usize,
        objectives: &Objectives,
    ) -> Result<Recommendation, CoreError> {
        let constrained = Self::constrained_models(fitted, objectives)?;
        if fitted.space.single_axis().is_some() {
            Self::recommend_analytic(fitted, &constrained)
        } else {
            Self::recommend_searched(fitted, resolution, &constrained)
        }
    }

    /// The paper's analytic inversion on a one-axis space — arithmetic
    /// unchanged from the single-scalar framework.
    fn recommend_analytic(
        fitted: &FittedSuite,
        constrained: &[(&MetricId, &Constraint, &MetricModel)],
    ) -> Result<Recommendation, CoreError> {
        let axis = fitted.space.single_axis().expect("one-axis space").clone();
        let models: Vec<(&MetricId, &Constraint, &crate::modeling::ParametricModel)> = constrained
            .iter()
            .map(|(id, constraint, model)| {
                let fit = model.axis().expect("one-axis suites carry axis fits");
                (*id, *constraint, &fit.model)
            })
            .collect();

        // Work inside the intersection of what the constrained models were
        // fitted on: in the paper's pair the privacy zone is typically
        // narrower (Figure 1a) than the utility zone (Figure 1b); the
        // recommendation must stay where every constrained model is
        // meaningful.
        let domain = models
            .iter()
            .map(|(_, _, m)| m.domain())
            .reduce(|a, b| (a.0.max(b.0), a.1.min(b.1)))
            .expect("objectives are non-empty");
        if domain.0 >= domain.1 {
            return Err(CoreError::Infeasible {
                reason: "the constrained metrics' models were fitted on disjoint parameter ranges"
                    .to_string(),
            });
        }

        let mut feasible = domain;
        let mut intervals = Vec::with_capacity(models.len());
        for (id, constraint, model) in &models {
            let interval = Self::interval_for(model, constraint, domain)?;
            feasible = (feasible.0.max(interval.0), feasible.1.min(interval.1));
            intervals.push((*id, *constraint, interval));
        }
        if feasible.0 > feasible.1 {
            let conflict: Vec<String> = intervals
                .iter()
                .map(|(id, constraint, interval)| {
                    format!(
                        "{id} {constraint} requires {} in [{:.4}, {:.4}]",
                        axis.name(),
                        interval.0,
                        interval.1
                    )
                })
                .collect();
            return Err(CoreError::Infeasible {
                reason: format!("no value satisfies every constraint: {}", conflict.join("; ")),
            });
        }

        let parameter = match axis.scale() {
            ParameterScale::Linear => (feasible.0 + feasible.1) / 2.0,
            ParameterScale::Logarithmic => (feasible.0 * feasible.1).sqrt(),
        };

        Ok(Recommendation {
            point: fitted.space.point_from_coords(&[parameter])?,
            feasible: vec![(axis.name().to_string(), feasible)],
            predictions: fitted
                .models
                .iter()
                .map(|m| {
                    let fit = m.axis().expect("one-axis suites carry axis fits");
                    (m.id.clone(), fit.model.predict(parameter))
                })
                .collect(),
        })
    }

    /// The candidate sub-axis of the multi-axis search: the modeled region
    /// of one axis (the intersection of the constrained models' claimed
    /// regions), keeping the axis name and scale.
    fn candidate_axis(
        axis: &ParameterDescriptor,
        constrained: &[(&MetricId, &Constraint, &MetricModel)],
    ) -> Result<ParameterDescriptor, CoreError> {
        // Intersect the constrained models' claimed regions on this axis.
        let mut lo = axis.min();
        let mut hi = axis.max();
        for (_, _, model) in constrained {
            let (m_lo, m_hi) = match &model.response {
                MetricResponse::Surface(surface) => {
                    let index = surface
                        .axes
                        .iter()
                        .position(|a| a == axis.name())
                        .expect("surfaces cover every axis of the space");
                    surface.domain[index]
                }
                MetricResponse::PerAxis(fits) => fits
                    .iter()
                    .find(|f| f.axis == axis.name())
                    .map(|f| f.model.domain())
                    .expect("per-axis responses cover every axis of the space"),
                MetricResponse::Axis(fit) => fit.model.domain(),
            };
            lo = lo.max(m_lo);
            hi = hi.min(m_hi);
        }
        if lo >= hi {
            return Err(CoreError::Infeasible {
                reason: format!(
                    "the constrained metrics' models were fitted on disjoint ranges of axis \
                     \"{}\"",
                    axis.name()
                ),
            });
        }
        ParameterDescriptor::new(axis.name(), lo, hi, axis.scale()).map_err(CoreError::from)
    }

    /// Deterministic grid search over the modeled region of a multi-axis
    /// space: keep every candidate satisfying all constraints, recommend the
    /// one maximizing the smallest constraint slack (ties broken by
    /// enumeration order).
    fn recommend_searched(
        fitted: &FittedSuite,
        resolution: usize,
        constrained: &[(&MetricId, &Constraint, &MetricModel)],
    ) -> Result<Recommendation, CoreError> {
        let space = &fitted.space;
        // Candidate points: ConfigSpace::grid over the intersected per-axis
        // regions — the same deterministic row-major enumeration contract as
        // the sweep itself.
        let sub_axes: Vec<ParameterDescriptor> = space
            .axes()
            .iter()
            .map(|axis| Self::candidate_axis(axis, constrained))
            .collect::<Result<_, _>>()?;
        let sub_space = ConfigSpace::new(sub_axes).map_err(CoreError::from)?;
        let candidates = sub_space.grid(&vec![resolution; space.len()])?;
        let total = candidates.len();

        let mut best: Option<(f64, ConfigPoint)> = None;
        let mut feasible: Vec<Option<(f64, f64)>> = vec![None; space.len()];
        let mut satisfying = 0usize;
        for point in candidates {
            let mut slack = f64::INFINITY;
            for (_, constraint, model) in constrained {
                let predicted = model.predict(&point)?;
                let margin = match constraint.kind() {
                    ConstraintKind::AtMost => constraint.bound() - predicted,
                    ConstraintKind::AtLeast => predicted - constraint.bound(),
                };
                slack = slack.min(margin);
            }
            // The same numerical tolerance Constraint::is_satisfied_by uses.
            if slack >= -1e-9 {
                satisfying += 1;
                for (i, &coord) in point.coords().iter().enumerate() {
                    feasible[i] = Some(match feasible[i] {
                        None => (coord, coord),
                        Some((lo, hi)) => (lo.min(coord), hi.max(coord)),
                    });
                }
                if best.as_ref().map_or(true, |(best_slack, _)| slack > *best_slack) {
                    best = Some((slack, point));
                }
            }
        }

        let Some((_, point)) = best else {
            let constraints: Vec<String> = constrained
                .iter()
                .map(|(id, constraint, _)| format!("{id} {constraint}"))
                .collect();
            return Err(CoreError::Infeasible {
                reason: format!(
                    "none of the {total} searched configurations of ({}) satisfies every \
                     constraint: {}",
                    space.names().join(", "),
                    constraints.join("; ")
                ),
            });
        };
        debug_assert!(satisfying > 0);

        Ok(Recommendation {
            feasible: space
                .names()
                .iter()
                .zip(feasible)
                .map(|(name, range)| {
                    (name.to_string(), range.expect("a satisfying point bounds every axis"))
                })
                .collect(),
            predictions: fitted
                .models
                .iter()
                .map(|m| Ok((m.id.clone(), m.predict(&point)?)))
                .collect::<Result<_, CoreError>>()?,
            point,
        })
    }

    /// Recommends a configuration point *per user* from per-user fitted
    /// models — the paper's headline scenario: one sweep of the
    /// configuration space, then every user gets her own operating point.
    ///
    /// Each user with a complete fitted suite is inverted independently
    /// (analytic on one axis, the deterministic grid search otherwise) by
    /// the exact engine behind [`Configurator::recommend`]; the per-user
    /// inversions run on the shared work-stealing pool.
    ///
    /// **Fallback policy**: a user whose own models are infeasible under the
    /// objectives, or who could not be modeled at all, is assigned the
    /// *dataset-level* recommended point — the nearest satisfying
    /// configuration the framework can justify for her (it satisfies the
    /// constraints in expectation over the population). Her [`UserVerdict`]
    /// says explicitly why the fallback was applied; fallback users are
    /// never silently mixed with feasible ones. The normative statement of
    /// the policy lives on [`UserVerdict`].
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfiguration`] when the per-user models were
    ///   fitted on a different configuration space, or the objective set is
    ///   empty.
    /// * [`CoreError::Infeasible`] when even the *dataset-level* models admit
    ///   no satisfying configuration — then there is no fallback point to
    ///   anchor infeasible users on, and no per-user table is produced.
    /// * [`CoreError::UnknownMetric`] when a constraint references a metric
    ///   that was not fitted.
    pub fn recommend_per_user(
        &self,
        per_user: &PerUserFits,
        objectives: &Objectives,
    ) -> Result<PerUserRecommendation, CoreError> {
        if per_user.space != self.fitted.space {
            return Err(CoreError::InvalidConfiguration {
                reason: format!(
                    "per-user models cover ({}) but the dataset suite covers ({})",
                    per_user.space.names().join(", "),
                    self.fitted.space.names().join(", ")
                ),
            });
        }
        let dataset = self.recommend(objectives)?;
        let users: Vec<UserRecommendation> = run_indexed(per_user.users.len(), true, |i| {
            let fit = &per_user.users[i];
            self.recommend_user(fit.user, &fit.outcome, &dataset, objectives)
        })?
        .into_iter()
        .collect::<Result<_, CoreError>>()?;
        Ok(PerUserRecommendation { dataset, users })
    }

    /// One user's recommendation: her own inversion when possible, the
    /// dataset-level fallback point (with an explicit verdict) otherwise.
    fn recommend_user(
        &self,
        user: UserId,
        outcome: &UserFitOutcome,
        dataset: &Recommendation,
        objectives: &Objectives,
    ) -> Result<UserRecommendation, CoreError> {
        let suite = match outcome {
            UserFitOutcome::Unfit { reason } => {
                return Ok(UserRecommendation {
                    user,
                    verdict: UserVerdict::Unmodeled { reason: reason.clone() },
                    point: dataset.point.clone(),
                    predictions: Vec::new(),
                });
            }
            UserFitOutcome::Fitted(suite) => suite,
        };
        match Self::recommend_on(suite, self.resolution, objectives) {
            Ok(recommendation) => Ok(UserRecommendation {
                user,
                verdict: UserVerdict::Feasible,
                point: recommendation.point,
                predictions: recommendation.predictions,
            }),
            // This user's own models admit no satisfying configuration (or
            // cannot be inverted): apply the documented fallback.
            Err(CoreError::Infeasible { reason }) => {
                self.fallback_for(user, suite, dataset, reason)
            }
            Err(CoreError::Analysis(error)) => {
                self.fallback_for(user, suite, dataset, error.to_string())
            }
            Err(other) => Err(other),
        }
    }

    /// Builds the fallback recommendation of one infeasible user: the
    /// dataset-level point, with the metrics predicted at that point under
    /// the *user's own* models — the report shows what she can actually
    /// expect there, not the population average.
    fn fallback_for(
        &self,
        user: UserId,
        suite: &FittedSuite,
        dataset: &Recommendation,
        reason: String,
    ) -> Result<UserRecommendation, CoreError> {
        let predictions = suite
            .models
            .iter()
            .map(|m| Ok((m.id.clone(), m.predict(&dataset.point)?)))
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(UserRecommendation {
            user,
            verdict: UserVerdict::Infeasible { reason },
            point: dataset.point.clone(),
            predictions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{MetricColumn, SweepMode, SweepResult};
    use crate::modeling::Modeler;
    use crate::objectives::{at_least, at_most, Objectives};
    use geopriv_lppm::ConfigSpace;
    use geopriv_metrics::Direction;

    fn privacy_id() -> MetricId {
        MetricId::new("poi-retrieval")
    }

    fn utility_id() -> MetricId {
        MetricId::new("area-coverage")
    }

    fn epsilon_axis() -> ParameterDescriptor {
        ParameterDescriptor::new("epsilon", 1e-4, 1.0, ParameterScale::Logarithmic).unwrap()
    }

    fn paper_like_suite() -> FittedSuite {
        let points = 41;
        let parameters: Vec<f64> = (0..points)
            .map(|i| 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / (points - 1) as f64))
            .collect();
        let privacy: Vec<f64> =
            parameters.iter().map(|e| (0.84 + 0.17 * e.ln()).clamp(0.0, 0.45)).collect();
        let utility: Vec<f64> =
            parameters.iter().map(|e| (1.21 + 0.09 * e.ln()).clamp(0.2, 1.0)).collect();
        let sweep = SweepResult::from_axis(
            "geo-indistinguishability",
            epsilon_axis(),
            &parameters,
            vec![
                MetricColumn {
                    id: privacy_id(),
                    direction: Direction::LowerIsBetter,
                    runs: vec![],
                    means: privacy,
                },
                MetricColumn {
                    id: utility_id(),
                    direction: Direction::HigherIsBetter,
                    runs: vec![],
                    means: utility,
                },
            ],
        )
        .unwrap();
        Modeler::new().fit(&sweep).unwrap()
    }

    fn configurator() -> Configurator {
        Configurator::new(paper_like_suite())
    }

    /// A 2-D grid suite: privacy rises with ε and falls with the cell size,
    /// utility the other way around — every constraint is satisfiable
    /// somewhere but not everywhere.
    fn grid_suite() -> FittedSuite {
        let space = ConfigSpace::new(vec![
            epsilon_axis(),
            ParameterDescriptor::new("cell_size", 50.0, 5000.0, ParameterScale::Logarithmic)
                .unwrap(),
        ])
        .unwrap();
        let points = space.grid(&[9, 9]).unwrap();
        let privacy: Vec<f64> = points
            .iter()
            .map(|p| {
                0.75 + 0.06 * p.get("epsilon").unwrap().ln()
                    - 0.05 * p.get("cell_size").unwrap().ln()
            })
            .collect();
        let utility: Vec<f64> = points
            .iter()
            .map(|p| {
                0.55 + 0.04 * p.get("epsilon").unwrap().ln()
                    + 0.03 * p.get("cell_size").unwrap().ln()
            })
            .collect();
        let sweep = SweepResult::new(
            "pipeline[geo-indistinguishability, grid-cloaking]",
            space,
            SweepMode::Grid,
            points,
            vec![
                MetricColumn {
                    id: privacy_id(),
                    direction: Direction::LowerIsBetter,
                    runs: vec![],
                    means: privacy,
                },
                MetricColumn {
                    id: utility_id(),
                    direction: Direction::HigherIsBetter,
                    runs: vec![],
                    means: utility,
                },
            ],
        )
        .unwrap();
        Modeler::new().fit(&sweep).unwrap()
    }

    #[test]
    fn paper_objectives_yield_an_epsilon_near_0_01() {
        let recommendation = configurator().recommend(&Objectives::paper_example()).unwrap();
        assert_eq!(recommendation.parameter_name(), "epsilon");
        // The paper picks 0.01; any epsilon satisfying both objectives lies
        // between ~0.009 (utility >= 0.8) and ~0.013 (privacy <= 0.1).
        assert!(
            (0.005..0.02).contains(&recommendation.parameter()),
            "recommended {}",
            recommendation.parameter()
        );
        assert!(recommendation.feasible_range().0 <= recommendation.parameter());
        assert!(recommendation.feasible_range().1 >= recommendation.parameter());
        assert!(recommendation.predicted(&privacy_id()).unwrap() <= 0.10 + 0.02);
        assert!(recommendation.predicted(&utility_id()).unwrap() >= 0.80 - 0.02);
        assert!(recommendation.predicted(&"unknown".into()).is_none());
        assert!(recommendation.to_string().contains("epsilon"));
        assert!(recommendation.to_string().contains("poi-retrieval"));
    }

    #[test]
    fn looser_objectives_widen_the_feasible_range() {
        let configurator = configurator();
        let strict = configurator.recommend(&Objectives::paper_example()).unwrap();
        let loose = configurator
            .recommend(
                &Objectives::new()
                    .require("poi-retrieval", at_most(0.3))
                    .unwrap()
                    .require("area-coverage", at_least(0.5))
                    .unwrap(),
            )
            .unwrap();
        let strict_width = strict.feasible_range().1 / strict.feasible_range().0;
        let loose_width = loose.feasible_range().1 / loose.feasible_range().0;
        assert!(loose_width > strict_width);
    }

    #[test]
    fn impossible_objectives_are_reported_as_infeasible() {
        // Perfect privacy *and* perfect utility cannot both hold.
        let result = configurator().recommend(
            &Objectives::new()
                .require("poi-retrieval", at_most(0.01))
                .unwrap()
                .require("area-coverage", at_least(0.99))
                .unwrap(),
        );
        match result {
            Err(CoreError::Infeasible { reason }) => {
                assert!(reason.contains("poi-retrieval"), "reason: {reason}");
                assert!(reason.contains("area-coverage"), "reason: {reason}");
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unknown_metrics_and_empty_objectives_are_rejected() {
        let configurator = configurator();
        assert!(matches!(
            configurator.recommend(&Objectives::new()),
            Err(CoreError::InvalidConfiguration { .. })
        ));
        let result = configurator
            .recommend(&Objectives::new().require("poi-retrival", at_most(0.1)).unwrap());
        match result {
            Err(CoreError::UnknownMetric { metric, available }) => {
                assert_eq!(metric, "poi-retrival");
                assert!(available.contains(&"poi-retrieval".to_string()));
            }
            other => panic!("expected unknown metric, got {other:?}"),
        }
    }

    #[test]
    fn constraint_bands_on_one_metric_intersect() {
        // A band on the utility metric alone: at least 0.5 but at most 0.9.
        let recommendation = configurator()
            .recommend(
                &Objectives::new()
                    .require("area-coverage", at_least(0.5))
                    .unwrap()
                    .require("area-coverage", at_most(0.9))
                    .unwrap(),
            )
            .unwrap();
        let predicted = recommendation.predicted(&utility_id()).unwrap();
        assert!((0.5 - 1e-6..=0.9 + 1e-6).contains(&predicted), "predicted {predicted}");
    }

    #[test]
    fn recommendation_respects_the_model_domain() {
        let configurator = configurator();
        // Very loose objectives: the feasible range collapses to the fitted
        // domain, and the recommendation stays inside it.
        let recommendation = configurator
            .recommend(
                &Objectives::new()
                    .require("poi-retrieval", at_most(1.0))
                    .unwrap()
                    .require("area-coverage", at_least(0.0))
                    .unwrap(),
            )
            .unwrap();
        let models = &configurator.fitted().models;
        let privacy_domain = models[0].axis().unwrap().model.domain();
        let utility_domain = models[1].axis().unwrap().model.domain();
        let lo = privacy_domain.0.max(utility_domain.0);
        let hi = privacy_domain.1.min(utility_domain.1);
        assert!(recommendation.parameter() >= lo && recommendation.parameter() <= hi);
        assert_eq!(recommendation.feasible_range(), (lo, hi));
    }

    #[test]
    fn multi_axis_search_recommends_a_satisfying_point() {
        let configurator = Configurator::new(grid_suite());
        let objectives = Objectives::new()
            .require("poi-retrieval", at_most(0.15))
            .unwrap()
            .require("area-coverage", at_least(0.55))
            .unwrap();
        let recommendation = configurator.recommend(&objectives).unwrap();

        // The recommendation is a full configuration point…
        assert_eq!(recommendation.point.len(), 2);
        assert!(recommendation.point.get("epsilon").is_some());
        assert!(recommendation.point.get("cell_size").is_some());
        // …whose predictions satisfy every constraint.
        assert!(at_most(0.15).is_satisfied_by(recommendation.predicted(&privacy_id()).unwrap()));
        assert!(at_least(0.55).is_satisfied_by(recommendation.predicted(&utility_id()).unwrap()));
        // The per-axis feasible summaries bracket the recommendation.
        for ((name, value), (feasible_name, (lo, hi))) in
            recommendation.point.values().iter().zip(&recommendation.feasible)
        {
            assert_eq!(name, feasible_name);
            assert!(lo <= value && value <= hi);
        }
        // Display covers both axes.
        let text = recommendation.to_string();
        assert!(text.contains("epsilon") && text.contains("cell_size"));
        // The legacy scalar accessors refuse multi-axis recommendations.
        assert!(std::panic::catch_unwind(|| recommendation.parameter()).is_err());

        // Deterministic: same inputs, same recommendation.
        assert_eq!(configurator.recommend(&objectives).unwrap(), recommendation);
    }

    #[test]
    fn multi_axis_search_reports_infeasible_objectives() {
        let configurator = Configurator::new(grid_suite());
        let impossible = Objectives::new()
            .require("poi-retrieval", at_most(0.001))
            .unwrap()
            .require("area-coverage", at_least(0.999))
            .unwrap();
        match configurator.recommend(&impossible) {
            Err(CoreError::Infeasible { reason }) => {
                assert!(reason.contains("poi-retrieval"), "reason: {reason}");
                assert!(reason.contains("area-coverage"), "reason: {reason}");
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn per_user_recommendation_separates_feasible_and_fallback_users() {
        use geopriv_mobility::UserId;

        let sweep = crate::modeling::fixtures::per_user_sweep();
        let fitted = Modeler::new().fit(&sweep).unwrap();
        let per_user = Modeler::new().fit_per_user(&sweep).unwrap();
        let configurator = Configurator::new(fitted);
        // Privacy ≤ 0.15 and utility ≥ 0.80: feasible for the population and
        // for user 1, infeasible for user 2 (her privacy intercept is worse).
        let objectives = Objectives::new()
            .require("poi-retrieval", at_most(0.15))
            .unwrap()
            .require("area-coverage", at_least(0.80))
            .unwrap();
        let recommendation = configurator.recommend_per_user(&per_user, &objectives).unwrap();

        // The dataset anchor is exactly the plain recommendation.
        assert_eq!(recommendation.dataset, configurator.recommend(&objectives).unwrap());
        assert_eq!(recommendation.users.len(), 4);
        assert_eq!(recommendation.feasible_count(), 1);
        assert_eq!(recommendation.fallback_count(), 3);

        // User 1 gets her own point, satisfying every constraint under her
        // own models.
        let own = recommendation.get(UserId::new(1)).unwrap();
        assert!(own.verdict.is_feasible());
        assert!(!own.used_fallback());
        assert_eq!(own.verdict.label(), "feasible");
        assert!(at_most(0.15).is_satisfied_by(own.predicted(&privacy_id()).unwrap()));
        assert!(at_least(0.80).is_satisfied_by(own.predicted(&utility_id()).unwrap()));

        // User 2's own models are infeasible: she lands on the dataset point
        // with an explicit verdict, and her predictions there come from HER
        // models (the report shows what she can actually expect).
        let fallback = recommendation.get(UserId::new(2)).unwrap();
        assert!(matches!(&fallback.verdict, UserVerdict::Infeasible { .. }));
        assert!(fallback.used_fallback());
        assert_eq!(fallback.point, recommendation.dataset.point);
        let expected = per_user
            .fitted(UserId::new(2))
            .unwrap()
            .model(&privacy_id())
            .unwrap()
            .predict(&recommendation.dataset.point)
            .unwrap();
        assert_eq!(fallback.predicted(&privacy_id()), Some(expected));
        assert!(fallback.verdict.to_string().contains("infeasible"));

        // Users 3 and 4 could not be modeled: fallback point, no predictions.
        for user in [3u64, 4] {
            let unmodeled = recommendation.get(UserId::new(user)).unwrap();
            assert!(matches!(&unmodeled.verdict, UserVerdict::Unmodeled { .. }));
            assert_eq!(unmodeled.verdict.label(), "unmodeled");
            assert_eq!(unmodeled.point, recommendation.dataset.point);
            assert!(unmodeled.predictions.is_empty());
        }
        assert!(recommendation.get(UserId::new(9)).is_none());

        // Deterministic regardless of the thread pool.
        assert_eq!(
            configurator.recommend_per_user(&per_user, &objectives).unwrap(),
            recommendation
        );
    }

    #[test]
    fn per_user_recommendation_needs_a_feasible_dataset_anchor() {
        let sweep = crate::modeling::fixtures::per_user_sweep();
        let configurator = Configurator::new(Modeler::new().fit(&sweep).unwrap());
        let per_user = Modeler::new().fit_per_user(&sweep).unwrap();
        // Impossible for the population: no fallback anchor exists.
        let impossible = Objectives::new()
            .require("poi-retrieval", at_most(0.01))
            .unwrap()
            .require("area-coverage", at_least(0.99))
            .unwrap();
        assert!(matches!(
            configurator.recommend_per_user(&per_user, &impossible),
            Err(CoreError::Infeasible { .. })
        ));

        // A space mismatch between the per-user models and the suite is a
        // typed configuration error.
        let foreign = Configurator::new(grid_suite());
        assert!(matches!(
            foreign.recommend_per_user(&per_user, &Objectives::paper_example()),
            Err(CoreError::InvalidConfiguration { .. })
        ));
    }

    #[test]
    fn search_resolution_is_configurable_and_clamped() {
        let coarse = Configurator::new(grid_suite()).with_search_resolution(0);
        let objectives = Objectives::new().require("poi-retrieval", at_most(0.5)).unwrap();
        // Even the coarsest search (2 per axis) still recommends.
        let recommendation = coarse.recommend(&objectives).unwrap();
        assert!(at_most(0.5).is_satisfied_by(recommendation.predicted(&privacy_id()).unwrap()));
    }

    #[test]
    fn constraint_boundaries_bracket_the_critical_parameters() {
        let configurator = configurator();
        let boundaries = configurator.constraint_boundaries(&Objectives::paper_example()).unwrap();
        // One degenerate interval per (axis, constraint) pair whose critical
        // value falls inside the modeled domain: privacy <= 0.10 crosses near
        // epsilon ~ 0.013, utility >= 0.80 near epsilon ~ 0.011.
        assert_eq!(boundaries.len(), 2);
        for (axis, (lo, hi)) in &boundaries {
            assert_eq!(axis, "epsilon");
            assert_eq!(lo, hi, "boundary intervals are degenerate (a single crossing)");
            assert!((0.005..0.02).contains(lo), "critical value {lo}");
        }

        // Constraints no model can cross inside its domain contribute
        // nothing rather than erroring out: the privacy response saturates
        // at 0.45, so an at-most-0.5 bound never crosses in the active zone.
        let unreachable = Objectives::new()
            .require(privacy_id(), at_most(0.5))
            .and_then(|o| o.require(utility_id(), at_least(0.8)))
            .unwrap();
        let boundaries = configurator.constraint_boundaries(&unreachable).unwrap();
        assert_eq!(boundaries.len(), 1);

        // Unknown metrics are still typed errors.
        let bogus = Objectives::new().require(MetricId::new("nope"), at_most(0.1)).unwrap();
        assert!(matches!(
            configurator.constraint_boundaries(&bogus),
            Err(CoreError::UnknownMetric { .. })
        ));
    }
}
