//! Configuration by model inversion (step 3 of the framework).
//!
//! "Finally, the LPPM configuration (i.e. the value of p_i) is computed by
//! inverting the f function, using the specified privacy and utility
//! objectives." [`Configurator`] turns a [`FittedSuite`] and a set of
//! per-metric [`Objectives`] into a concrete parameter recommendation — the
//! paper's "configuring ε = 0.01 ensures 80 % utility while guaranteeing
//! 10 % privacy" — by intersecting the feasible interval of every
//! constraint.

use crate::error::CoreError;
use crate::modeling::FittedSuite;
use crate::objectives::{Constraint, ConstraintKind, Objectives};
use geopriv_lppm::ParameterScale;
use geopriv_metrics::MetricId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome of inverting the fitted models for a set of objectives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Name of the configured parameter (e.g. `"epsilon"`).
    pub parameter_name: String,
    /// The interval of parameter values satisfying every constraint
    /// (intersected with the constrained models' domains).
    pub feasible_range: (f64, f64),
    /// The recommended parameter value (the midpoint of the feasible range,
    /// geometric midpoint for logarithmic parameters).
    pub parameter: f64,
    /// Metric values predicted by the fitted models at the recommended value,
    /// for every metric of the suite, in suite order.
    pub predictions: Vec<(MetricId, f64)>,
}

impl Recommendation {
    /// The predicted value of one metric at the recommended parameter.
    pub fn predicted(&self, id: &MetricId) -> Option<f64> {
        self.predictions.iter().find(|(m, _)| m == id).map(|(_, v)| *v)
    }
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {:.4} (feasible in [{:.4}, {:.4}])",
            self.parameter_name, self.parameter, self.feasible_range.0, self.feasible_range.1,
        )?;
        for (id, value) in &self.predictions {
            write!(f, ", predicted {id} {value:.3}")?;
        }
        Ok(())
    }
}

/// Inverts fitted metric models to recommend a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Configurator {
    fitted: FittedSuite,
    scale: ParameterScale,
}

impl Configurator {
    /// Creates a configurator from a fitted suite.
    ///
    /// `scale` must be the scale of the swept parameter (it decides whether
    /// midpoints are arithmetic or geometric).
    pub fn new(fitted: FittedSuite, scale: ParameterScale) -> Self {
        Self { fitted, scale }
    }

    /// The underlying fitted suite.
    pub fn fitted(&self) -> &FittedSuite {
        &self.fitted
    }

    /// Computes the parameter interval satisfying one constraint
    /// `metric(x) ≤/≥ bound` for a monotone model, clipped to `domain`.
    fn interval_for(
        model: &crate::modeling::ParametricModel,
        constraint: &Constraint,
        domain: (f64, f64),
    ) -> Result<(f64, f64), CoreError> {
        let critical = model.invert(constraint.bound())?;
        // An upper bound on an increasing metric caps the parameter from
        // above; the three other (kind, slope-sign) combinations follow by
        // symmetry.
        let caps_above = match constraint.kind() {
            ConstraintKind::AtMost => model.is_increasing(),
            ConstraintKind::AtLeast => !model.is_increasing(),
        };
        if caps_above {
            Ok((domain.0, critical.min(domain.1)))
        } else {
            Ok((critical.max(domain.0), domain.1))
        }
    }

    /// Recommends a parameter value satisfying every constraint.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfiguration`] for an empty objective set or an
    ///   invalid bound.
    /// * [`CoreError::UnknownMetric`] when a constraint references a metric
    ///   that was not fitted.
    /// * [`CoreError::Infeasible`] when no parameter value in the modeled
    ///   domain satisfies every constraint — the error message reports each
    ///   constraint's individual feasible interval.
    /// * [`CoreError::Analysis`] when a model cannot be inverted.
    pub fn recommend(&self, objectives: &Objectives) -> Result<Recommendation, CoreError> {
        if objectives.is_empty() {
            return Err(CoreError::InvalidConfiguration {
                reason: "recommendation needs at least one constraint".to_string(),
            });
        }
        let constrained: Vec<(&MetricId, &Constraint, &crate::modeling::MetricModel)> = objectives
            .constraints()
            .iter()
            .map(|(id, constraint)| {
                constraint.validate()?;
                let model = self.fitted.model(id).ok_or_else(|| CoreError::UnknownMetric {
                    metric: id.to_string(),
                    available: self.fitted.ids().iter().map(MetricId::to_string).collect(),
                })?;
                Ok((id, constraint, model))
            })
            .collect::<Result<_, CoreError>>()?;

        // Work inside the intersection of what the constrained models were
        // fitted on: in the paper's pair the privacy zone is typically
        // narrower (Figure 1a) than the utility zone (Figure 1b); the
        // recommendation must stay where every constrained model is
        // meaningful.
        let domain = constrained
            .iter()
            .map(|(_, _, m)| m.model.domain())
            .reduce(|a, b| (a.0.max(b.0), a.1.min(b.1)))
            .expect("objectives are non-empty");
        if domain.0 >= domain.1 {
            return Err(CoreError::Infeasible {
                reason: "the constrained metrics' models were fitted on disjoint parameter ranges"
                    .to_string(),
            });
        }

        let mut feasible = domain;
        let mut intervals = Vec::with_capacity(constrained.len());
        for (id, constraint, model) in &constrained {
            let interval = Self::interval_for(&model.model, constraint, domain)?;
            feasible = (feasible.0.max(interval.0), feasible.1.min(interval.1));
            intervals.push((*id, *constraint, interval));
        }
        if feasible.0 > feasible.1 {
            let conflict: Vec<String> = intervals
                .iter()
                .map(|(id, constraint, interval)| {
                    format!(
                        "{id} {constraint} requires {} in [{:.4}, {:.4}]",
                        self.fitted.parameter_name, interval.0, interval.1
                    )
                })
                .collect();
            return Err(CoreError::Infeasible {
                reason: format!("no value satisfies every constraint: {}", conflict.join("; ")),
            });
        }

        let parameter = match self.scale {
            ParameterScale::Linear => (feasible.0 + feasible.1) / 2.0,
            ParameterScale::Logarithmic => (feasible.0 * feasible.1).sqrt(),
        };

        Ok(Recommendation {
            parameter_name: self.fitted.parameter_name.clone(),
            feasible_range: feasible,
            parameter,
            predictions: self
                .fitted
                .models
                .iter()
                .map(|m| (m.id.clone(), m.model.predict(parameter)))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{MetricColumn, SweepResult};
    use crate::modeling::Modeler;
    use crate::objectives::{at_least, at_most, Objectives};
    use geopriv_metrics::Direction;

    fn privacy_id() -> MetricId {
        MetricId::new("poi-retrieval")
    }

    fn utility_id() -> MetricId {
        MetricId::new("area-coverage")
    }

    fn paper_like_suite() -> FittedSuite {
        let points = 41;
        let parameters: Vec<f64> = (0..points)
            .map(|i| 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / (points - 1) as f64))
            .collect();
        let privacy: Vec<f64> =
            parameters.iter().map(|e| (0.84 + 0.17 * e.ln()).clamp(0.0, 0.45)).collect();
        let utility: Vec<f64> =
            parameters.iter().map(|e| (1.21 + 0.09 * e.ln()).clamp(0.2, 1.0)).collect();
        let sweep = SweepResult {
            lppm_name: "geo-indistinguishability".to_string(),
            parameter_name: "epsilon".to_string(),
            parameter_scale: geopriv_lppm::ParameterScale::Logarithmic,
            parameters,
            columns: vec![
                MetricColumn {
                    id: privacy_id(),
                    direction: Direction::LowerIsBetter,
                    runs: vec![],
                    means: privacy,
                },
                MetricColumn {
                    id: utility_id(),
                    direction: Direction::HigherIsBetter,
                    runs: vec![],
                    means: utility,
                },
            ],
        };
        Modeler::new().fit(&sweep).unwrap()
    }

    fn configurator() -> Configurator {
        Configurator::new(paper_like_suite(), geopriv_lppm::ParameterScale::Logarithmic)
    }

    #[test]
    fn paper_objectives_yield_an_epsilon_near_0_01() {
        let recommendation = configurator().recommend(&Objectives::paper_example()).unwrap();
        assert_eq!(recommendation.parameter_name, "epsilon");
        // The paper picks 0.01; any epsilon satisfying both objectives lies
        // between ~0.009 (utility >= 0.8) and ~0.013 (privacy <= 0.1).
        assert!(
            (0.005..0.02).contains(&recommendation.parameter),
            "recommended {}",
            recommendation.parameter
        );
        assert!(recommendation.feasible_range.0 <= recommendation.parameter);
        assert!(recommendation.feasible_range.1 >= recommendation.parameter);
        assert!(recommendation.predicted(&privacy_id()).unwrap() <= 0.10 + 0.02);
        assert!(recommendation.predicted(&utility_id()).unwrap() >= 0.80 - 0.02);
        assert!(recommendation.predicted(&"unknown".into()).is_none());
        assert!(recommendation.to_string().contains("epsilon"));
        assert!(recommendation.to_string().contains("poi-retrieval"));
    }

    #[test]
    fn looser_objectives_widen_the_feasible_range() {
        let configurator = configurator();
        let strict = configurator.recommend(&Objectives::paper_example()).unwrap();
        let loose = configurator
            .recommend(
                &Objectives::new()
                    .require("poi-retrieval", at_most(0.3))
                    .unwrap()
                    .require("area-coverage", at_least(0.5))
                    .unwrap(),
            )
            .unwrap();
        let strict_width = strict.feasible_range.1 / strict.feasible_range.0;
        let loose_width = loose.feasible_range.1 / loose.feasible_range.0;
        assert!(loose_width > strict_width);
    }

    #[test]
    fn impossible_objectives_are_reported_as_infeasible() {
        // Perfect privacy *and* perfect utility cannot both hold.
        let result = configurator().recommend(
            &Objectives::new()
                .require("poi-retrieval", at_most(0.01))
                .unwrap()
                .require("area-coverage", at_least(0.99))
                .unwrap(),
        );
        match result {
            Err(CoreError::Infeasible { reason }) => {
                assert!(reason.contains("poi-retrieval"), "reason: {reason}");
                assert!(reason.contains("area-coverage"), "reason: {reason}");
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unknown_metrics_and_empty_objectives_are_rejected() {
        let configurator = configurator();
        assert!(matches!(
            configurator.recommend(&Objectives::new()),
            Err(CoreError::InvalidConfiguration { .. })
        ));
        let result = configurator
            .recommend(&Objectives::new().require("poi-retrival", at_most(0.1)).unwrap());
        match result {
            Err(CoreError::UnknownMetric { metric, available }) => {
                assert_eq!(metric, "poi-retrival");
                assert!(available.contains(&"poi-retrieval".to_string()));
            }
            other => panic!("expected unknown metric, got {other:?}"),
        }
    }

    #[test]
    fn constraint_bands_on_one_metric_intersect() {
        // A band on the utility metric alone: at least 0.5 but at most 0.9.
        let recommendation = configurator()
            .recommend(
                &Objectives::new()
                    .require("area-coverage", at_least(0.5))
                    .unwrap()
                    .require("area-coverage", at_most(0.9))
                    .unwrap(),
            )
            .unwrap();
        let predicted = recommendation.predicted(&utility_id()).unwrap();
        assert!((0.5 - 1e-6..=0.9 + 1e-6).contains(&predicted), "predicted {predicted}");
    }

    #[test]
    fn recommendation_respects_the_model_domain() {
        let configurator = configurator();
        // Very loose objectives: the feasible range collapses to the fitted
        // domain, and the recommendation stays inside it.
        let recommendation = configurator
            .recommend(
                &Objectives::new()
                    .require("poi-retrieval", at_most(1.0))
                    .unwrap()
                    .require("area-coverage", at_least(0.0))
                    .unwrap(),
            )
            .unwrap();
        let privacy_domain = configurator.fitted().model(&privacy_id()).unwrap().model.domain();
        let utility_domain = configurator.fitted().model(&utility_id()).unwrap().model.domain();
        let lo = privacy_domain.0.max(utility_domain.0);
        let hi = privacy_domain.1.min(utility_domain.1);
        assert!(recommendation.parameter >= lo && recommendation.parameter <= hi);
        assert_eq!(recommendation.feasible_range, (lo, hi));
    }
}
