//! Configuration by model inversion (step 3 of the framework).
//!
//! "Finally, the LPPM configuration (i.e. the value of p_i) is computed by
//! inverting the f function, using the specified privacy and utility
//! objectives." [`Configurator`] turns a [`FittedRelationship`] and a pair of
//! [`Objectives`] into a concrete parameter recommendation — the paper's
//! "configuring ε = 0.01 ensures 80 % utility while guaranteeing 10 %
//! privacy".

use crate::error::CoreError;
use crate::modeling::FittedRelationship;
use crate::objectives::Objectives;
use geopriv_lppm::ParameterScale;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome of inverting the fitted models for a pair of objectives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Name of the configured parameter (e.g. `"epsilon"`).
    pub parameter_name: String,
    /// The interval of parameter values satisfying both objectives
    /// (intersected with the modeled domain).
    pub feasible_range: (f64, f64),
    /// The recommended parameter value (the midpoint of the feasible range,
    /// geometric midpoint for logarithmic parameters).
    pub parameter: f64,
    /// Privacy predicted by the model at the recommended value.
    pub predicted_privacy: f64,
    /// Utility predicted by the model at the recommended value.
    pub predicted_utility: f64,
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {:.4} (feasible in [{:.4}, {:.4}]), predicted privacy {:.3}, predicted utility {:.3}",
            self.parameter_name,
            self.parameter,
            self.feasible_range.0,
            self.feasible_range.1,
            self.predicted_privacy,
            self.predicted_utility
        )
    }
}

/// Inverts fitted metric models to recommend a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Configurator {
    relationship: FittedRelationship,
    scale: ParameterScale,
}

impl Configurator {
    /// Creates a configurator from a fitted relationship.
    ///
    /// `scale` must be the scale of the swept parameter (it decides whether
    /// midpoints are arithmetic or geometric).
    pub fn new(relationship: FittedRelationship, scale: ParameterScale) -> Self {
        Self { relationship, scale }
    }

    /// The underlying fitted relationship.
    pub fn relationship(&self) -> &FittedRelationship {
        &self.relationship
    }

    /// Computes the parameter interval satisfying one *upper-bound* constraint
    /// `metric(x) <= bound` for a monotone model, clipped to `domain`.
    fn interval_for_upper_bound(
        model: &crate::modeling::ParametricModel,
        bound: f64,
        domain: (f64, f64),
    ) -> Result<(f64, f64), CoreError> {
        let critical = model.invert(bound)?;
        if model.is_increasing() {
            // Metric grows with x: the constraint caps x from above.
            Ok((domain.0, critical.min(domain.1)))
        } else {
            Ok((critical.max(domain.0), domain.1))
        }
    }

    /// Computes the parameter interval satisfying one *lower-bound* constraint
    /// `metric(x) >= bound`, clipped to `domain`.
    fn interval_for_lower_bound(
        model: &crate::modeling::ParametricModel,
        bound: f64,
        domain: (f64, f64),
    ) -> Result<(f64, f64), CoreError> {
        let critical = model.invert(bound)?;
        if model.is_increasing() {
            Ok((critical.max(domain.0), domain.1))
        } else {
            Ok((domain.0, critical.min(domain.1)))
        }
    }

    /// Recommends a parameter value satisfying both objectives.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Infeasible`] when no parameter value in the modeled
    ///   domain satisfies both objectives — the error message reports which
    ///   direction the conflict goes.
    /// * [`CoreError::Analysis`] when a model cannot be inverted.
    pub fn recommend(&self, objectives: Objectives) -> Result<Recommendation, CoreError> {
        let privacy_model = &self.relationship.privacy.model;
        let utility_model = &self.relationship.utility.model;

        // Work inside the union of what both models were fitted on: the
        // privacy zone is typically narrower (Figure 1a) than the utility
        // zone (Figure 1b); the recommendation must stay where both models
        // are meaningful, i.e. in the intersection of their domains.
        let privacy_domain = privacy_model.domain();
        let utility_domain = utility_model.domain();
        let domain =
            (privacy_domain.0.max(utility_domain.0), privacy_domain.1.min(utility_domain.1));
        if domain.0 >= domain.1 {
            return Err(CoreError::Infeasible {
                reason: "the privacy and utility models were fitted on disjoint parameter ranges"
                    .to_string(),
            });
        }

        let privacy_interval =
            Self::interval_for_upper_bound(privacy_model, objectives.privacy.bound(), domain)?;
        let utility_interval =
            Self::interval_for_lower_bound(utility_model, objectives.utility.bound(), domain)?;

        let feasible = (
            privacy_interval.0.max(utility_interval.0),
            privacy_interval.1.min(utility_interval.1),
        );
        if feasible.0 > feasible.1 {
            return Err(CoreError::Infeasible {
                reason: format!(
                    "privacy objective ({}) requires {} in [{:.4}, {:.4}] but utility objective ({}) requires [{:.4}, {:.4}]",
                    objectives.privacy,
                    self.relationship.parameter_name,
                    privacy_interval.0,
                    privacy_interval.1,
                    objectives.utility,
                    utility_interval.0,
                    utility_interval.1,
                ),
            });
        }

        let parameter = match self.scale {
            ParameterScale::Linear => (feasible.0 + feasible.1) / 2.0,
            ParameterScale::Logarithmic => (feasible.0 * feasible.1).sqrt(),
        };

        Ok(Recommendation {
            parameter_name: self.relationship.parameter_name.clone(),
            feasible_range: feasible,
            parameter,
            predicted_privacy: privacy_model.predict(parameter),
            predicted_utility: utility_model.predict(parameter),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{SweepResult, SweepSample};
    use crate::modeling::Modeler;
    use crate::objectives::{Objectives, PrivacyObjective, UtilityObjective};

    fn paper_like_relationship() -> FittedRelationship {
        let points = 41;
        let samples: Vec<SweepSample> = (0..points)
            .map(|i| {
                let epsilon = 1e-4 * (1.0f64 / 1e-4).powf(i as f64 / (points - 1) as f64);
                let privacy = (0.84 + 0.17 * epsilon.ln()).clamp(0.0, 0.45);
                let utility = (1.21 + 0.09 * epsilon.ln()).clamp(0.2, 1.0);
                SweepSample {
                    parameter: epsilon,
                    privacy,
                    utility,
                    privacy_runs: vec![],
                    utility_runs: vec![],
                }
            })
            .collect();
        let sweep = SweepResult {
            lppm_name: "geo-indistinguishability".to_string(),
            parameter_name: "epsilon".to_string(),
            parameter_scale: geopriv_lppm::ParameterScale::Logarithmic,
            privacy_metric_name: "poi-retrieval".to_string(),
            utility_metric_name: "area-coverage".to_string(),
            samples,
        };
        Modeler::new().fit(&sweep).unwrap()
    }

    #[test]
    fn paper_objectives_yield_an_epsilon_near_0_01() {
        let configurator =
            Configurator::new(paper_like_relationship(), geopriv_lppm::ParameterScale::Logarithmic);
        let recommendation = configurator.recommend(Objectives::paper_example()).unwrap();
        assert_eq!(recommendation.parameter_name, "epsilon");
        // The paper picks 0.01; any epsilon satisfying both objectives lies
        // between ~0.009 (utility >= 0.8) and ~0.013 (privacy <= 0.1).
        assert!(
            (0.005..0.02).contains(&recommendation.parameter),
            "recommended {}",
            recommendation.parameter
        );
        assert!(recommendation.feasible_range.0 <= recommendation.parameter);
        assert!(recommendation.feasible_range.1 >= recommendation.parameter);
        assert!(recommendation.predicted_privacy <= 0.10 + 0.02);
        assert!(recommendation.predicted_utility >= 0.80 - 0.02);
        assert!(recommendation.to_string().contains("epsilon"));
    }

    #[test]
    fn looser_objectives_widen_the_feasible_range() {
        let configurator =
            Configurator::new(paper_like_relationship(), geopriv_lppm::ParameterScale::Logarithmic);
        let strict = configurator.recommend(Objectives::paper_example()).unwrap();
        let loose = configurator
            .recommend(Objectives::new(
                PrivacyObjective::at_most(0.3).unwrap(),
                UtilityObjective::at_least(0.5).unwrap(),
            ))
            .unwrap();
        let strict_width = strict.feasible_range.1 / strict.feasible_range.0;
        let loose_width = loose.feasible_range.1 / loose.feasible_range.0;
        assert!(loose_width > strict_width);
    }

    #[test]
    fn impossible_objectives_are_reported_as_infeasible() {
        let configurator =
            Configurator::new(paper_like_relationship(), geopriv_lppm::ParameterScale::Logarithmic);
        // Perfect privacy *and* perfect utility cannot both hold.
        let result = configurator.recommend(Objectives::new(
            PrivacyObjective::at_most(0.01).unwrap(),
            UtilityObjective::at_least(0.99).unwrap(),
        ));
        match result {
            Err(CoreError::Infeasible { reason }) => {
                assert!(reason.contains("privacy"), "reason: {reason}");
                assert!(reason.contains("utility"), "reason: {reason}");
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn recommendation_respects_the_model_domain() {
        let configurator =
            Configurator::new(paper_like_relationship(), geopriv_lppm::ParameterScale::Logarithmic);
        // Very loose objectives: the feasible range collapses to the fitted
        // domain, and the recommendation stays inside it.
        let recommendation = configurator
            .recommend(Objectives::new(
                PrivacyObjective::at_most(1.0).unwrap(),
                UtilityObjective::at_least(0.0).unwrap(),
            ))
            .unwrap();
        let privacy_domain = configurator.relationship().privacy.model.domain();
        let utility_domain = configurator.relationship().utility.model.domain();
        let lo = privacy_domain.0.max(utility_domain.0);
        let hi = privacy_domain.1.min(utility_domain.1);
        assert!(recommendation.parameter >= lo && recommendation.parameter <= hi);
        assert_eq!(recommendation.feasible_range, (lo, hi));
    }
}
