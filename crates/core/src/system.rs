//! System definition (step 1 of the framework).
//!
//! "First, the system needs to be defined: (1) the objective metrics for
//! privacy (Pr) and utility (Ut), (2) the LPPM configuration parameters p_i
//! and their range of values, and (3) the properties of the dataset d_i that
//! are likely to influence privacy and utility metrics."
//!
//! [`SystemDefinition`] bundles those ingredients: a [`MetricSuite`] — an
//! ordered set of named, direction-tagged metrics generalizing the paper's
//! fixed privacy/utility pair — and an [`LppmFactory`] describing the
//! mechanism and its [`ConfigSpace`] of swept parameters (note the paper's
//! plural: "the LPPM configuration parameters p_i"). Dataset properties are
//! handled separately by [`crate::property_selection`] since the paper's
//! GEO-I illustration uses none ("no dataset properties is considered").

use crate::error::CoreError;
use geopriv_geo::Meters;
use geopriv_lppm::{
    qualify_stage_parameters, ConfigPoint, ConfigSpace, Epsilon, GaussianPerturbation,
    GeoIndistinguishability, GridCloaking, Lppm, ParameterDescriptor, ParameterScale, Pipeline,
};
use geopriv_metrics::{AreaCoverage, MetricSuite, PoiRetrieval, PrivacyMetric, UtilityMetric};

/// A factory able to instantiate an LPPM at any point of its configuration
/// space.
///
/// The framework sweeps the whole [`ConfigSpace`] — one axis for the paper's
/// GEO-I ε, several for multi-parameter mechanisms or composed pipelines
/// (grid or one-at-a-time, see [`crate::experiment::SweepPlan`]).
///
/// Single-parameter factories keep the historical scalar API for free:
/// [`LppmFactory::parameter`] and the scalar [`LppmFactory::instantiate`]
/// are provided shims over the one-axis space.
pub trait LppmFactory: Send + Sync {
    /// Name of the mechanism family (e.g. `"geo-indistinguishability"`).
    fn name(&self) -> &str;

    /// The full configuration space: every swept parameter with its range,
    /// scale and default.
    fn space(&self) -> ConfigSpace;

    /// Instantiates the mechanism at a concrete configuration point.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for points that do not
    /// belong to the factory's space.
    fn instantiate_at(&self, point: &ConfigPoint) -> Result<Box<dyn Lppm>, CoreError>;

    /// The swept parameter of a single-axis factory (legacy 1-D accessor).
    ///
    /// # Panics
    ///
    /// Panics when the factory exposes more than one axis — use
    /// [`LppmFactory::space`] there.
    fn parameter(&self) -> ParameterDescriptor {
        let space = self.space();
        space
            .single_axis()
            .unwrap_or_else(|| {
                panic!(
                    "factory \"{}\" sweeps {} axes; use space() instead of parameter()",
                    self.name(),
                    space.len()
                )
            })
            .clone()
    }

    /// Instantiates a single-axis factory's mechanism for a scalar parameter
    /// value (legacy 1-D shim over [`LppmFactory::instantiate_at`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for values outside the
    /// parameter's valid range, or when the factory exposes more than one
    /// axis.
    fn instantiate(&self, value: f64) -> Result<Box<dyn Lppm>, CoreError> {
        let space = self.space();
        if space.single_axis().is_none() {
            return Err(CoreError::InvalidConfiguration {
                reason: format!(
                    "factory \"{}\" sweeps {} axes; instantiate it at a ConfigPoint",
                    self.name(),
                    space.len()
                ),
            });
        }
        let point = space.point_from_coords(&[value]).map_err(CoreError::from)?;
        self.instantiate_at(&point)
    }
}

/// Factory for [`GeoIndistinguishability`] swept over ε.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoIndistinguishabilityFactory {
    descriptor: ParameterDescriptor,
}

impl Default for GeoIndistinguishabilityFactory {
    fn default() -> Self {
        Self { descriptor: GeoIndistinguishability::epsilon_descriptor() }
    }
}

impl GeoIndistinguishabilityFactory {
    /// Creates the factory with the paper's ε range (10⁻⁴ to 1 m⁻¹).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the factory with a custom ε range.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for an invalid range.
    pub fn with_range(min_epsilon: f64, max_epsilon: f64) -> Result<Self, CoreError> {
        let descriptor = ParameterDescriptor::new(
            "epsilon",
            min_epsilon,
            max_epsilon,
            ParameterScale::Logarithmic,
        )
        .map_err(|e| CoreError::InvalidConfiguration { reason: e.to_string() })?;
        Ok(Self { descriptor })
    }
}

impl LppmFactory for GeoIndistinguishabilityFactory {
    fn name(&self) -> &str {
        "geo-indistinguishability"
    }

    fn space(&self) -> ConfigSpace {
        ConfigSpace::single(self.descriptor.clone())
    }

    fn instantiate_at(&self, point: &ConfigPoint) -> Result<Box<dyn Lppm>, CoreError> {
        self.space().check(point).map_err(CoreError::from)?;
        let epsilon = Epsilon::new(point.coords()[0]).map_err(CoreError::from)?;
        Ok(Box::new(GeoIndistinguishability::new(epsilon)))
    }
}

/// Factory for [`GridCloaking`] swept over the cell size (meters).
#[derive(Debug, Clone, PartialEq)]
pub struct GridCloakingFactory {
    descriptor: ParameterDescriptor,
}

impl Default for GridCloakingFactory {
    fn default() -> Self {
        Self { descriptor: GridCloaking::cell_size_descriptor() }
    }
}

impl GridCloakingFactory {
    /// Creates the factory with the default cell-size range (50 m – 5 km).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the factory with a custom cell-size range (meters).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for an invalid range.
    pub fn with_range(min_cell_m: f64, max_cell_m: f64) -> Result<Self, CoreError> {
        let descriptor = ParameterDescriptor::new(
            "cell_size",
            min_cell_m,
            max_cell_m,
            ParameterScale::Logarithmic,
        )
        .map_err(|e| CoreError::InvalidConfiguration { reason: e.to_string() })?;
        Ok(Self { descriptor })
    }
}

impl LppmFactory for GridCloakingFactory {
    fn name(&self) -> &str {
        "grid-cloaking"
    }

    fn space(&self) -> ConfigSpace {
        ConfigSpace::single(self.descriptor.clone())
    }

    fn instantiate_at(&self, point: &ConfigPoint) -> Result<Box<dyn Lppm>, CoreError> {
        self.space().check(point).map_err(CoreError::from)?;
        Ok(Box::new(GridCloaking::new(Meters::new(point.coords()[0])).map_err(CoreError::from)?))
    }
}

/// Factory for [`GaussianPerturbation`] swept over σ (meters).
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianPerturbationFactory {
    descriptor: ParameterDescriptor,
}

impl Default for GaussianPerturbationFactory {
    fn default() -> Self {
        Self { descriptor: GaussianPerturbation::sigma_descriptor() }
    }
}

impl GaussianPerturbationFactory {
    /// Creates the factory with the default σ range (1 m – 10 km).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the factory with a custom σ range (meters).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for an invalid range.
    pub fn with_range(min_sigma_m: f64, max_sigma_m: f64) -> Result<Self, CoreError> {
        let descriptor = ParameterDescriptor::new(
            "sigma",
            min_sigma_m,
            max_sigma_m,
            ParameterScale::Logarithmic,
        )
        .map_err(|e| CoreError::InvalidConfiguration { reason: e.to_string() })?;
        Ok(Self { descriptor })
    }
}

impl LppmFactory for GaussianPerturbationFactory {
    fn name(&self) -> &str {
        "gaussian-perturbation"
    }

    fn space(&self) -> ConfigSpace {
        ConfigSpace::single(self.descriptor.clone())
    }

    fn instantiate_at(&self, point: &ConfigPoint) -> Result<Box<dyn Lppm>, CoreError> {
        self.space().check(point).map_err(CoreError::from)?;
        Ok(Box::new(
            GaussianPerturbation::new(Meters::new(point.coords()[0])).map_err(CoreError::from)?,
        ))
    }
}

/// Factory for a composed [`Pipeline`]: stage factories applied in order,
/// with one configuration axis per stage parameter — the first-class entry
/// point to multi-axis studies (e.g. GEO-I ε × cloaking cell size).
///
/// The combined space concatenates the stage spaces with the same
/// qualification contract as [`Pipeline::parameters`]: a name exposed by
/// more than one stage is prefixed with its 1-based stage position
/// (`"1.epsilon"`, `"3.epsilon"`), so every axis maps back to exactly one
/// stage parameter.
///
/// # Examples
///
/// ```
/// use geopriv_core::{GeoIndistinguishabilityFactory, GridCloakingFactory, LppmFactory,
///     PipelineFactory};
///
/// # fn main() -> Result<(), geopriv_core::CoreError> {
/// let factory = PipelineFactory::new()
///     .then(GeoIndistinguishabilityFactory::new())
///     .then(GridCloakingFactory::new());
/// let space = factory.space();
/// assert_eq!(space.names(), vec!["epsilon", "cell_size"]);
/// let lppm = factory.instantiate_at(&space.point(&[("epsilon", 0.01), ("cell_size", 500.0)])?)?;
/// assert_eq!(lppm.name(), "pipeline[geo-indistinguishability, grid-cloaking]");
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct PipelineFactory {
    stages: Vec<Box<dyn LppmFactory>>,
    name: String,
    /// Per-stage axis lists after cross-stage qualification, rebuilt once
    /// per composition step so the sweep hot path (one `instantiate_at` per
    /// design point) never re-derives them.
    qualified: Vec<Vec<ParameterDescriptor>>,
}

impl PipelineFactory {
    /// Creates an empty pipeline factory; add stages with
    /// [`PipelineFactory::then`].
    pub fn new() -> Self {
        Self { stages: Vec::new(), name: "pipeline[]".to_string(), qualified: Vec::new() }
    }

    /// Appends a stage factory.
    #[must_use]
    pub fn then<F: LppmFactory + 'static>(self, factory: F) -> Self {
        self.then_boxed(Box::new(factory))
    }

    /// Appends an already-boxed stage factory.
    #[must_use]
    pub fn then_boxed(mut self, factory: Box<dyn LppmFactory>) -> Self {
        self.stages.push(factory);
        let names: Vec<&str> = self.stages.iter().map(|s| s.name()).collect();
        self.name = format!("pipeline[{}]", names.join(", "));
        let per_stage: Vec<Vec<ParameterDescriptor>> =
            self.stages.iter().map(|s| s.space().axes().to_vec()).collect();
        self.qualified = qualify_stage_parameters(&per_stage);
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` if the factory has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl LppmFactory for PipelineFactory {
    fn name(&self) -> &str {
        &self.name
    }

    /// # Panics
    ///
    /// Panics when the factory has no stages (an empty pipeline has no
    /// configuration space); compose at least one stage first.
    fn space(&self) -> ConfigSpace {
        ConfigSpace::new(self.qualified.iter().flatten().cloned().collect())
            .expect("stage factories expose at least one uniquely qualified axis")
    }

    fn instantiate_at(&self, point: &ConfigPoint) -> Result<Box<dyn Lppm>, CoreError> {
        if self.stages.is_empty() {
            return Err(CoreError::InvalidConfiguration {
                reason: "a pipeline factory needs at least one stage".to_string(),
            });
        }
        self.space().check(point).map_err(CoreError::from)?;
        // The point's coordinates are in space order, which is per-stage
        // concatenation order: hand each stage its own slice, translated back
        // to the stage's unqualified axis names.
        let coords = point.coords();
        let mut pipeline = Pipeline::new();
        let mut offset = 0;
        for (stage, qualified) in self.stages.iter().zip(&self.qualified) {
            let stage_space = stage.space();
            let stage_point =
                stage_space.point_from_coords(&coords[offset..offset + qualified.len()])?;
            offset += qualified.len();
            pipeline = pipeline.then_boxed(stage.instantiate_at(&stage_point)?);
        }
        Ok(Box::new(pipeline))
    }
}

impl std::fmt::Debug for PipelineFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineFactory")
            .field("stages", &self.name)
            .field("len", &self.stages.len())
            .finish()
    }
}

/// The system under study: the LPPM (with its configuration space) and the
/// suite of evaluation metrics.
pub struct SystemDefinition {
    factory: Box<dyn LppmFactory>,
    suite: MetricSuite,
}

impl SystemDefinition {
    /// Defines a system from a mechanism factory and a metric suite.
    pub fn new(factory: Box<dyn LppmFactory>, suite: MetricSuite) -> Self {
        Self { factory, suite }
    }

    /// Defines a system from the paper's shape — one privacy metric and one
    /// utility metric, in that order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] when both metrics share a
    /// name (give them distinct ids via [`MetricSuite::new`] instead).
    pub fn with_pair(
        factory: Box<dyn LppmFactory>,
        privacy_metric: Box<dyn PrivacyMetric>,
        utility_metric: Box<dyn UtilityMetric>,
    ) -> Result<Self, CoreError> {
        let suite = MetricSuite::pair(privacy_metric, utility_metric)
            .map_err(|e| CoreError::InvalidConfiguration { reason: e.to_string() })?;
        Ok(Self::new(factory, suite))
    }

    /// The paper's illustrated system: GEO-I swept over ε, POI retrieval as
    /// the privacy metric, city-block area coverage as the utility metric.
    pub fn paper_geoi() -> Self {
        Self::with_pair(
            Box::new(GeoIndistinguishabilityFactory::new()),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .expect("the paper metrics have distinct names")
    }

    /// The mechanism factory.
    pub fn factory(&self) -> &dyn LppmFactory {
        self.factory.as_ref()
    }

    /// The metric suite.
    pub fn suite(&self) -> &MetricSuite {
        &self.suite
    }

    /// The full configuration space (shortcut for `factory().space()`).
    pub fn space(&self) -> ConfigSpace {
        self.factory.space()
    }

    /// The swept parameter descriptor of a single-axis system (shortcut for
    /// `factory().parameter()`).
    ///
    /// # Panics
    ///
    /// Panics when the system sweeps more than one axis — use
    /// [`SystemDefinition::space`] there.
    pub fn parameter(&self) -> ParameterDescriptor {
        self.factory.parameter()
    }

    /// A stable key identifying this system's full configuration: mechanism
    /// family, the configuration space (every axis's range/scale) and every
    /// metric configuration, in suite order.
    ///
    /// The campaign engine uses it to label runs and to recognize systems
    /// whose metrics can share prepared actual-side state.
    pub fn cache_key(&self) -> String {
        let metric_keys: Vec<String> = self.suite.iter().map(|m| m.cache_key()).collect();
        format!(
            "{}[{}]|{}",
            self.factory.name(),
            self.factory.space().cache_token(),
            metric_keys.join("|")
        )
    }
}

impl std::fmt::Debug for SystemDefinition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemDefinition")
            .field("lppm", &self.factory.name())
            .field("parameters", &self.factory.space().names())
            .field("metrics", &self.suite)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_metrics::{Direction, HotspotPreservation, MetricId, SuiteMetric};
    use geopriv_mobility::generator::TaxiFleetBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn geoi_factory_instantiates_across_its_range() {
        let factory = GeoIndistinguishabilityFactory::new();
        assert_eq!(factory.name(), "geo-indistinguishability");
        let descriptor = factory.parameter();
        assert_eq!(descriptor.name(), "epsilon");
        assert_eq!(descriptor.scale(), ParameterScale::Logarithmic);
        for value in descriptor.sweep(7) {
            let lppm = factory.instantiate(value).unwrap();
            assert_eq!(lppm.name(), "geo-indistinguishability");
        }
        assert!(factory.instantiate(0.0).is_err());
        assert!(factory.instantiate(-1.0).is_err());
    }

    #[test]
    fn geoi_factory_custom_range() {
        let factory = GeoIndistinguishabilityFactory::with_range(0.001, 0.1).unwrap();
        let d = factory.parameter();
        assert_eq!(d.min(), 0.001);
        assert_eq!(d.max(), 0.1);
        assert!(GeoIndistinguishabilityFactory::with_range(0.1, 0.001).is_err());
        assert!(GeoIndistinguishabilityFactory::with_range(0.0, 0.1).is_err());
    }

    #[test]
    fn other_factories_instantiate() {
        let cloaking = GridCloakingFactory::new();
        assert!(cloaking.instantiate(500.0).is_ok());
        assert!(cloaking.instantiate(0.0).is_err());
        assert_eq!(cloaking.parameter().name(), "cell_size");

        let gaussian = GaussianPerturbationFactory::new();
        assert!(gaussian.instantiate(100.0).is_ok());
        assert!(gaussian.instantiate(-1.0).is_err());
        assert_eq!(gaussian.parameter().name(), "sigma");
    }

    #[test]
    fn every_factory_gains_a_custom_range_constructor() {
        // The API-consistency satellite: with_range exists on all three
        // single-axis factories, with identical validation behavior.
        let cloaking = GridCloakingFactory::with_range(100.0, 1000.0).unwrap();
        assert_eq!((cloaking.parameter().min(), cloaking.parameter().max()), (100.0, 1000.0));
        assert_eq!(cloaking.parameter().scale(), ParameterScale::Logarithmic);
        // The scalar shim now enforces the configured range uniformly.
        assert!(cloaking.instantiate(500.0).is_ok());
        assert!(cloaking.instantiate(50.0).is_err());
        assert!(GridCloakingFactory::with_range(1000.0, 100.0).is_err());
        assert!(GridCloakingFactory::with_range(0.0, 100.0).is_err());

        let gaussian = GaussianPerturbationFactory::with_range(10.0, 200.0).unwrap();
        assert_eq!((gaussian.parameter().min(), gaussian.parameter().max()), (10.0, 200.0));
        assert!(gaussian.instantiate(100.0).is_ok());
        assert!(gaussian.instantiate(1000.0).is_err());
        assert!(GaussianPerturbationFactory::with_range(200.0, 10.0).is_err());
    }

    #[test]
    fn pipeline_factory_composes_spaces_and_mechanisms() {
        let factory = PipelineFactory::new()
            .then(GeoIndistinguishabilityFactory::new())
            .then(GridCloakingFactory::with_range(100.0, 2000.0).unwrap());
        assert_eq!(factory.len(), 2);
        assert!(!factory.is_empty());
        assert_eq!(factory.name(), "pipeline[geo-indistinguishability, grid-cloaking]");
        assert!(format!("{factory:?}").contains("PipelineFactory"));

        let space = factory.space();
        assert_eq!(space.names(), vec!["epsilon", "cell_size"]);
        assert_eq!(space.axis("cell_size").unwrap().max(), 2000.0);

        let point = space.point(&[("epsilon", 0.01), ("cell_size", 500.0)]).unwrap();
        let lppm = factory.instantiate_at(&point).unwrap();
        assert_eq!(lppm.name(), "pipeline[geo-indistinguishability, grid-cloaking]");

        // Out-of-space points and foreign points are rejected.
        let foreign = ConfigSpace::single(GeoIndistinguishability::epsilon_descriptor())
            .point(&[("epsilon", 0.01)])
            .unwrap();
        assert!(factory.instantiate_at(&foreign).is_err());
        // Multi-axis factories reject the scalar shim with a typed error.
        assert!(matches!(factory.instantiate(0.01), Err(CoreError::InvalidConfiguration { .. })));
        assert!(PipelineFactory::new().instantiate_at(&foreign).is_err());
    }

    #[test]
    fn pipeline_factory_qualifies_colliding_stage_axes() {
        let factory = PipelineFactory::new()
            .then(GeoIndistinguishabilityFactory::new())
            .then(GeoIndistinguishabilityFactory::with_range(1e-3, 0.1).unwrap());
        let space = factory.space();
        assert_eq!(space.names(), vec!["1.epsilon", "2.epsilon"]);
        // Each qualified axis keeps its own stage's range.
        assert_eq!(space.axis("2.epsilon").unwrap().min(), 1e-3);

        // Instantiation routes each qualified value to its stage.
        let point = space.point(&[("1.epsilon", 0.5), ("2.epsilon", 0.002)]).unwrap();
        let lppm = factory.instantiate_at(&point).unwrap();
        assert_eq!(lppm.parameters().len(), 2);
        // A value valid for stage 1 but not stage 2 fails validation.
        assert!(space.point(&[("1.epsilon", 0.5), ("2.epsilon", 0.5)]).is_err());
    }

    #[test]
    fn pipeline_factory_protects_data_end_to_end() {
        let mut rng = StdRng::seed_from_u64(5);
        let dataset =
            TaxiFleetBuilder::new().drivers(1).duration_hours(1.0).build(&mut rng).unwrap();
        let factory = PipelineFactory::new()
            .then(GeoIndistinguishabilityFactory::new())
            .then(GridCloakingFactory::new());
        let space = factory.space();
        let lppm = factory.instantiate_at(&space.default_point()).unwrap();
        let protected = lppm.protect_dataset(&dataset, &mut rng).unwrap();
        assert_eq!(protected.record_count(), dataset.record_count());
    }

    #[test]
    fn paper_system_definition_wires_the_right_components() {
        let system = SystemDefinition::paper_geoi();
        assert_eq!(system.factory().name(), "geo-indistinguishability");
        assert_eq!(system.parameter().name(), "epsilon");
        assert_eq!(system.space().names(), vec!["epsilon"]);
        assert_eq!(
            system.suite().ids(),
            vec![MetricId::new("poi-retrieval"), MetricId::new("area-coverage")]
        );
        assert_eq!(system.suite().metrics()[0].direction(), Direction::LowerIsBetter);
        assert_eq!(system.suite().metrics()[1].direction(), Direction::HigherIsBetter);
        let debug = format!("{system:?}");
        assert!(debug.contains("poi-retrieval"));
    }

    #[test]
    fn systems_carry_suites_of_any_size() {
        let system = SystemDefinition::new(
            Box::new(GeoIndistinguishabilityFactory::new()),
            MetricSuite::new(vec![
                SuiteMetric::privacy(PoiRetrieval::default()),
                SuiteMetric::utility(geopriv_metrics::DistortionUtility::default()),
                SuiteMetric::utility(AreaCoverage::default()),
                SuiteMetric::utility(HotspotPreservation::default()),
            ])
            .unwrap(),
        );
        assert_eq!(system.suite().len(), 4);
        // The cache key covers every metric.
        assert!(system.cache_key().contains("hotspot-preservation"));
        assert!(system.cache_key().contains("distortion-utility"));
    }

    #[test]
    fn with_pair_rejects_colliding_metric_names() {
        /// A utility metric that (wrongly) reuses the privacy metric's name.
        struct Impostor;
        impl UtilityMetric for Impostor {
            fn name(&self) -> &str {
                "poi-retrieval"
            }
            fn evaluate(
                &self,
                actual: &geopriv_mobility::Dataset,
                _: &geopriv_mobility::Dataset,
            ) -> Result<geopriv_metrics::MetricValue, geopriv_metrics::MetricError> {
                geopriv_metrics::MetricValue::from_per_user(
                    actual.iter().map(|t| (t.user(), 0.0)).collect(),
                )
            }
        }
        let result = SystemDefinition::with_pair(
            Box::new(GeoIndistinguishabilityFactory::new()),
            Box::new(PoiRetrieval::default()),
            Box::new(Impostor),
        );
        assert!(matches!(result, Err(CoreError::InvalidConfiguration { .. })));
    }

    #[test]
    fn cache_key_distinguishes_systems_and_is_stable() {
        let paper = SystemDefinition::paper_geoi();
        assert_eq!(paper.cache_key(), SystemDefinition::paper_geoi().cache_key());
        assert!(paper.cache_key().contains("geo-indistinguishability"));

        let cloaking = SystemDefinition::with_pair(
            Box::new(GridCloakingFactory::new()),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .unwrap();
        assert_ne!(paper.cache_key(), cloaking.cache_key());

        // Same mechanism over a different range is a different system.
        let narrow = SystemDefinition::with_pair(
            Box::new(GeoIndistinguishabilityFactory::with_range(1e-3, 0.1).unwrap()),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .unwrap();
        assert_ne!(paper.cache_key(), narrow.cache_key());

        // A composed system's key covers every axis of its space.
        let composed = SystemDefinition::with_pair(
            Box::new(
                PipelineFactory::new()
                    .then(GeoIndistinguishabilityFactory::new())
                    .then(GridCloakingFactory::new()),
            ),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .unwrap();
        assert!(composed.cache_key().contains("epsilon"));
        assert!(composed.cache_key().contains("cell_size"));
        assert_ne!(composed.cache_key(), paper.cache_key());
    }

    #[test]
    fn instantiate_at_rejects_out_of_space_wire_points_without_panicking() {
        // The serving layer instantiates mechanisms at points deserialized
        // from JSON (`ConfigPoint::from_named` builds them unvalidated), so
        // every factory must turn a hostile point into a typed error, never
        // a panic — that is what the server's fallback path dispatches on.
        let factories: Vec<Box<dyn LppmFactory>> = vec![
            Box::new(GeoIndistinguishabilityFactory::new()),
            Box::new(GridCloakingFactory::new()),
            Box::new(GaussianPerturbationFactory::new()),
            Box::new(
                PipelineFactory::new()
                    .then(GeoIndistinguishabilityFactory::new())
                    .then(GridCloakingFactory::new()),
            ),
        ];
        for factory in &factories {
            let space = factory.space();
            // A well-formed wire point round-trips into a mechanism.
            let good = ConfigPoint::from_named(
                space.axes().iter().map(|a| (a.name().to_string(), a.default_value())).collect(),
            );
            assert!(factory.instantiate_at(&good).is_ok(), "{}", factory.name());

            // Out-of-range coordinate on the first axis.
            let mut named: Vec<(String, f64)> =
                space.axes().iter().map(|a| (a.name().to_string(), a.default_value())).collect();
            named[0].1 = space.axes()[0].max() * 10.0;
            let out_of_range = ConfigPoint::from_named(named.clone());
            assert!(
                matches!(
                    factory.instantiate_at(&out_of_range),
                    Err(CoreError::Lppm(_) | CoreError::InvalidConfiguration { .. })
                ),
                "{} accepted an out-of-range point",
                factory.name()
            );

            // Non-finite coordinate (a tampered or truncated document).
            named[0].1 = f64::NAN;
            assert!(factory.instantiate_at(&ConfigPoint::from_named(named)).is_err());

            // Wrong axis name.
            let misnamed = ConfigPoint::from_named(
                space
                    .axes()
                    .iter()
                    .map(|a| (format!("not-{}", a.name()), a.default_value()))
                    .collect(),
            );
            assert!(factory.instantiate_at(&misnamed).is_err());

            // Wrong dimensionality: an extra axis appended.
            let mut extra: Vec<(String, f64)> =
                space.axes().iter().map(|a| (a.name().to_string(), a.default_value())).collect();
            extra.push(("stowaway".to_string(), 1.0));
            assert!(factory.instantiate_at(&ConfigPoint::from_named(extra)).is_err());

            // The empty point.
            assert!(factory.instantiate_at(&ConfigPoint::from_named(Vec::new())).is_err());
        }
    }

    #[test]
    fn instantiated_mechanism_protects_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let dataset =
            TaxiFleetBuilder::new().drivers(1).duration_hours(1.0).build(&mut rng).unwrap();
        let system = SystemDefinition::paper_geoi();
        let lppm = system.factory().instantiate(0.01).unwrap();
        let protected = lppm.protect_dataset(&dataset, &mut rng).unwrap();
        assert_eq!(protected.record_count(), dataset.record_count());
    }
}
