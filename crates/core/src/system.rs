//! System definition (step 1 of the framework).
//!
//! "First, the system needs to be defined: (1) the objective metrics for
//! privacy (Pr) and utility (Ut), (2) the LPPM configuration parameters p_i
//! and their range of values, and (3) the properties of the dataset d_i that
//! are likely to influence privacy and utility metrics."
//!
//! [`SystemDefinition`] bundles those ingredients: a [`MetricSuite`] — an
//! ordered set of named, direction-tagged metrics generalizing the paper's
//! fixed privacy/utility pair — and an [`LppmFactory`] describing the
//! mechanism and its swept parameter. Dataset properties are handled
//! separately by [`crate::property_selection`] since the paper's GEO-I
//! illustration uses none ("no dataset properties is considered").

use crate::error::CoreError;
use geopriv_geo::Meters;
use geopriv_lppm::{
    Epsilon, GaussianPerturbation, GeoIndistinguishability, GridCloaking, Lppm,
    ParameterDescriptor, ParameterScale,
};
use geopriv_metrics::{AreaCoverage, MetricSuite, PoiRetrieval, PrivacyMetric, UtilityMetric};

/// A factory able to instantiate an LPPM for any value of its swept
/// configuration parameter.
///
/// The framework sweeps a single scalar parameter per study, exactly like the
/// paper's treatment of GEO-I's ε; multi-parameter mechanisms are studied one
/// parameter at a time (the others held at fixed values inside the factory).
pub trait LppmFactory: Send + Sync {
    /// Name of the mechanism family (e.g. `"geo-indistinguishability"`).
    fn name(&self) -> &str;

    /// The swept parameter: name, range and scale.
    fn parameter(&self) -> ParameterDescriptor;

    /// Instantiates the mechanism for a concrete parameter value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for values outside the
    /// parameter's valid range.
    fn instantiate(&self, value: f64) -> Result<Box<dyn Lppm>, CoreError>;
}

/// Factory for [`GeoIndistinguishability`] swept over ε.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoIndistinguishabilityFactory {
    descriptor: ParameterDescriptor,
}

impl Default for GeoIndistinguishabilityFactory {
    fn default() -> Self {
        Self { descriptor: GeoIndistinguishability::epsilon_descriptor() }
    }
}

impl GeoIndistinguishabilityFactory {
    /// Creates the factory with the paper's ε range (10⁻⁴ to 1 m⁻¹).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the factory with a custom ε range.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] for an invalid range.
    pub fn with_range(min_epsilon: f64, max_epsilon: f64) -> Result<Self, CoreError> {
        let descriptor = ParameterDescriptor::new(
            "epsilon",
            min_epsilon,
            max_epsilon,
            ParameterScale::Logarithmic,
        )
        .map_err(|e| CoreError::InvalidConfiguration { reason: e.to_string() })?;
        Ok(Self { descriptor })
    }
}

impl LppmFactory for GeoIndistinguishabilityFactory {
    fn name(&self) -> &str {
        "geo-indistinguishability"
    }

    fn parameter(&self) -> ParameterDescriptor {
        self.descriptor.clone()
    }

    fn instantiate(&self, value: f64) -> Result<Box<dyn Lppm>, CoreError> {
        let epsilon = Epsilon::new(value).map_err(CoreError::from)?;
        Ok(Box::new(GeoIndistinguishability::new(epsilon)))
    }
}

/// Factory for [`GridCloaking`] swept over the cell size (meters).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GridCloakingFactory;

impl GridCloakingFactory {
    /// Creates the factory with the default cell-size range (50 m – 5 km).
    pub fn new() -> Self {
        Self
    }
}

impl LppmFactory for GridCloakingFactory {
    fn name(&self) -> &str {
        "grid-cloaking"
    }

    fn parameter(&self) -> ParameterDescriptor {
        GridCloaking::cell_size_descriptor()
    }

    fn instantiate(&self, value: f64) -> Result<Box<dyn Lppm>, CoreError> {
        Ok(Box::new(GridCloaking::new(Meters::new(value)).map_err(CoreError::from)?))
    }
}

/// Factory for [`GaussianPerturbation`] swept over σ (meters).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GaussianPerturbationFactory;

impl GaussianPerturbationFactory {
    /// Creates the factory with the default σ range (1 m – 10 km).
    pub fn new() -> Self {
        Self
    }
}

impl LppmFactory for GaussianPerturbationFactory {
    fn name(&self) -> &str {
        "gaussian-perturbation"
    }

    fn parameter(&self) -> ParameterDescriptor {
        GaussianPerturbation::sigma_descriptor()
    }

    fn instantiate(&self, value: f64) -> Result<Box<dyn Lppm>, CoreError> {
        Ok(Box::new(GaussianPerturbation::new(Meters::new(value)).map_err(CoreError::from)?))
    }
}

/// The system under study: the LPPM (with its swept parameter) and the suite
/// of evaluation metrics.
pub struct SystemDefinition {
    factory: Box<dyn LppmFactory>,
    suite: MetricSuite,
}

impl SystemDefinition {
    /// Defines a system from a mechanism factory and a metric suite.
    pub fn new(factory: Box<dyn LppmFactory>, suite: MetricSuite) -> Self {
        Self { factory, suite }
    }

    /// Defines a system from the paper's shape — one privacy metric and one
    /// utility metric, in that order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfiguration`] when both metrics share a
    /// name (give them distinct ids via [`MetricSuite::new`] instead).
    pub fn with_pair(
        factory: Box<dyn LppmFactory>,
        privacy_metric: Box<dyn PrivacyMetric>,
        utility_metric: Box<dyn UtilityMetric>,
    ) -> Result<Self, CoreError> {
        let suite = MetricSuite::pair(privacy_metric, utility_metric)
            .map_err(|e| CoreError::InvalidConfiguration { reason: e.to_string() })?;
        Ok(Self::new(factory, suite))
    }

    /// The paper's illustrated system: GEO-I swept over ε, POI retrieval as
    /// the privacy metric, city-block area coverage as the utility metric.
    pub fn paper_geoi() -> Self {
        Self::with_pair(
            Box::new(GeoIndistinguishabilityFactory::new()),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .expect("the paper metrics have distinct names")
    }

    /// The mechanism factory.
    pub fn factory(&self) -> &dyn LppmFactory {
        self.factory.as_ref()
    }

    /// The metric suite.
    pub fn suite(&self) -> &MetricSuite {
        &self.suite
    }

    /// The swept parameter descriptor (shortcut for `factory().parameter()`).
    pub fn parameter(&self) -> ParameterDescriptor {
        self.factory.parameter()
    }

    /// A stable key identifying this system's full configuration: mechanism
    /// family, swept-parameter range/scale and every metric configuration, in
    /// suite order.
    ///
    /// The campaign engine uses it to label runs and to recognize systems
    /// whose metrics can share prepared actual-side state.
    pub fn cache_key(&self) -> String {
        let metric_keys: Vec<String> = self.suite.iter().map(|m| m.cache_key()).collect();
        format!(
            "{}[{}]|{}",
            self.factory.name(),
            self.factory.parameter().cache_token(),
            metric_keys.join("|")
        )
    }
}

impl std::fmt::Debug for SystemDefinition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemDefinition")
            .field("lppm", &self.factory.name())
            .field("parameter", &self.factory.parameter().name())
            .field("metrics", &self.suite)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_metrics::{Direction, HotspotPreservation, MetricId, SuiteMetric};
    use geopriv_mobility::generator::TaxiFleetBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn geoi_factory_instantiates_across_its_range() {
        let factory = GeoIndistinguishabilityFactory::new();
        assert_eq!(factory.name(), "geo-indistinguishability");
        let descriptor = factory.parameter();
        assert_eq!(descriptor.name(), "epsilon");
        assert_eq!(descriptor.scale(), ParameterScale::Logarithmic);
        for value in descriptor.sweep(7) {
            let lppm = factory.instantiate(value).unwrap();
            assert_eq!(lppm.name(), "geo-indistinguishability");
        }
        assert!(factory.instantiate(0.0).is_err());
        assert!(factory.instantiate(-1.0).is_err());
    }

    #[test]
    fn geoi_factory_custom_range() {
        let factory = GeoIndistinguishabilityFactory::with_range(0.001, 0.1).unwrap();
        let d = factory.parameter();
        assert_eq!(d.min(), 0.001);
        assert_eq!(d.max(), 0.1);
        assert!(GeoIndistinguishabilityFactory::with_range(0.1, 0.001).is_err());
        assert!(GeoIndistinguishabilityFactory::with_range(0.0, 0.1).is_err());
    }

    #[test]
    fn other_factories_instantiate() {
        let cloaking = GridCloakingFactory::new();
        assert!(cloaking.instantiate(500.0).is_ok());
        assert!(cloaking.instantiate(0.0).is_err());
        assert_eq!(cloaking.parameter().name(), "cell_size");

        let gaussian = GaussianPerturbationFactory::new();
        assert!(gaussian.instantiate(100.0).is_ok());
        assert!(gaussian.instantiate(-1.0).is_err());
        assert_eq!(gaussian.parameter().name(), "sigma");
    }

    #[test]
    fn paper_system_definition_wires_the_right_components() {
        let system = SystemDefinition::paper_geoi();
        assert_eq!(system.factory().name(), "geo-indistinguishability");
        assert_eq!(system.parameter().name(), "epsilon");
        assert_eq!(
            system.suite().ids(),
            vec![MetricId::new("poi-retrieval"), MetricId::new("area-coverage")]
        );
        assert_eq!(system.suite().metrics()[0].direction(), Direction::LowerIsBetter);
        assert_eq!(system.suite().metrics()[1].direction(), Direction::HigherIsBetter);
        let debug = format!("{system:?}");
        assert!(debug.contains("poi-retrieval"));
    }

    #[test]
    fn systems_carry_suites_of_any_size() {
        let system = SystemDefinition::new(
            Box::new(GeoIndistinguishabilityFactory::new()),
            MetricSuite::new(vec![
                SuiteMetric::privacy(PoiRetrieval::default()),
                SuiteMetric::utility(geopriv_metrics::DistortionUtility::default()),
                SuiteMetric::utility(AreaCoverage::default()),
                SuiteMetric::utility(HotspotPreservation::default()),
            ])
            .unwrap(),
        );
        assert_eq!(system.suite().len(), 4);
        // The cache key covers every metric.
        assert!(system.cache_key().contains("hotspot-preservation"));
        assert!(system.cache_key().contains("distortion-utility"));
    }

    #[test]
    fn with_pair_rejects_colliding_metric_names() {
        /// A utility metric that (wrongly) reuses the privacy metric's name.
        struct Impostor;
        impl UtilityMetric for Impostor {
            fn name(&self) -> &str {
                "poi-retrieval"
            }
            fn evaluate(
                &self,
                actual: &geopriv_mobility::Dataset,
                _: &geopriv_mobility::Dataset,
            ) -> Result<geopriv_metrics::MetricValue, geopriv_metrics::MetricError> {
                geopriv_metrics::MetricValue::from_per_user(vec![0.0; actual.len()])
            }
        }
        let result = SystemDefinition::with_pair(
            Box::new(GeoIndistinguishabilityFactory::new()),
            Box::new(PoiRetrieval::default()),
            Box::new(Impostor),
        );
        assert!(matches!(result, Err(CoreError::InvalidConfiguration { .. })));
    }

    #[test]
    fn cache_key_distinguishes_systems_and_is_stable() {
        let paper = SystemDefinition::paper_geoi();
        assert_eq!(paper.cache_key(), SystemDefinition::paper_geoi().cache_key());
        assert!(paper.cache_key().contains("geo-indistinguishability"));

        let cloaking = SystemDefinition::with_pair(
            Box::new(GridCloakingFactory::new()),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .unwrap();
        assert_ne!(paper.cache_key(), cloaking.cache_key());

        // Same mechanism over a different range is a different system.
        let narrow = SystemDefinition::with_pair(
            Box::new(GeoIndistinguishabilityFactory::with_range(1e-3, 0.1).unwrap()),
            Box::new(PoiRetrieval::default()),
            Box::new(AreaCoverage::default()),
        )
        .unwrap();
        assert_ne!(paper.cache_key(), narrow.cache_key());
    }

    #[test]
    fn instantiated_mechanism_protects_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let dataset =
            TaxiFleetBuilder::new().drivers(1).duration_hours(1.0).build(&mut rng).unwrap();
        let system = SystemDefinition::paper_geoi();
        let lppm = system.factory().instantiate(0.01).unwrap();
        let protected = lppm.protect_dataset(&dataset, &mut rng).unwrap();
        assert_eq!(protected.record_count(), dataset.record_count());
    }
}
