//! Persistent measurement cache for incremental recomputation.
//!
//! A production configurator watches its users' mobility drift and must not
//! re-measure the whole fleet when only a few users changed. This module is
//! the on-disk half of that story: it persists the per-user measurements of a
//! cached sweep ([`crate::ExperimentRunner::run_cached`]) keyed by
//!
//! * the sweep **signature** — system
//!   ([`crate::SystemDefinition::cache_key`], which pins the mechanism name,
//!   the [`geopriv_lppm::ConfigSpace::cache_token`] and every metric's
//!   `cache_key`), enumeration mode, master seed, repetition count and the
//!   ordered [`geopriv_lppm::ConfigPoint::cache_token`]s — one file per
//!   signature; and
//! * each user's **sub-fingerprint**
//!   ([`geopriv_metrics::DatasetFingerprint::per_user`]) — one entry per
//!   user inside the file, invalidated individually when her records change.
//!
//! The encoding is hand-rolled little-endian binary (the vendored `serde` is
//! a marker shim): every `f64` travels as its raw `to_bits()` word, so values
//! round-trip **bit-exactly** — the property the warm≡cold identity contract
//! rests on. A FNV-1a checksum over the entire payload guards the file;
//! any mismatch (corruption, truncation, a foreign or older format) makes the
//! cache report itself empty with a warning, and the runner falls back to the
//! cold path. A cache can therefore *never* change a result — only the time
//! it takes to produce it. I/O failures while storing are likewise warnings,
//! not errors.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! magic     8 bytes  b"GPCACHE1" (format version 1)
//! checksum  u64      FNV-1a over every byte after this field
//! sig_len   u64      length of the UTF-8 signature string
//! signature …        collision guard: must equal the requested signature
//! points    u64      design-point count
//! reps      u64      repetition count
//! metrics   u64      metric count
//! users     u64      entry count
//! per user:
//!   user id      u64
//!   fingerprint  u64
//!   per (point, repetition, metric), point-major:
//!     value      u64  f64 bits
//!     weight     u64  evaluated-trace count behind the value
//!     tag        u8   1 if a per-user breakdown value follows
//!     breakdown  u64  f64 bits (only when tag == 1)
//! ```

use geopriv_mobility::UserId;
use std::path::{Path, PathBuf};

/// One metric evaluation of one user at one `(point, repetition)` sample, as
/// the cache stores it: the aggregate over the user's own traces, the
/// evaluated-trace weight, and her breakdown value when the metric could
/// evaluate her.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CachedSample {
    pub(crate) value: f64,
    pub(crate) weight: u64,
    pub(crate) breakdown: Option<f64>,
}

/// The cached measurements of one user across a whole sweep design.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CachedUserEntry {
    pub(crate) user: UserId,
    pub(crate) fingerprint: u64,
    points: usize,
    reps: usize,
    metrics: usize,
    /// Flat `[point][repetition][metric]` storage, point-major.
    samples: Vec<CachedSample>,
}

impl CachedUserEntry {
    /// Builds an entry from per-point, per-repetition, per-metric samples.
    /// Ragged input is rejected with `None` (an engine invariant violation
    /// the caller surfaces as a typed internal error).
    pub(crate) fn new(
        user: UserId,
        fingerprint: u64,
        points: usize,
        reps: usize,
        metrics: usize,
        per_point: Vec<Vec<Vec<CachedSample>>>,
    ) -> Option<Self> {
        if per_point.len() != points
            || per_point.iter().any(|p| p.len() != reps || p.iter().any(|r| r.len() != metrics))
        {
            return None;
        }
        let samples = per_point.into_iter().flatten().flatten().collect();
        Some(Self { user, fingerprint, points, reps, metrics, samples })
    }

    /// The metric samples (suite order) at one `(point, repetition)`.
    pub(crate) fn samples_at(&self, point: usize, rep: usize) -> Option<&[CachedSample]> {
        if point >= self.points || rep >= self.reps {
            return None;
        }
        let start = (point * self.reps + rep) * self.metrics;
        self.samples.get(start..start + self.metrics)
    }
}

/// Summary of one cached sweep execution: how many users were served from the
/// cache, how many were re-measured, and any cache warnings (a corrupt file,
/// a failed store) — warnings never change the result, only the cost.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CacheStats {
    /// Users in the measured dataset.
    pub users: usize,
    /// Users whose measurements were decoded from the cache bit-exactly.
    pub hits: usize,
    /// Users re-measured because they were new, changed, or the cache was
    /// unusable.
    pub misses: usize,
    /// Human-readable cache warnings, in occurrence order. A corrupted,
    /// truncated or version-mismatched cache file reports exactly one
    /// warning here and behaves as if it were absent.
    pub warnings: Vec<String>,
}

impl CacheStats {
    /// `true` when every user was served from the cache.
    pub fn fully_warm(&self) -> bool {
        self.misses == 0 && self.users > 0
    }
}

/// The on-disk measurement store: a directory holding one binary file per
/// sweep signature. See the module docs for the key composition and the
/// integrity contract.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementCache {
    dir: PathBuf,
}

const MAGIC: &[u8; 8] = b"GPCACHE1";

impl MeasurementCache {
    /// Opens (without touching the filesystem) the cache rooted at `dir`.
    /// The directory is created lazily on the first store.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The cache's root directory.
    pub fn directory(&self) -> &Path {
        &self.dir
    }

    /// The file a signature's measurements live in: `sweep-<fnv64 hex>.bin`.
    /// The full signature is embedded in the file and re-checked on load, so
    /// a filename hash collision degrades to a cache miss, never a wrong hit.
    pub fn path_for(&self, signature: &str) -> PathBuf {
        self.dir.join(format!("sweep-{:016x}.bin", fnv1a(signature.as_bytes())))
    }

    /// Loads every cached user entry under `signature`, with any warnings.
    ///
    /// A missing file is a plain cold start (no warning). Anything
    /// undecodable — bad magic, truncation, checksum mismatch, a different
    /// signature, dimensions disagreeing with `points`/`reps`/`metrics` —
    /// returns no entries plus one warning describing why.
    pub(crate) fn load(
        &self,
        signature: &str,
        points: usize,
        reps: usize,
        metrics: usize,
    ) -> (Vec<CachedUserEntry>, Vec<String>) {
        let path = self.path_for(signature);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return (Vec::new(), Vec::new()),
            Err(e) => {
                return (
                    Vec::new(),
                    vec![format!(
                        "cache file {} is unreadable ({e}); falling back to the cold path",
                        path.display()
                    )],
                )
            }
        };
        match decode(&bytes, signature, points, reps, metrics) {
            Ok(entries) => (entries, Vec::new()),
            Err(reason) => (
                Vec::new(),
                vec![format!(
                    "cache file {} rejected ({reason}); falling back to the cold path",
                    path.display()
                )],
            ),
        }
    }

    /// Atomically stores `entries` under `signature` (temp file + rename),
    /// replacing any previous contents. Returns warnings instead of failing:
    /// a cache that cannot be written costs time, never correctness.
    pub(crate) fn store(&self, signature: &str, entries: &[CachedUserEntry]) -> Vec<String> {
        let path = self.path_for(signature);
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            return vec![format!(
                "cache directory {} could not be created ({e}); measurements were not persisted",
                self.dir.display()
            )];
        }
        let bytes = encode(signature, entries);
        let tmp = path.with_extension("bin.tmp");
        if let Err(e) = std::fs::write(&tmp, &bytes) {
            return vec![format!(
                "cache file {} could not be written ({e}); measurements were not persisted",
                tmp.display()
            )];
        }
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return vec![format!(
                "cache file {} could not be replaced ({e}); measurements were not persisted",
                path.display()
            )];
        }
        Vec::new()
    }
}

/// FNV-1a over a byte string — the fixed, platform-independent hash used for
/// both the filename and the checksum (never the standard library's
/// randomized hasher).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn encode(signature: &str, entries: &[CachedUserEntry]) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, signature.len() as u64);
    payload.extend_from_slice(signature.as_bytes());
    let (points, reps, metrics) =
        entries.first().map_or((0, 0, 0), |e| (e.points as u64, e.reps as u64, e.metrics as u64));
    put_u64(&mut payload, points);
    put_u64(&mut payload, reps);
    put_u64(&mut payload, metrics);
    put_u64(&mut payload, entries.len() as u64);
    for entry in entries {
        put_u64(&mut payload, entry.user.value());
        put_u64(&mut payload, entry.fingerprint);
        for sample in &entry.samples {
            put_u64(&mut payload, sample.value.to_bits());
            put_u64(&mut payload, sample.weight);
            match sample.breakdown {
                Some(v) => {
                    payload.push(1);
                    put_u64(&mut payload, v.to_bits());
                }
                None => payload.push(0),
            }
        }
    }
    let mut bytes = Vec::with_capacity(MAGIC.len() + 8 + payload.len());
    bytes.extend_from_slice(MAGIC);
    put_u64(&mut bytes, fnv1a(&payload));
    bytes.extend_from_slice(&payload);
    bytes
}

fn decode(
    bytes: &[u8],
    signature: &str,
    points: usize,
    reps: usize,
    metrics: usize,
) -> Result<Vec<CachedUserEntry>, String> {
    let mut cursor = Cursor { bytes, at: 0 };
    let magic = cursor.take(MAGIC.len()).ok_or("file shorter than its magic")?;
    if magic != MAGIC {
        return Err("unrecognized magic — a foreign file or an older cache format".to_string());
    }
    let checksum = cursor.u64().ok_or("file truncated before its checksum")?;
    let payload = cursor.rest();
    if fnv1a(payload) != checksum {
        return Err("checksum mismatch — the file is corrupted".to_string());
    }
    let mut cursor = Cursor { bytes: payload, at: 0 };
    let sig_len = cursor.usize_field("signature length")?;
    let stored_sig = cursor.take(sig_len).ok_or("file truncated inside its signature")?;
    if stored_sig != signature.as_bytes() {
        return Err("signature mismatch — the file belongs to a different sweep".to_string());
    }
    let stored_points = cursor.usize_field("point count")?;
    let stored_reps = cursor.usize_field("repetition count")?;
    let stored_metrics = cursor.usize_field("metric count")?;
    let users = cursor.usize_field("user count")?;
    if stored_points != points || stored_reps != reps || stored_metrics != metrics {
        return Err(format!(
            "dimensions {stored_points}×{stored_reps}×{stored_metrics} do not match the \
             requested sweep ({points}×{reps}×{metrics})"
        ));
    }
    let samples_per_user = points
        .checked_mul(reps)
        .and_then(|n| n.checked_mul(metrics))
        .ok_or("sample dimensions overflow")?;
    let mut entries = Vec::new();
    for _ in 0..users {
        let user = UserId::new(cursor.u64().ok_or("file truncated inside a user id")?);
        let fingerprint = cursor.u64().ok_or("file truncated inside a fingerprint")?;
        let mut samples = Vec::with_capacity(samples_per_user);
        for _ in 0..samples_per_user {
            let value = f64::from_bits(cursor.u64().ok_or("file truncated inside a sample")?);
            let weight = cursor.u64().ok_or("file truncated inside a sample weight")?;
            let breakdown = match cursor.byte().ok_or("file truncated inside a breakdown tag")? {
                0 => None,
                1 => Some(f64::from_bits(
                    cursor.u64().ok_or("file truncated inside a breakdown value")?,
                )),
                tag => return Err(format!("invalid breakdown tag {tag}")),
            };
            samples.push(CachedSample { value, weight, breakdown });
        }
        entries.push(CachedUserEntry { user, fingerprint, points, reps, metrics, samples });
    }
    if !cursor.rest().is_empty() {
        return Err("trailing bytes after the last entry".to_string());
    }
    Ok(entries)
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// A bounds-checked byte cursor: every read is `Option`al, so a truncated
/// file can never index out of range.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(len)?;
        let slice = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(slice)
    }

    fn byte(&mut self) -> Option<u8> {
        self.take(1).and_then(|s| s.first().copied())
    }

    fn u64(&mut self) -> Option<u64> {
        let slice = self.take(8)?;
        let mut word = [0u8; 8];
        word.copy_from_slice(slice);
        Some(u64::from_le_bytes(word))
    }

    fn usize_field(&mut self, what: &str) -> Result<usize, String> {
        let raw = self.u64().ok_or_else(|| format!("file truncated before its {what}"))?;
        usize::try_from(raw).map_err(|_| format!("{what} {raw} does not fit this platform"))
    }

    fn rest(&self) -> &'a [u8] {
        self.bytes.get(self.at..).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(user: u64, fingerprint: u64) -> CachedUserEntry {
        let per_point = vec![
            vec![vec![
                CachedSample { value: 0.1 + user as f64, weight: 1, breakdown: Some(0.25) },
                CachedSample { value: f64::MIN_POSITIVE, weight: 0, breakdown: None },
            ]],
            vec![vec![
                CachedSample { value: -0.0, weight: 3, breakdown: Some(f64::EPSILON) },
                CachedSample { value: 1.0 / 3.0, weight: 2, breakdown: None },
            ]],
        ];
        CachedUserEntry::new(UserId::new(user), fingerprint, 2, 1, 2, per_point).unwrap()
    }

    #[test]
    fn round_trips_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("geopriv-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = MeasurementCache::open(&dir);
        let entries = vec![entry(7, 0xAB), entry(9, 0xCD)];
        assert!(cache.store("sig-a", &entries).is_empty());
        let (loaded, warnings) = cache.load("sig-a", 2, 1, 2);
        assert!(warnings.is_empty());
        assert_eq!(loaded, entries);
        // -0.0 and subnormals survive bit-for-bit.
        let sample = loaded[0].samples_at(1, 0).unwrap()[0];
        assert_eq!(sample.value.to_bits(), (-0.0f64).to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_silent_cold_start() {
        let cache = MeasurementCache::open("/nonexistent-geopriv-cache");
        let (loaded, warnings) = cache.load("sig", 1, 1, 1);
        assert!(loaded.is_empty());
        assert!(warnings.is_empty());
    }

    #[test]
    fn corruption_truncation_and_mismatches_warn_and_fall_back() {
        let dir =
            std::env::temp_dir().join(format!("geopriv-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = MeasurementCache::open(&dir);
        let entries = vec![entry(1, 2)];
        assert!(cache.store("sig-b", &entries).is_empty());
        let path = cache.path_for("sig-b");
        let pristine = std::fs::read(&path).unwrap();

        // Flipped payload byte → checksum mismatch.
        let mut corrupt = pristine.clone();
        *corrupt.last_mut().unwrap() ^= 0xFF;
        std::fs::write(&path, &corrupt).unwrap();
        let (loaded, warnings) = cache.load("sig-b", 2, 1, 2);
        assert!(loaded.is_empty());
        assert!(warnings.len() == 1 && warnings[0].contains("checksum"), "{warnings:?}");

        // Truncation → checksum mismatch as well (never a panic).
        std::fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
        assert!(cache.load("sig-b", 2, 1, 2).0.is_empty());
        for len in 0..MAGIC.len() + 16 {
            std::fs::write(&path, &pristine[..len]).unwrap();
            let (loaded, warnings) = cache.load("sig-b", 2, 1, 2);
            assert!(loaded.is_empty() && warnings.len() == 1);
        }

        // A different magic (older / foreign format) is rejected up front.
        let mut foreign = pristine.clone();
        foreign[..8].copy_from_slice(b"GPCACHE0");
        std::fs::write(&path, &foreign).unwrap();
        let (loaded, warnings) = cache.load("sig-b", 2, 1, 2);
        assert!(loaded.is_empty());
        assert!(warnings[0].contains("magic"), "{warnings:?}");

        // A signature collision inside the file is detected by content.
        std::fs::write(&path, &pristine).unwrap();
        std::fs::rename(&path, cache.path_for("sig-c")).unwrap();
        let (loaded, warnings) = cache.load("sig-c", 2, 1, 2);
        assert!(loaded.is_empty());
        assert!(warnings[0].contains("signature"), "{warnings:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let dir = std::env::temp_dir().join(format!("geopriv-cache-dims-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = MeasurementCache::open(&dir);
        assert!(cache.store("sig-d", &[entry(1, 2)]).is_empty());
        let (loaded, warnings) = cache.load("sig-d", 3, 1, 2);
        assert!(loaded.is_empty());
        assert!(warnings[0].contains("dimensions"), "{warnings:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ragged_entries_are_rejected_at_construction() {
        let ragged = vec![vec![vec![CachedSample { value: 0.0, weight: 0, breakdown: None }]]];
        assert!(CachedUserEntry::new(UserId::new(1), 0, 1, 1, 2, ragged).is_none());
        assert!(entry(1, 1).samples_at(2, 0).is_none());
        assert!(entry(1, 1).samples_at(0, 1).is_none());
    }
}
