//! Property-based tests for the geospatial substrate.

use geopriv_geo::{
    distance, BoundingBox, GeoPoint, Grid, LocalProjection, Meters, Point, QuadTree,
};
use proptest::prelude::*;

/// City-scale latitudes/longitudes around San Francisco, the paper's study area.
fn sf_coords() -> impl Strategy<Value = (f64, f64)> {
    (37.60f64..37.90f64, -122.60f64..-122.30f64)
}

fn planar_points(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((-10_000.0f64..10_000.0, -10_000.0f64..10_000.0), 0..max_len)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #[test]
    fn geopoint_accepts_all_valid_coordinates(lat in -90.0f64..=90.0, lon in -180.0f64..=180.0) {
        let p = GeoPoint::new(lat, lon).unwrap();
        prop_assert_eq!(p.latitude(), lat);
        prop_assert_eq!(p.longitude(), lon);
    }

    #[test]
    fn clamped_always_yields_valid_coordinates(lat in -200.0f64..200.0, lon in -500.0f64..500.0) {
        let p = GeoPoint::clamped(lat, lon);
        prop_assert!((-90.0..=90.0).contains(&p.latitude()));
        prop_assert!((-180.0..=180.0).contains(&p.longitude()));
    }

    #[test]
    fn haversine_is_symmetric_and_nonnegative((lat1, lon1) in sf_coords(), (lat2, lon2) in sf_coords()) {
        let a = GeoPoint::new(lat1, lon1).unwrap();
        let b = GeoPoint::new(lat2, lon2).unwrap();
        let ab = distance::haversine(a, b).as_f64();
        let ba = distance::haversine(b, a).as_f64();
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn haversine_triangle_inequality((lat1, lon1) in sf_coords(), (lat2, lon2) in sf_coords(), (lat3, lon3) in sf_coords()) {
        let a = GeoPoint::new(lat1, lon1).unwrap();
        let b = GeoPoint::new(lat2, lon2).unwrap();
        let c = GeoPoint::new(lat3, lon3).unwrap();
        let ab = distance::haversine(a, b).as_f64();
        let bc = distance::haversine(b, c).as_f64();
        let ac = distance::haversine(a, c).as_f64();
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn projection_roundtrip_is_lossless((clat, clon) in sf_coords(), (lat, lon) in sf_coords()) {
        let proj = LocalProjection::centered_on(GeoPoint::new(clat, clon).unwrap());
        let original = GeoPoint::new(lat, lon).unwrap();
        let back = proj.unproject(proj.project(original));
        prop_assert!((back.latitude() - lat).abs() < 1e-9);
        prop_assert!((back.longitude() - lon).abs() < 1e-9);
    }

    #[test]
    fn projected_distance_matches_haversine((lat1, lon1) in sf_coords(), (lat2, lon2) in sf_coords()) {
        let a = GeoPoint::new(lat1, lon1).unwrap();
        let b = GeoPoint::new(lat2, lon2).unwrap();
        let proj = LocalProjection::centered_on(a);
        let planar = proj.project(a).distance_to(proj.project(b)).as_f64();
        let spherical = distance::haversine(a, b).as_f64();
        // Within 1% (plus 1 m slack for tiny distances) at city scale.
        prop_assert!((planar - spherical).abs() <= 0.01 * spherical + 1.0);
    }

    #[test]
    fn every_point_maps_to_a_valid_grid_cell((lat, lon) in sf_coords(), cell_m in 50.0f64..1000.0) {
        let area = BoundingBox::new(37.60, -122.60, 37.90, -122.30).unwrap();
        let grid = Grid::new(area, Meters::new(cell_m)).unwrap();
        let cell = grid.cell_of(GeoPoint::new(lat, lon).unwrap());
        prop_assert!(cell.col < grid.columns());
        prop_assert!(cell.row < grid.rows());
        // Cell centers always map back to their own cell.
        prop_assert_eq!(grid.cell_of(grid.cell_center(cell)), cell);
    }

    #[test]
    fn jaccard_and_f1_are_bounded(points in planar_points(60), radius in 1.0f64..3000.0) {
        let area = BoundingBox::new(37.60, -122.60, 37.90, -122.30).unwrap();
        let grid = Grid::new(area, Meters::new(200.0)).unwrap();
        let proj = LocalProjection::centered_on(area.center());
        let geos: Vec<GeoPoint> = points.iter().map(|p| proj.unproject(*p)).collect();
        let shifted: Vec<GeoPoint> = points
            .iter()
            .map(|p| proj.unproject(Point::new(p.x() + radius, p.y())))
            .collect();
        let a = grid.coverage(geos.iter().copied());
        let b = grid.coverage(shifted.iter().copied());
        let j = a.jaccard(&b);
        let f1 = a.f1_of(&b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((0.0..=1.0).contains(&f1));
        // F1 is never smaller than Jaccard.
        prop_assert!(f1 + 1e-12 >= j);
    }

    #[test]
    fn quadtree_range_query_equals_brute_force(points in planar_points(80), radius in 0.0f64..5000.0,
                                               qx in -10_000.0f64..10_000.0, qy in -10_000.0f64..10_000.0) {
        let tree = QuadTree::build(&points);
        let center = Point::new(qx, qy);
        let mut expected: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_to(center).as_f64() <= radius)
            .map(|(i, _)| i)
            .collect();
        let mut got = tree.within_radius(center, Meters::new(radius));
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn quadtree_nearest_equals_brute_force(points in planar_points(80),
                                           qx in -10_000.0f64..10_000.0, qy in -10_000.0f64..10_000.0) {
        let tree = QuadTree::build(&points);
        let target = Point::new(qx, qy);
        match tree.nearest(target) {
            None => prop_assert!(points.is_empty()),
            Some((_, d)) => {
                let brute = points.iter().map(|p| p.distance_to(target).as_f64()).fold(f64::INFINITY, f64::min);
                prop_assert!((d.as_f64() - brute).abs() < 1e-9);
            }
        }
    }
}
