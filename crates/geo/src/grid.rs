//! Uniform "city block" grids and cell coverage sets.
//!
//! The paper's utility metric compares the *area coverage* of a user's actual
//! and protected traces at the granularity of a city block. [`Grid`]
//! discretizes a geographic bounding box into square cells of a configurable
//! size (200 m by default, a typical San Francisco block), and [`CellSet`]
//! represents the set of cells touched by a trace together with the usual
//! set-similarity measures (Jaccard index, F1 score).

use crate::bbox::BoundingBox;
use crate::error::GeoError;
use crate::point::GeoPoint;
use crate::projection::LocalProjection;
use crate::units::Meters;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a grid cell: `(column, row)` indices from the south-west corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId {
    /// Column index (west → east).
    pub col: u32,
    /// Row index (south → north).
    pub row: u32,
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.col, self.row)
    }
}

/// A uniform square-cell grid over a geographic bounding box.
///
/// Points outside the bounding box are clamped to the border cells, so every
/// valid [`GeoPoint`] maps to a cell: a heavily-perturbed location must still
/// contribute to coverage comparisons rather than be silently dropped.
///
/// # Examples
///
/// ```
/// use geopriv_geo::{BoundingBox, GeoPoint, Grid, Meters};
///
/// # fn main() -> Result<(), geopriv_geo::GeoError> {
/// let area = BoundingBox::new(37.70, -122.52, 37.83, -122.35)?;
/// let grid = Grid::new(area, Meters::new(200.0))?;
///
/// let cell = grid.cell_of(GeoPoint::new(37.7749, -122.4194)?);
/// assert!(cell.col < grid.columns() && cell.row < grid.rows());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    bounds: BoundingBox,
    cell_size: Meters,
    projection: LocalProjection,
    columns: u32,
    rows: u32,
    width_m: f64,
    height_m: f64,
}

impl Grid {
    /// Creates a grid over `bounds` with square cells of side `cell_size`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLength`] for a non-positive cell size and
    /// [`GeoError::DegenerateGrid`] if the grid would exceed 2³² cells or
    /// contain none.
    pub fn new(bounds: BoundingBox, cell_size: Meters) -> Result<Self, GeoError> {
        let cell_size = cell_size.expect_positive("cell size")?;
        let projection = LocalProjection::centered_on(bounds.south_west());
        let ne = projection.project(bounds.north_east());
        let width_m = ne.x();
        let height_m = ne.y();
        if width_m <= 0.0 || height_m <= 0.0 {
            return Err(GeoError::DegenerateGrid);
        }
        let columns = (width_m / cell_size.as_f64()).ceil() as u64;
        let rows = (height_m / cell_size.as_f64()).ceil() as u64;
        if columns == 0 || rows == 0 || columns.saturating_mul(rows) > u64::from(u32::MAX) {
            return Err(GeoError::DegenerateGrid);
        }
        Ok(Self {
            bounds,
            cell_size,
            projection,
            columns: columns as u32,
            rows: rows as u32,
            width_m,
            height_m,
        })
    }

    /// The bounding box covered by the grid.
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// The side length of a cell.
    pub fn cell_size(&self) -> Meters {
        self.cell_size
    }

    /// Number of columns (east-west cells).
    pub fn columns(&self) -> u32 {
        self.columns
    }

    /// Number of rows (north-south cells).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> u64 {
        u64::from(self.columns) * u64::from(self.rows)
    }

    /// Returns the cell containing `point`.
    ///
    /// Points outside the bounding box are clamped to the nearest border cell.
    pub fn cell_of(&self, point: GeoPoint) -> CellId {
        let p = self.projection.project(point);
        let col = (p.x() / self.cell_size.as_f64()).floor();
        let row = (p.y() / self.cell_size.as_f64()).floor();
        CellId {
            col: col.clamp(0.0, f64::from(self.columns - 1)) as u32,
            row: row.clamp(0.0, f64::from(self.rows - 1)) as u32,
        }
    }

    /// Returns the geographic center of a cell.
    ///
    /// Cells outside the grid are clamped to the nearest valid cell.
    pub fn cell_center(&self, cell: CellId) -> GeoPoint {
        let col = cell.col.min(self.columns - 1);
        let row = cell.row.min(self.rows - 1);
        let x = (f64::from(col) + 0.5) * self.cell_size.as_f64();
        let y = (f64::from(row) + 0.5) * self.cell_size.as_f64();
        self.projection
            .unproject(crate::point::Point::new(x.min(self.width_m), y.min(self.height_m)))
    }

    /// Builds the [`CellSet`] of all cells touched by the given points.
    pub fn coverage<I>(&self, points: I) -> CellSet
    where
        I: IntoIterator<Item = GeoPoint>,
    {
        CellSet::from_cells(points.into_iter().map(|p| self.cell_of(p)))
    }

    /// Builds a histogram of visits per cell for the given points.
    pub fn histogram<I>(&self, points: I) -> BTreeMap<CellId, usize>
    where
        I: IntoIterator<Item = GeoPoint>,
    {
        let mut hist = BTreeMap::new();
        for p in points {
            *hist.entry(self.cell_of(p)).or_insert(0) += 1;
        }
        hist
    }
}

/// A set of grid cells, typically the coverage of a mobility trace.
///
/// Provides the set-similarity measures used by the area-coverage utility
/// metric.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CellSet {
    cells: BTreeSet<CellId>,
}

impl CellSet {
    /// Creates an empty cell set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set from an iterator of cells.
    pub fn from_cells<I: IntoIterator<Item = CellId>>(cells: I) -> Self {
        Self { cells: cells.into_iter().collect() }
    }

    /// Number of distinct cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the set contains no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Returns `true` if the set contains `cell`.
    pub fn contains(&self, cell: CellId) -> bool {
        self.cells.contains(&cell)
    }

    /// Inserts a cell, returning `true` if it was not already present.
    pub fn insert(&mut self, cell: CellId) -> bool {
        self.cells.insert(cell)
    }

    /// Iterates over the cells in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells.iter().copied()
    }

    /// Number of cells present in both sets.
    pub fn intersection_size(&self, other: &CellSet) -> usize {
        if self.len() <= other.len() {
            self.cells.iter().filter(|c| other.cells.contains(c)).count()
        } else {
            other.intersection_size(self)
        }
    }

    /// Number of cells present in either set.
    pub fn union_size(&self, other: &CellSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Jaccard similarity `|A ∩ B| / |A ∪ B|` in `[0, 1]`.
    ///
    /// Two empty sets are considered identical (similarity 1).
    pub fn jaccard(&self, other: &CellSet) -> f64 {
        let union = self.union_size(other);
        if union == 0 {
            return 1.0;
        }
        self.intersection_size(other) as f64 / union as f64
    }

    /// Precision of `other` against `self` taken as ground truth:
    /// the fraction of `other`'s cells that are also in `self`.
    pub fn precision_of(&self, other: &CellSet) -> f64 {
        if other.is_empty() {
            return if self.is_empty() { 1.0 } else { 0.0 };
        }
        self.intersection_size(other) as f64 / other.len() as f64
    }

    /// Recall of `other` against `self` taken as ground truth:
    /// the fraction of `self`'s cells that are covered by `other`.
    pub fn recall_of(&self, other: &CellSet) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        self.intersection_size(other) as f64 / self.len() as f64
    }

    /// F1 score (harmonic mean of precision and recall) of `other` against
    /// `self` taken as ground truth.
    ///
    /// This is the default area-coverage similarity of the utility metric.
    pub fn f1_of(&self, other: &CellSet) -> f64 {
        let p = self.precision_of(other);
        let r = self.recall_of(other);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl FromIterator<CellId> for CellSet {
    fn from_iter<I: IntoIterator<Item = CellId>>(iter: I) -> Self {
        Self::from_cells(iter)
    }
}

impl Extend<CellId> for CellSet {
    fn extend<I: IntoIterator<Item = CellId>>(&mut self, iter: I) {
        self.cells.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf_grid(cell_m: f64) -> Grid {
        let area = BoundingBox::new(37.70, -122.52, 37.83, -122.35).unwrap();
        Grid::new(area, Meters::new(cell_m)).unwrap()
    }

    fn cell(col: u32, row: u32) -> CellId {
        CellId { col, row }
    }

    #[test]
    fn grid_dimensions_match_cell_size() {
        let g = sf_grid(200.0);
        // SF box is ~15 km x ~14.5 km -> about 75 x 72 cells.
        assert!((60..90).contains(&g.columns()), "cols={}", g.columns());
        assert!((60..90).contains(&g.rows()), "rows={}", g.rows());
        assert_eq!(g.cell_count(), u64::from(g.columns()) * u64::from(g.rows()));

        let fine = sf_grid(100.0);
        assert!(fine.columns() > g.columns());
        assert!(fine.rows() > g.rows());
    }

    #[test]
    fn invalid_cell_sizes_are_rejected() {
        let area = BoundingBox::new(37.70, -122.52, 37.83, -122.35).unwrap();
        assert!(Grid::new(area, Meters::new(0.0)).is_err());
        assert!(Grid::new(area, Meters::new(-5.0)).is_err());
        assert!(Grid::new(area, Meters::new(f64::NAN)).is_err());
        // A cell size of 0.01 m over a planet-scale box would overflow u32.
        let planet = BoundingBox::new(-80.0, -179.0, 80.0, 179.0).unwrap();
        assert!(Grid::new(planet, Meters::new(0.01)).is_err());
    }

    #[test]
    fn corner_points_map_to_corner_cells() {
        let g = sf_grid(200.0);
        let sw = g.cell_of(g.bounds().south_west());
        assert_eq!(sw, cell(0, 0));
        let ne = g.cell_of(g.bounds().north_east());
        assert_eq!(ne, cell(g.columns() - 1, g.rows() - 1));
    }

    #[test]
    fn out_of_bounds_points_clamp_to_border() {
        let g = sf_grid(200.0);
        let far_north = GeoPoint::new(45.0, -122.4194).unwrap();
        let c = g.cell_of(far_north);
        assert_eq!(c.row, g.rows() - 1);
        let far_west = GeoPoint::new(37.75, -130.0).unwrap();
        assert_eq!(g.cell_of(far_west).col, 0);
    }

    #[test]
    fn nearby_points_share_a_cell_distant_points_do_not() {
        let g = sf_grid(200.0);
        let a = GeoPoint::new(37.7749, -122.4194).unwrap();
        let b = GeoPoint::new(37.77495, -122.41945).unwrap(); // a few meters away
        assert_eq!(g.cell_of(a), g.cell_of(b));
        let c = GeoPoint::new(37.79, -122.40).unwrap(); // ~2 km away
        assert_ne!(g.cell_of(a), g.cell_of(c));
    }

    #[test]
    fn cell_center_roundtrips_to_same_cell() {
        let g = sf_grid(200.0);
        for point in [
            GeoPoint::new(37.7749, -122.4194).unwrap(),
            GeoPoint::new(37.71, -122.50).unwrap(),
            GeoPoint::new(37.82, -122.36).unwrap(),
        ] {
            let c = g.cell_of(point);
            let center = g.cell_center(c);
            assert_eq!(g.cell_of(center), c, "cell {c} center {center}");
        }
    }

    #[test]
    fn coverage_and_histogram() {
        let g = sf_grid(200.0);
        let a = GeoPoint::new(37.7749, -122.4194).unwrap();
        let b = GeoPoint::new(37.79, -122.40).unwrap();
        let cov = g.coverage([a, a, b]);
        assert_eq!(cov.len(), 2);
        let hist = g.histogram([a, a, b]);
        assert_eq!(hist[&g.cell_of(a)], 2);
        assert_eq!(hist[&g.cell_of(b)], 1);
    }

    #[test]
    fn cellset_similarities() {
        let a = CellSet::from_cells([cell(0, 0), cell(1, 0), cell(2, 0)]);
        let b = CellSet::from_cells([cell(1, 0), cell(2, 0), cell(3, 0)]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 4);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        assert!((a.precision_of(&b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.recall_of(&b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.f1_of(&b) - 2.0 / 3.0).abs() < 1e-12);

        // Identity.
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(a.f1_of(&a), 1.0);

        // Disjoint sets.
        let c = CellSet::from_cells([cell(9, 9)]);
        assert_eq!(a.jaccard(&c), 0.0);
        assert_eq!(a.f1_of(&c), 0.0);
    }

    #[test]
    fn cellset_empty_conventions() {
        let empty = CellSet::new();
        let nonempty = CellSet::from_cells([cell(0, 0)]);
        assert!(empty.is_empty());
        assert_eq!(empty.jaccard(&empty), 1.0);
        assert_eq!(empty.f1_of(&empty), 1.0);
        assert_eq!(nonempty.precision_of(&empty), 0.0);
        assert_eq!(empty.recall_of(&nonempty), 1.0);
    }

    #[test]
    fn cellset_collect_and_extend() {
        let mut s: CellSet = [cell(0, 0), cell(1, 1)].into_iter().collect();
        assert_eq!(s.len(), 2);
        s.extend([cell(1, 1), cell(2, 2)]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(cell(2, 2)));
        assert!(s.insert(cell(3, 3)));
        assert!(!s.insert(cell(3, 3)));
        assert_eq!(s.iter().count(), 4);
    }
}
