//! Local planar projections.

use crate::distance::EARTH_RADIUS_M;
use crate::point::{GeoPoint, Point};
use serde::{Deserialize, Serialize};

/// An equirectangular projection centered on a reference point.
///
/// Geographic coordinates are mapped to a local east/north frame in meters:
///
/// * `x = R · (λ − λ₀) · cos φ₀`
/// * `y = R · (φ − φ₀)`
///
/// where `(φ₀, λ₀)` is the reference point. At city scale (tens of
/// kilometers) the distortion is negligible, which is exactly the regime of
/// the paper's San Francisco evaluation: noise amplitudes (1/ε ≈ 1 m – 10 km)
/// and city-block grids both live comfortably inside this approximation.
///
/// The projection is exactly invertible via [`LocalProjection::unproject`].
///
/// # Examples
///
/// ```
/// use geopriv_geo::{GeoPoint, LocalProjection};
///
/// # fn main() -> Result<(), geopriv_geo::GeoError> {
/// let center = GeoPoint::new(37.7749, -122.4194)?;
/// let proj = LocalProjection::centered_on(center);
///
/// let p = proj.project(GeoPoint::new(37.7849, -122.4094)?);
/// assert!(p.x() > 0.0 && p.y() > 0.0); // north-east of the center
///
/// // Round trip is exact to floating point precision.
/// let back = proj.unproject(p);
/// assert!((back.latitude() - 37.7849).abs() < 1e-9);
/// assert!((back.longitude() - -122.4094).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalProjection {
    reference: GeoPoint,
    cos_ref_lat: f64,
}

impl LocalProjection {
    /// Creates a projection centered on `reference`.
    pub fn centered_on(reference: GeoPoint) -> Self {
        Self { reference, cos_ref_lat: reference.latitude_radians().cos() }
    }

    /// The reference (origin) point of the projection.
    pub fn reference(&self) -> GeoPoint {
        self.reference
    }

    /// Projects a geographic point into the local planar frame (meters).
    pub fn project(&self, point: GeoPoint) -> Point {
        let dlat = (point.latitude() - self.reference.latitude()).to_radians();
        let dlon = (point.longitude() - self.reference.longitude()).to_radians();
        Point::new(EARTH_RADIUS_M * dlon * self.cos_ref_lat, EARTH_RADIUS_M * dlat)
    }

    /// Maps a planar point back to geographic coordinates.
    ///
    /// Out-of-range results (which can only occur for planar points thousands
    /// of kilometers away from the reference) are clamped/wrapped into the
    /// valid WGS-84 domain.
    pub fn unproject(&self, point: Point) -> GeoPoint {
        let dlat = (point.y() / EARTH_RADIUS_M).to_degrees();
        let dlon = (point.x() / (EARTH_RADIUS_M * self.cos_ref_lat)).to_degrees();
        GeoPoint::clamped(self.reference.latitude() + dlat, self.reference.longitude() + dlon)
    }

    /// Projects a slice of geographic points.
    pub fn project_all(&self, points: &[GeoPoint]) -> Vec<Point> {
        points.iter().map(|&p| self.project(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::haversine;

    fn gp(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn reference_projects_to_origin() {
        let c = gp(37.7749, -122.4194);
        let proj = LocalProjection::centered_on(c);
        let p = proj.project(c);
        assert_eq!(p, Point::origin());
        assert_eq!(proj.reference(), c);
    }

    #[test]
    fn roundtrip_is_exact() {
        let proj = LocalProjection::centered_on(gp(37.7749, -122.4194));
        for (lat, lon) in
            [(37.70, -122.52), (37.83, -122.35), (37.7749, -122.4194), (37.80, -122.40)]
        {
            let original = gp(lat, lon);
            let back = proj.unproject(proj.project(original));
            assert!((back.latitude() - lat).abs() < 1e-9);
            assert!((back.longitude() - lon).abs() < 1e-9);
        }
    }

    #[test]
    fn planar_distance_matches_haversine_at_city_scale() {
        let center = gp(37.7749, -122.4194);
        let proj = LocalProjection::centered_on(center);
        let a = gp(37.76, -122.45);
        let b = gp(37.80, -122.39);
        let planar = proj.project(a).distance_to(proj.project(b)).as_f64();
        let spherical = haversine(a, b).as_f64();
        assert!(
            (planar - spherical).abs() / spherical < 5e-3,
            "planar={planar} spherical={spherical}"
        );
    }

    #[test]
    fn axes_are_oriented_east_and_north() {
        let center = gp(37.7749, -122.4194);
        let proj = LocalProjection::centered_on(center);
        let north = proj.project(gp(37.7849, -122.4194));
        assert!(north.y() > 0.0 && north.x().abs() < 1e-6);
        let east = proj.project(gp(37.7749, -122.4094));
        assert!(east.x() > 0.0 && east.y().abs() < 1e-6);
    }

    #[test]
    fn project_all_preserves_order_and_length() {
        let proj = LocalProjection::centered_on(gp(37.7749, -122.4194));
        let pts = vec![gp(37.76, -122.42), gp(37.78, -122.41), gp(37.79, -122.43)];
        let projected = proj.project_all(&pts);
        assert_eq!(projected.len(), 3);
        assert_eq!(projected[1], proj.project(pts[1]));
    }

    #[test]
    fn unproject_far_point_clamps_into_valid_domain() {
        let proj = LocalProjection::centered_on(gp(89.9, 0.0));
        // 1000 km north of a point near the pole would exceed 90° latitude.
        let g = proj.unproject(Point::new(0.0, 1_000_000.0));
        assert!(g.latitude() <= 90.0);
    }
}
