//! Error type for geospatial operations.

use std::fmt;

/// Errors produced by the `geopriv-geo` crate.
///
/// All public constructors in this crate validate their input
/// (latitudes in `[-90, 90]`, longitudes in `[-180, 180]`, strictly
/// positive lengths, finite numbers) and report violations through this
/// type rather than panicking.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeoError {
    /// A latitude was outside `[-90, 90]` degrees or not finite.
    InvalidLatitude(f64),
    /// A longitude was outside `[-180, 180]` degrees or not finite.
    InvalidLongitude(f64),
    /// A length (distance, cell size, radius…) was not finite or not strictly positive.
    InvalidLength {
        /// Human-readable name of the offending quantity.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A bounding box was constructed with inverted or empty extents.
    EmptyBounds,
    /// A grid would contain no cells (degenerate bounding box or cell size too large).
    DegenerateGrid,
    /// A numeric argument was NaN or infinite.
    NotFinite {
        /// Human-readable name of the offending quantity.
        name: &'static str,
    },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => {
                write!(f, "invalid latitude {v}: expected a finite value in [-90, 90]")
            }
            GeoError::InvalidLongitude(v) => {
                write!(f, "invalid longitude {v}: expected a finite value in [-180, 180]")
            }
            GeoError::InvalidLength { name, value } => {
                write!(f, "invalid {name} {value}: expected a finite, strictly positive length")
            }
            GeoError::EmptyBounds => write!(f, "bounding box has no extent"),
            GeoError::DegenerateGrid => write!(f, "grid would contain no cells"),
            GeoError::NotFinite { name } => write!(f, "{name} must be finite"),
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            GeoError::InvalidLatitude(95.0),
            GeoError::InvalidLongitude(-190.0),
            GeoError::InvalidLength { name: "cell size", value: -1.0 },
            GeoError::EmptyBounds,
            GeoError::DegenerateGrid,
            GeoError::NotFinite { name: "x" },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<GeoError>();
    }
}
