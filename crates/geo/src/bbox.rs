//! Geographic bounding boxes.

use crate::error::GeoError;
use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned geographic bounding box.
///
/// Used to describe the extent of a mobility dataset (a "city area") and to
/// construct the uniform grids underlying the area-coverage utility metric.
/// Boxes never straddle the antimeridian: the generators and datasets in this
/// workspace are city-scale.
///
/// # Examples
///
/// ```
/// use geopriv_geo::{BoundingBox, GeoPoint};
///
/// # fn main() -> Result<(), geopriv_geo::GeoError> {
/// let sf = BoundingBox::new(37.70, -122.52, 37.83, -122.35)?;
/// assert!(sf.contains(GeoPoint::new(37.7749, -122.4194)?));
/// assert!(!sf.contains(GeoPoint::new(40.0, -122.4)?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    min_lat: f64,
    min_lon: f64,
    max_lat: f64,
    max_lon: f64,
}

impl BoundingBox {
    /// Creates a bounding box from its south-west and north-east corners.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLatitude`]/[`GeoError::InvalidLongitude`] if
    /// a corner is invalid, and [`GeoError::EmptyBounds`] if the box has zero
    /// or negative extent in either dimension.
    pub fn new(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Result<Self, GeoError> {
        let _sw = GeoPoint::new(min_lat, min_lon)?;
        let _ne = GeoPoint::new(max_lat, max_lon)?;
        if min_lat >= max_lat || min_lon >= max_lon {
            return Err(GeoError::EmptyBounds);
        }
        Ok(Self { min_lat, min_lon, max_lat, max_lon })
    }

    /// Creates the smallest bounding box containing every point of the iterator.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyBounds`] if the iterator is empty or all
    /// points are identical in one dimension (zero-extent box).
    pub fn enclosing<I>(points: I) -> Result<Self, GeoError>
    where
        I: IntoIterator<Item = GeoPoint>,
    {
        let mut min_lat = f64::INFINITY;
        let mut min_lon = f64::INFINITY;
        let mut max_lat = f64::NEG_INFINITY;
        let mut max_lon = f64::NEG_INFINITY;
        let mut any = false;
        for p in points {
            any = true;
            min_lat = min_lat.min(p.latitude());
            max_lat = max_lat.max(p.latitude());
            min_lon = min_lon.min(p.longitude());
            max_lon = max_lon.max(p.longitude());
        }
        if !any {
            return Err(GeoError::EmptyBounds);
        }
        if min_lat == max_lat || min_lon == max_lon {
            // Degenerate box: pad by a small margin so it is usable for grids.
            return Self::new(
                (min_lat - 1e-4).max(-90.0),
                (min_lon - 1e-4).max(-180.0),
                (max_lat + 1e-4).min(90.0),
                (max_lon + 1e-4).min(180.0),
            );
        }
        Self::new(min_lat, min_lon, max_lat, max_lon)
    }

    /// South (minimum) latitude.
    pub fn min_latitude(&self) -> f64 {
        self.min_lat
    }

    /// West (minimum) longitude.
    pub fn min_longitude(&self) -> f64 {
        self.min_lon
    }

    /// North (maximum) latitude.
    pub fn max_latitude(&self) -> f64 {
        self.max_lat
    }

    /// East (maximum) longitude.
    pub fn max_longitude(&self) -> f64 {
        self.max_lon
    }

    /// South-west corner.
    pub fn south_west(&self) -> GeoPoint {
        GeoPoint::clamped(self.min_lat, self.min_lon)
    }

    /// North-east corner.
    pub fn north_east(&self) -> GeoPoint {
        GeoPoint::clamped(self.max_lat, self.max_lon)
    }

    /// Center of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::clamped((self.min_lat + self.max_lat) / 2.0, (self.min_lon + self.max_lon) / 2.0)
    }

    /// Returns `true` if `point` lies inside the box (inclusive of edges).
    pub fn contains(&self, point: GeoPoint) -> bool {
        (self.min_lat..=self.max_lat).contains(&point.latitude())
            && (self.min_lon..=self.max_lon).contains(&point.longitude())
    }

    /// Returns a new box expanded by `margin_fraction` of its extent in every direction.
    ///
    /// A fraction of `0.1` grows each side by 10 %. The result is clamped to
    /// the valid WGS-84 domain.
    pub fn expanded(&self, margin_fraction: f64) -> BoundingBox {
        let dlat = (self.max_lat - self.min_lat) * margin_fraction;
        let dlon = (self.max_lon - self.min_lon) * margin_fraction;
        BoundingBox {
            min_lat: (self.min_lat - dlat).max(-90.0),
            min_lon: (self.min_lon - dlon).max(-180.0),
            max_lat: (self.max_lat + dlat).min(90.0),
            max_lon: (self.max_lon + dlon).min(180.0),
        }
    }

    /// Latitude extent in degrees.
    pub fn latitude_span(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Longitude extent in degrees.
    pub fn longitude_span(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// Approximate area of the box in square kilometers.
    pub fn area_km2(&self) -> f64 {
        let height_m = crate::distance::haversine(
            GeoPoint::clamped(self.min_lat, self.min_lon),
            GeoPoint::clamped(self.max_lat, self.min_lon),
        )
        .as_f64();
        let width_m = crate::distance::haversine(
            GeoPoint::clamped(self.center().latitude(), self.min_lon),
            GeoPoint::clamped(self.center().latitude(), self.max_lon),
        )
        .as_f64();
        height_m * width_m / 1e6
    }

    /// Returns the intersection with `other`, or `None` if they do not overlap.
    pub fn intersection(&self, other: &BoundingBox) -> Option<BoundingBox> {
        let min_lat = self.min_lat.max(other.min_lat);
        let min_lon = self.min_lon.max(other.min_lon);
        let max_lat = self.max_lat.min(other.max_lat);
        let max_lon = self.max_lon.min(other.max_lon);
        if min_lat < max_lat && min_lon < max_lon {
            Some(BoundingBox { min_lat, min_lon, max_lat, max_lon })
        } else {
            None
        }
    }
}

impl fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.4}, {:.4}] x [{:.4}, {:.4}]",
            self.min_lat, self.max_lat, self.min_lon, self.max_lon
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf() -> BoundingBox {
        BoundingBox::new(37.70, -122.52, 37.83, -122.35).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(BoundingBox::new(37.0, -122.0, 38.0, -121.0).is_ok());
        assert_eq!(BoundingBox::new(38.0, -122.0, 37.0, -121.0), Err(GeoError::EmptyBounds));
        assert_eq!(BoundingBox::new(37.0, -121.0, 38.0, -122.0), Err(GeoError::EmptyBounds));
        assert!(BoundingBox::new(95.0, -122.0, 96.0, -121.0).is_err());
    }

    #[test]
    fn contains_and_corners() {
        let b = sf();
        assert!(b.contains(GeoPoint::new(37.7749, -122.4194).unwrap()));
        assert!(b.contains(b.south_west()));
        assert!(b.contains(b.north_east()));
        assert!(b.contains(b.center()));
        assert!(!b.contains(GeoPoint::new(37.0, -122.4).unwrap()));
    }

    #[test]
    fn enclosing_points() {
        let pts = vec![
            GeoPoint::new(37.75, -122.45).unwrap(),
            GeoPoint::new(37.80, -122.40).unwrap(),
            GeoPoint::new(37.77, -122.50).unwrap(),
        ];
        let b = BoundingBox::enclosing(pts.iter().copied()).unwrap();
        for p in pts {
            assert!(b.contains(p));
        }
        assert!(BoundingBox::enclosing(std::iter::empty()).is_err());
    }

    #[test]
    fn enclosing_single_point_pads() {
        let p = GeoPoint::new(37.7749, -122.4194).unwrap();
        let b = BoundingBox::enclosing([p]).unwrap();
        assert!(b.contains(p));
        assert!(b.latitude_span() > 0.0);
        assert!(b.longitude_span() > 0.0);
    }

    #[test]
    fn expanded_grows_box() {
        let b = sf();
        let e = b.expanded(0.1);
        assert!(e.latitude_span() > b.latitude_span());
        assert!(e.longitude_span() > b.longitude_span());
        assert!(e.contains(b.south_west()));
        assert!(e.contains(b.north_east()));
    }

    #[test]
    fn area_is_plausible_for_san_francisco() {
        // The SF box is roughly 14.5 km x 15 km ≈ 220 km².
        let a = sf().area_km2();
        assert!((150.0..300.0).contains(&a), "got {a}");
    }

    #[test]
    fn intersection_logic() {
        let a = BoundingBox::new(37.0, -122.0, 38.0, -121.0).unwrap();
        let b = BoundingBox::new(37.5, -121.5, 38.5, -120.5).unwrap();
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.min_latitude(), 37.5);
        assert_eq!(i.max_latitude(), 38.0);
        assert_eq!(i.min_longitude(), -121.5);
        assert_eq!(i.max_longitude(), -121.0);

        let c = BoundingBox::new(40.0, -100.0, 41.0, -99.0).unwrap();
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn display_mentions_both_dimensions() {
        let s = sf().to_string();
        assert!(s.contains("37.7000"));
        assert!(s.contains("-122.5200"));
    }
}
