//! Geographic and planar points.

use crate::error::GeoError;
use crate::units::Meters;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated WGS-84 geographic coordinate (latitude/longitude in decimal degrees).
///
/// Latitude is in `[-90, 90]`, longitude in `[-180, 180]`; both are finite.
/// This is the coordinate type carried by mobility records and produced by
/// LPPMs after projecting perturbed planar points back to geographic space.
///
/// # Examples
///
/// ```
/// use geopriv_geo::GeoPoint;
///
/// # fn main() -> Result<(), geopriv_geo::GeoError> {
/// let p = GeoPoint::new(37.7749, -122.4194)?;
/// assert_eq!(p.latitude(), 37.7749);
/// assert_eq!(p.longitude(), -122.4194);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct GeoPoint {
    lat: f64,
    lon: f64,
}

impl GeoPoint {
    /// Creates a geographic point from a latitude and longitude in decimal degrees.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLatitude`] or [`GeoError::InvalidLongitude`]
    /// if either coordinate is out of range or not finite.
    pub fn new(lat: f64, lon: f64) -> Result<Self, GeoError> {
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(GeoError::InvalidLatitude(lat));
        }
        if !lon.is_finite() || !(-180.0..=180.0).contains(&lon) {
            return Err(GeoError::InvalidLongitude(lon));
        }
        Ok(Self { lat, lon })
    }

    /// Creates a geographic point, clamping out-of-range values into the valid domain.
    ///
    /// Latitude is clamped to `[-90, 90]` and longitude wrapped into
    /// `[-180, 180]`. This is the constructor used after adding noise to a
    /// point: a perturbation near the antimeridian or poles must still yield
    /// a valid coordinate.
    ///
    /// # Panics
    ///
    /// Panics if either value is NaN (noise generation never produces NaN).
    pub fn clamped(lat: f64, lon: f64) -> Self {
        assert!(!lat.is_nan() && !lon.is_nan(), "coordinates must not be NaN");
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = lon;
        if !(-180.0..=180.0).contains(&lon) {
            // Wrap into (-180, 180].
            lon = (lon + 180.0).rem_euclid(360.0) - 180.0;
            if lon == -180.0 {
                lon = 180.0;
            }
        }
        Self { lat, lon }
    }

    /// Latitude in decimal degrees.
    pub fn latitude(&self) -> f64 {
        self.lat
    }

    /// Longitude in decimal degrees.
    pub fn longitude(&self) -> f64 {
        self.lon
    }

    /// Latitude in radians.
    pub fn latitude_radians(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    pub fn longitude_radians(&self) -> f64 {
        self.lon.to_radians()
    }

    /// Returns the (latitude, longitude) pair.
    pub fn into_parts(self) -> (f64, f64) {
        (self.lat, self.lon)
    }

    /// Reconstructs a point from coordinates previously extracted from a
    /// valid `GeoPoint` (e.g. stored in columnar `f64` buffers).
    ///
    /// This skips the range checks of [`GeoPoint::new`] in release builds —
    /// the caller asserts the values originate from an already-validated
    /// point. Debug builds still verify the invariant.
    pub fn from_stored(lat: f64, lon: f64) -> Self {
        debug_assert!(
            lat.is_finite() && (-90.0..=90.0).contains(&lat),
            "stored latitude {lat} out of range"
        );
        debug_assert!(
            lon.is_finite() && (-180.0..=180.0).contains(&lon),
            "stored longitude {lon} out of range"
        );
        Self { lat, lon }
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat, self.lon)
    }
}

impl TryFrom<(f64, f64)> for GeoPoint {
    type Error = GeoError;

    fn try_from((lat, lon): (f64, f64)) -> Result<Self, Self::Error> {
        GeoPoint::new(lat, lon)
    }
}

/// A point in a local planar (east/north) frame, in meters.
///
/// Produced by [`LocalProjection::project`](crate::LocalProjection::project);
/// all metric computations (noise addition, grid indexing, clustering) happen
/// in this frame.
///
/// # Examples
///
/// ```
/// use geopriv_geo::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b).as_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Point {
    x: f64,
    y: f64,
}

impl Point {
    /// Creates a planar point from east (`x`) and north (`y`) offsets in meters.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin of the local frame.
    pub const fn origin() -> Self {
        Self { x: 0.0, y: 0.0 }
    }

    /// East offset in meters.
    pub const fn x(&self) -> f64 {
        self.x
    }

    /// North offset in meters.
    pub const fn y(&self) -> f64 {
        self.y
    }

    /// Euclidean distance to another planar point.
    pub fn distance_to(&self, other: Point) -> Meters {
        Meters::new(((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt())
    }

    /// Squared euclidean distance (cheaper when only comparisons are needed).
    pub fn distance_squared_to(&self, other: Point) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }

    /// Translates the point by `(dx, dy)` meters.
    pub fn translated(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Translates the point by `radius` meters in direction `angle` (radians,
    /// measured counter-clockwise from east).
    pub fn translated_polar(&self, radius: Meters, angle: f64) -> Point {
        Point::new(self.x + radius.as_f64() * angle.cos(), self.y + radius.as_f64() * angle.sin())
    }

    /// Linear interpolation between `self` and `other`.
    ///
    /// `t = 0` returns `self`, `t = 1` returns `other`; values outside
    /// `[0, 1]` extrapolate.
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }

    /// Component-wise midpoint.
    pub fn midpoint(&self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Returns `true` if both coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2} m, {:.2} m)", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

/// Computes the centroid of a set of planar points.
///
/// Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// use geopriv_geo::point::{centroid, Point};
///
/// let pts = [Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(1.0, 3.0)];
/// let c = centroid(&pts).unwrap();
/// assert!((c.x() - 1.0).abs() < 1e-12);
/// assert!((c.y() - 1.0).abs() < 1e-12);
/// ```
pub fn centroid(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let n = points.len() as f64;
    let (sx, sy) = points.iter().fold((0.0, 0.0), |(sx, sy), p| (sx + p.x(), sy + p.y()));
    Some(Point::new(sx / n, sy / n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_point_validation() {
        assert!(GeoPoint::new(37.7, -122.4).is_ok());
        assert!(GeoPoint::new(90.0, 180.0).is_ok());
        assert!(GeoPoint::new(-90.0, -180.0).is_ok());
        assert_eq!(GeoPoint::new(90.1, 0.0), Err(GeoError::InvalidLatitude(90.1)));
        assert_eq!(GeoPoint::new(0.0, 180.5), Err(GeoError::InvalidLongitude(180.5)));
        assert!(GeoPoint::new(f64::NAN, 0.0).is_err());
        assert!(GeoPoint::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_wraps_longitude_and_clamps_latitude() {
        let p = GeoPoint::clamped(95.0, 190.0);
        assert_eq!(p.latitude(), 90.0);
        assert!((p.longitude() - (-170.0)).abs() < 1e-9);

        let q = GeoPoint::clamped(-100.0, -190.0);
        assert_eq!(q.latitude(), -90.0);
        assert!((q.longitude() - 170.0).abs() < 1e-9);

        // Already valid coordinates are untouched.
        let r = GeoPoint::clamped(12.5, -45.0);
        assert_eq!(r, GeoPoint::new(12.5, -45.0).unwrap());
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn clamped_rejects_nan() {
        let _ = GeoPoint::clamped(f64::NAN, 0.0);
    }

    #[test]
    fn try_from_tuple() {
        let p = GeoPoint::try_from((37.5, -122.0)).unwrap();
        assert_eq!(p.into_parts(), (37.5, -122.0));
        assert!(GeoPoint::try_from((120.0, 0.0)).is_err());
    }

    #[test]
    fn planar_distance() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance_to(b).as_f64() - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_squared_to(b), 25.0);
        assert_eq!(a.distance_to(a).as_f64(), 0.0);
    }

    #[test]
    fn translations() {
        let p = Point::origin().translated(3.0, -4.0);
        assert_eq!(p, Point::new(3.0, -4.0));

        let q = Point::origin().translated_polar(Meters::new(10.0), std::f64::consts::FRAC_PI_2);
        assert!(q.x().abs() < 1e-9);
        assert!((q.y() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn lerp_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(5.0, 10.0));
    }

    #[test]
    fn centroid_of_points() {
        assert!(centroid(&[]).is_none());
        let c = centroid(&[Point::new(2.0, 2.0)]).unwrap();
        assert_eq!(c, Point::new(2.0, 2.0));
    }

    #[test]
    fn display_formats() {
        let g = GeoPoint::new(37.0, -122.0).unwrap();
        assert_eq!(g.to_string(), "(37.000000, -122.000000)");
        let p = Point::new(1.0, 2.0);
        assert_eq!(p.to_string(), "(1.00 m, 2.00 m)");
    }
}
