//! # geopriv-geo
//!
//! Geospatial primitives used throughout the `geopriv` workspace.
//!
//! Everything in the reproduction of *Toward an Easy Configuration of
//! Location Privacy Protection Mechanisms* (Cerf et al., Middleware 2016)
//! manipulates geographic coordinates: the mobility generators emit
//! [`GeoPoint`]s, the LPPMs perturb them, and the privacy/utility metrics
//! compare them on metric grids. This crate provides the shared substrate:
//!
//! * [`GeoPoint`] — a validated WGS-84 latitude/longitude pair.
//! * [`Point`] — a point in a local planar frame, in meters.
//! * [`LocalProjection`] — an equirectangular projection centered on a
//!   reference point, accurate at city scale (the scale of the paper's
//!   San Francisco evaluation).
//! * [`distance`] — haversine and planar distances.
//! * [`BoundingBox`] — geographic extents.
//! * [`Grid`] / [`CellSet`] — uniform "city block" grids and coverage sets,
//!   the substrate of the paper's area-coverage utility metric.
//! * [`QuadTree`] — a spatial index used for POI matching.
//!
//! ## Example
//!
//! ```
//! use geopriv_geo::{GeoPoint, LocalProjection, distance};
//!
//! # fn main() -> Result<(), geopriv_geo::GeoError> {
//! let ferry_building = GeoPoint::new(37.7955, -122.3937)?;
//! let city_hall = GeoPoint::new(37.7793, -122.4193)?;
//!
//! // Roughly 2.9 km apart.
//! let d = distance::haversine(ferry_building, city_hall);
//! assert!((2_500.0..3_500.0).contains(&d.as_f64()));
//!
//! // Project into a local planar frame to work in meters.
//! let proj = LocalProjection::centered_on(ferry_building);
//! let p = proj.project(city_hall);
//! assert!((p.distance_to(proj.project(ferry_building)).as_f64() - d.as_f64()).abs() < 20.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbox;
pub mod distance;
pub mod error;
pub mod grid;
pub mod point;
pub mod projection;
pub mod quadtree;
pub mod units;

pub use bbox::BoundingBox;
pub use error::GeoError;
pub use grid::{CellId, CellSet, Grid};
pub use point::{GeoPoint, Point};
pub use projection::LocalProjection;
pub use quadtree::QuadTree;
pub use units::{Degrees, Meters, Seconds};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::bbox::BoundingBox;
    pub use crate::distance;
    pub use crate::error::GeoError;
    pub use crate::grid::{CellId, CellSet, Grid};
    pub use crate::point::{GeoPoint, Point};
    pub use crate::projection::LocalProjection;
    pub use crate::quadtree::QuadTree;
    pub use crate::units::{Degrees, Meters, Seconds};
}
