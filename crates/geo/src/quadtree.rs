//! A point quadtree over the local planar frame.
//!
//! Used for spatial matching problems (e.g. "is any protected POI within
//! `r` meters of this actual POI?") where the quadratic scan over all pairs
//! would dominate experiment time on larger datasets.

use crate::point::Point;
use crate::units::Meters;

const MAX_POINTS_PER_LEAF: usize = 16;
const MAX_DEPTH: usize = 24;

/// Axis-aligned rectangle in the planar frame (meters).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Rect {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
}

impl Rect {
    fn intersects_circle(&self, center: Point, radius: f64) -> bool {
        let nearest_x = center.x().clamp(self.min_x, self.max_x);
        let nearest_y = center.y().clamp(self.min_y, self.max_y);
        let dx = center.x() - nearest_x;
        let dy = center.y() - nearest_y;
        dx * dx + dy * dy <= radius * radius
    }

    fn quadrant(&self, i: usize) -> Rect {
        let mid_x = (self.min_x + self.max_x) / 2.0;
        let mid_y = (self.min_y + self.max_y) / 2.0;
        match i {
            0 => Rect { min_x: self.min_x, min_y: self.min_y, max_x: mid_x, max_y: mid_y },
            1 => Rect { min_x: mid_x, min_y: self.min_y, max_x: self.max_x, max_y: mid_y },
            2 => Rect { min_x: self.min_x, min_y: mid_y, max_x: mid_x, max_y: self.max_y },
            _ => Rect { min_x: mid_x, min_y: mid_y, max_x: self.max_x, max_y: self.max_y },
        }
    }

    fn quadrant_of(&self, p: Point) -> usize {
        let mid_x = (self.min_x + self.max_x) / 2.0;
        let mid_y = (self.min_y + self.max_y) / 2.0;
        match (p.x() >= mid_x, p.y() >= mid_y) {
            (false, false) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (true, true) => 3,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { points: Vec<(Point, usize)> },
    Internal { children: Box<[Node; 4]>, bounds: [Rect; 4] },
}

/// A point quadtree indexing planar points with associated payload indices.
///
/// Construction is `O(n log n)`; circular range queries and nearest-neighbour
/// queries are `O(log n)` on non-degenerate data.
///
/// # Examples
///
/// ```
/// use geopriv_geo::{Point, QuadTree, Meters};
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0), Point::new(0.0, 300.0)];
/// let tree = QuadTree::build(&pts);
///
/// // Which points lie within 150 m of the origin?
/// let near: Vec<usize> = tree.within_radius(Point::new(0.0, 0.0), Meters::new(150.0));
/// assert_eq!(near.len(), 2);
///
/// // Closest point to (90, 10) is index 1.
/// assert_eq!(tree.nearest(Point::new(90.0, 10.0)).unwrap().0, 1);
/// ```
#[derive(Debug, Clone)]
pub struct QuadTree {
    root: Node,
    bounds: Rect,
    len: usize,
}

impl QuadTree {
    /// Builds a quadtree over the given points.
    ///
    /// The payload of each point is its index in the input slice. Points with
    /// non-finite coordinates are skipped.
    pub fn build(points: &[Point]) -> Self {
        let finite: Vec<(Point, usize)> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_finite())
            .map(|(i, &p)| (p, i))
            .collect();

        let bounds = if finite.is_empty() {
            Rect { min_x: 0.0, min_y: 0.0, max_x: 1.0, max_y: 1.0 }
        } else {
            let mut r = Rect {
                min_x: f64::INFINITY,
                min_y: f64::INFINITY,
                max_x: f64::NEG_INFINITY,
                max_y: f64::NEG_INFINITY,
            };
            for (p, _) in &finite {
                r.min_x = r.min_x.min(p.x());
                r.min_y = r.min_y.min(p.y());
                r.max_x = r.max_x.max(p.x());
                r.max_y = r.max_y.max(p.y());
            }
            // Avoid zero-extent rectangles.
            if r.max_x - r.min_x < 1e-9 {
                r.max_x += 1.0;
            }
            if r.max_y - r.min_y < 1e-9 {
                r.max_y += 1.0;
            }
            r
        };

        let len = finite.len();
        let mut root = Node::Leaf { points: Vec::new() };
        for (p, idx) in finite {
            Self::insert_into(&mut root, bounds, p, idx, 0);
        }
        Self { root, bounds, len }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn insert_into(node: &mut Node, bounds: Rect, p: Point, idx: usize, depth: usize) {
        match node {
            Node::Leaf { points } => {
                points.push((p, idx));
                if points.len() > MAX_POINTS_PER_LEAF && depth < MAX_DEPTH {
                    let quadrant_bounds = [
                        bounds.quadrant(0),
                        bounds.quadrant(1),
                        bounds.quadrant(2),
                        bounds.quadrant(3),
                    ];
                    let drained = std::mem::take(points);
                    let mut children = Box::new([
                        Node::Leaf { points: Vec::new() },
                        Node::Leaf { points: Vec::new() },
                        Node::Leaf { points: Vec::new() },
                        Node::Leaf { points: Vec::new() },
                    ]);
                    for (q, i) in drained {
                        let k = bounds.quadrant_of(q);
                        Self::insert_into(&mut children[k], quadrant_bounds[k], q, i, depth + 1);
                    }
                    *node = Node::Internal { children, bounds: quadrant_bounds };
                }
            }
            Node::Internal { children, bounds: quadrant_bounds } => {
                let k = bounds.quadrant_of(p);
                Self::insert_into(&mut children[k], quadrant_bounds[k], p, idx, depth + 1);
            }
        }
    }

    /// Returns the payload indices of all points within `radius` of `center`.
    ///
    /// The result order is unspecified.
    pub fn within_radius(&self, center: Point, radius: Meters) -> Vec<usize> {
        let mut out = Vec::new();
        if radius.as_f64() < 0.0 {
            return out;
        }
        Self::range_query(&self.root, self.bounds, center, radius.as_f64(), &mut out);
        out
    }

    /// Returns `true` if any indexed point lies within `radius` of `center`.
    ///
    /// Faster than [`QuadTree::within_radius`] when only existence matters
    /// (the common case in POI-retrieval matching).
    pub fn any_within_radius(&self, center: Point, radius: Meters) -> bool {
        if radius.as_f64() < 0.0 {
            return false;
        }
        Self::any_query(&self.root, self.bounds, center, radius.as_f64())
    }

    fn range_query(node: &Node, bounds: Rect, center: Point, radius: f64, out: &mut Vec<usize>) {
        if !bounds.intersects_circle(center, radius) {
            return;
        }
        match node {
            Node::Leaf { points } => {
                for (p, idx) in points {
                    if p.distance_squared_to(center) <= radius * radius {
                        out.push(*idx);
                    }
                }
            }
            Node::Internal { children, bounds: qb } => {
                for i in 0..4 {
                    Self::range_query(&children[i], qb[i], center, radius, out);
                }
            }
        }
    }

    fn any_query(node: &Node, bounds: Rect, center: Point, radius: f64) -> bool {
        if !bounds.intersects_circle(center, radius) {
            return false;
        }
        match node {
            Node::Leaf { points } => {
                points.iter().any(|(p, _)| p.distance_squared_to(center) <= radius * radius)
            }
            Node::Internal { children, bounds: qb } => {
                (0..4).any(|i| Self::any_query(&children[i], qb[i], center, radius))
            }
        }
    }

    /// Returns the payload index and distance of the point nearest to `target`,
    /// or `None` if the tree is empty.
    pub fn nearest(&self, target: Point) -> Option<(usize, Meters)> {
        let mut best: Option<(usize, f64)> = None;
        Self::nearest_query(&self.root, self.bounds, target, &mut best);
        best.map(|(idx, d2)| (idx, Meters::new(d2.sqrt())))
    }

    fn nearest_query(node: &Node, bounds: Rect, target: Point, best: &mut Option<(usize, f64)>) {
        if let Some((_, best_d2)) = best {
            if !bounds.intersects_circle(target, best_d2.sqrt()) {
                return;
            }
        }
        match node {
            Node::Leaf { points } => {
                for (p, idx) in points {
                    let d2 = p.distance_squared_to(target);
                    if best.map_or(true, |(_, b)| d2 < b) {
                        *best = Some((*idx, d2));
                    }
                }
            }
            Node::Internal { children, bounds: qb } => {
                // Visit the quadrant containing the target first to tighten the bound.
                let first = bounds.quadrant_of(target);
                Self::nearest_query(&children[first], qb[first], target, best);
                for i in 0..4 {
                    if i != first {
                        Self::nearest_query(&children[i], qb[i], target, best);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let tree = QuadTree::build(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert!(tree.nearest(Point::origin()).is_none());
        assert!(tree.within_radius(Point::origin(), Meters::new(100.0)).is_empty());
        assert!(!tree.any_within_radius(Point::origin(), Meters::new(100.0)));
    }

    #[test]
    fn single_point() {
        let tree = QuadTree::build(&[Point::new(5.0, 5.0)]);
        assert_eq!(tree.len(), 1);
        let (idx, d) = tree.nearest(Point::new(8.0, 9.0)).unwrap();
        assert_eq!(idx, 0);
        assert!((d.as_f64() - 5.0).abs() < 1e-9);
        assert!(tree.any_within_radius(Point::new(5.0, 5.0), Meters::new(0.1)));
        assert!(!tree.any_within_radius(Point::new(100.0, 100.0), Meters::new(1.0)));
    }

    #[test]
    fn range_query_matches_brute_force() {
        // Deterministic pseudo-random layout without pulling in rand here.
        let points: Vec<Point> = (0..500)
            .map(|i| {
                let x = ((i * 2_654_435_761_u64) % 10_000) as f64 / 10.0;
                let y = ((i * 40_503_u64 + 7) % 10_000) as f64 / 10.0;
                Point::new(x, y)
            })
            .collect();
        let tree = QuadTree::build(&points);
        assert_eq!(tree.len(), points.len());

        for (center, radius) in [
            (Point::new(500.0, 500.0), 120.0),
            (Point::new(0.0, 0.0), 300.0),
            (Point::new(999.0, 10.0), 50.0),
        ] {
            let mut expected: Vec<usize> = points
                .iter()
                .enumerate()
                .filter(|(_, p)| p.distance_to(center).as_f64() <= radius)
                .map(|(i, _)| i)
                .collect();
            let mut got = tree.within_radius(center, Meters::new(radius));
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected);
            assert_eq!(tree.any_within_radius(center, Meters::new(radius)), !expected.is_empty());
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let points: Vec<Point> = (0..300)
            .map(|i| {
                let x = ((i * 48_271_u64) % 7_919) as f64;
                let y = ((i * 16_807_u64 + 13) % 7_919) as f64;
                Point::new(x, y)
            })
            .collect();
        let tree = QuadTree::build(&points);
        for target in
            [Point::new(100.0, 100.0), Point::new(4000.0, 7000.0), Point::new(-50.0, 9000.0)]
        {
            let (best_idx, best_d) = tree.nearest(target).unwrap();
            let brute =
                points.iter().map(|p| p.distance_to(target).as_f64()).fold(f64::INFINITY, f64::min);
            assert!((best_d.as_f64() - brute).abs() < 1e-9);
            assert!((points[best_idx].distance_to(target).as_f64() - brute).abs() < 1e-9);
        }
    }

    #[test]
    fn duplicate_and_colinear_points_are_handled() {
        // All points identical: forces the depth cutoff rather than an infinite split.
        let points = vec![Point::new(1.0, 1.0); 100];
        let tree = QuadTree::build(&points);
        assert_eq!(tree.len(), 100);
        assert_eq!(tree.within_radius(Point::new(1.0, 1.0), Meters::new(0.5)).len(), 100);

        // Colinear points (zero height).
        let line: Vec<Point> = (0..100).map(|i| Point::new(i as f64, 0.0)).collect();
        let tree = QuadTree::build(&line);
        assert_eq!(tree.within_radius(Point::new(50.0, 0.0), Meters::new(2.5)).len(), 5);
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let points = vec![Point::new(0.0, 0.0), Point::new(f64::NAN, 1.0), Point::new(2.0, 2.0)];
        let tree = QuadTree::build(&points);
        assert_eq!(tree.len(), 2);
        // Payload indices refer to the original slice.
        let mut idx = tree.within_radius(Point::new(1.0, 1.0), Meters::new(5.0));
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 2]);
    }

    #[test]
    fn negative_radius_returns_nothing() {
        let tree = QuadTree::build(&[Point::origin()]);
        assert!(tree.within_radius(Point::origin(), Meters::new(-1.0)).is_empty());
        assert!(!tree.any_within_radius(Point::origin(), Meters::new(-1.0)));
    }
}
