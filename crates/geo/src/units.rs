//! Strongly typed scalar units.
//!
//! The paper mixes several physical quantities (meters for noise amplitudes
//! and cell sizes, seconds for dwell times, the ε parameter in m⁻¹).
//! Newtypes keep them apart at compile time ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use crate::error::GeoError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! scalar_unit {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw `f64` value.
            ///
            /// The value is not validated here; use the constructors of the
            /// consuming types (grids, LPPMs…) for validated entry points.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the wrapped value.
            pub const fn as_f64(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` if the wrapped value is finite.
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of two values.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two values.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Validates that the value is finite and strictly positive.
            ///
            /// # Errors
            ///
            /// Returns [`GeoError::InvalidLength`] otherwise.
            pub fn expect_positive(self, name: &'static str) -> Result<Self, GeoError> {
                if self.0.is_finite() && self.0 > 0.0 {
                    Ok(self)
                } else {
                    Err(GeoError::InvalidLength { name, value: self.0 })
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, $suffix)
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

scalar_unit!(
    /// A length in meters.
    ///
    /// Used for distances, noise amplitudes, grid cell sizes and POI
    /// clustering diameters.
    Meters,
    " m"
);

scalar_unit!(
    /// A duration in seconds.
    ///
    /// Used for timestamps, sampling periods and POI dwell times.
    Seconds,
    " s"
);

scalar_unit!(
    /// An angle in decimal degrees.
    Degrees,
    "°"
);

impl Meters {
    /// Converts to kilometers.
    pub fn to_kilometers(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Creates a length from kilometers.
    pub fn from_kilometers(km: f64) -> Self {
        Self(km * 1_000.0)
    }
}

impl Seconds {
    /// Converts to whole minutes (fractional).
    pub fn to_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// Creates a duration from minutes.
    pub fn from_minutes(minutes: f64) -> Self {
        Self(minutes * 60.0)
    }

    /// Creates a duration from hours.
    pub fn from_hours(hours: f64) -> Self {
        Self(hours * 3_600.0)
    }

    /// Converts to hours (fractional).
    pub fn to_hours(self) -> f64 {
        self.0 / 3_600.0
    }
}

impl Degrees {
    /// Converts to radians.
    pub fn to_radians(self) -> f64 {
        self.0.to_radians()
    }

    /// Creates an angle from radians.
    pub fn from_radians(radians: f64) -> Self {
        Self(radians.to_degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Meters::new(100.0);
        let b = Meters::new(50.0);
        assert_eq!((a + b).as_f64(), 150.0);
        assert_eq!((a - b).as_f64(), 50.0);
        assert_eq!((a * 2.0).as_f64(), 200.0);
        assert_eq!((a / 2.0).as_f64(), 50.0);
        assert_eq!(a / b, 2.0);
        assert_eq!((-a).as_f64(), -100.0);
    }

    #[test]
    fn sums_and_assign_ops() {
        let total: Meters =
            vec![Meters::new(1.0), Meters::new(2.0), Meters::new(3.0)].into_iter().sum();
        assert_eq!(total.as_f64(), 6.0);

        let mut m = Meters::new(1.0);
        m += Meters::new(2.0);
        m -= Meters::new(0.5);
        assert!((m.as_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn conversions() {
        assert_eq!(Meters::from_kilometers(1.5).as_f64(), 1_500.0);
        assert_eq!(Meters::new(2_000.0).to_kilometers(), 2.0);
        assert_eq!(Seconds::from_minutes(2.0).as_f64(), 120.0);
        assert_eq!(Seconds::from_hours(1.0).as_f64(), 3_600.0);
        assert!((Seconds::new(90.0).to_minutes() - 1.5).abs() < 1e-12);
        assert!((Degrees::new(180.0).to_radians() - std::f64::consts::PI).abs() < 1e-12);
        assert!((Degrees::from_radians(std::f64::consts::PI).as_f64() - 180.0).abs() < 1e-12);
    }

    #[test]
    fn expect_positive_validates() {
        assert!(Meters::new(1.0).expect_positive("len").is_ok());
        assert!(Meters::new(0.0).expect_positive("len").is_err());
        assert!(Meters::new(-2.0).expect_positive("len").is_err());
        assert!(Meters::new(f64::NAN).expect_positive("len").is_err());
        assert!(Meters::new(f64::INFINITY).expect_positive("len").is_err());
    }

    #[test]
    fn min_max_abs() {
        let a = Meters::new(-3.0);
        let b = Meters::new(2.0);
        assert_eq!(a.abs().as_f64(), 3.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_has_suffix() {
        assert_eq!(Meters::new(5.0).to_string(), "5 m");
        assert_eq!(Seconds::new(5.0).to_string(), "5 s");
        assert_eq!(Degrees::new(5.0).to_string(), "5°");
    }

    #[test]
    fn from_into_roundtrip() {
        let m: Meters = 42.0.into();
        let f: f64 = m.into();
        assert_eq!(f, 42.0);
    }
}
