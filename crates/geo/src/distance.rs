//! Distance computations on the sphere and in the plane.

use crate::point::{GeoPoint, Point};
use crate::units::Meters;

/// Mean Earth radius in meters (IUGG value), used by the spherical formulas.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Great-circle distance between two geographic points using the haversine formula.
///
/// Accurate to ~0.5 % everywhere on Earth, far more than needed at the city
/// scale of the paper's evaluation.
///
/// # Examples
///
/// ```
/// use geopriv_geo::{distance, GeoPoint};
///
/// # fn main() -> Result<(), geopriv_geo::GeoError> {
/// let sf = GeoPoint::new(37.7749, -122.4194)?;
/// let oakland = GeoPoint::new(37.8044, -122.2712)?;
/// let d = distance::haversine(sf, oakland);
/// assert!((13_000.0..14_000.0).contains(&d.as_f64()));
/// # Ok(())
/// # }
/// ```
pub fn haversine(a: GeoPoint, b: GeoPoint) -> Meters {
    let phi1 = a.latitude_radians();
    let phi2 = b.latitude_radians();
    let dphi = (b.latitude() - a.latitude()).to_radians();
    let dlambda = (b.longitude() - a.longitude()).to_radians();

    let h = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    let c = 2.0 * h.sqrt().min(1.0).asin();
    Meters::new(EARTH_RADIUS_M * c)
}

/// Fast equirectangular approximation of the distance between two geographic points.
///
/// Within a city (a few tens of kilometers) the error relative to
/// [`haversine`] is negligible (< 0.1 %), and the computation avoids the
/// trigonometric inverse. Used in hot loops such as POI matching.
pub fn equirectangular(a: GeoPoint, b: GeoPoint) -> Meters {
    let mean_lat = ((a.latitude() + b.latitude()) / 2.0).to_radians();
    let dx = (b.longitude() - a.longitude()).to_radians() * mean_lat.cos();
    let dy = (b.latitude() - a.latitude()).to_radians();
    Meters::new(EARTH_RADIUS_M * (dx * dx + dy * dy).sqrt())
}

/// Euclidean distance between two planar points.
///
/// Equivalent to [`Point::distance_to`], provided as a free function for
/// symmetry with the spherical distances.
pub fn euclidean(a: Point, b: Point) -> Meters {
    a.distance_to(b)
}

/// Length of a polyline given as a sequence of geographic points.
///
/// Returns zero for fewer than two points.
pub fn path_length(points: &[GeoPoint]) -> Meters {
    points.windows(2).map(|w| haversine(w[0], w[1])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gp(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn haversine_known_values() {
        // Paris -> London is about 344 km.
        let paris = gp(48.8566, 2.3522);
        let london = gp(51.5074, -0.1278);
        let d = haversine(paris, london).as_f64();
        assert!((330_000.0..355_000.0).contains(&d), "got {d}");

        // Same point -> zero.
        assert_eq!(haversine(paris, paris).as_f64(), 0.0);
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = gp(37.7749, -122.4194);
        let b = gp(37.8044, -122.2712);
        assert!((haversine(a, b).as_f64() - haversine(b, a).as_f64()).abs() < 1e-9);
    }

    #[test]
    fn one_degree_latitude_is_about_111km() {
        let a = gp(0.0, 0.0);
        let b = gp(1.0, 0.0);
        let d = haversine(a, b).as_f64();
        assert!((110_000.0..112_500.0).contains(&d), "got {d}");
    }

    #[test]
    fn equirectangular_close_to_haversine_at_city_scale() {
        let a = gp(37.7749, -122.4194);
        let b = gp(37.8049, -122.3894); // a few km away
        let h = haversine(a, b).as_f64();
        let e = equirectangular(a, b).as_f64();
        assert!((h - e).abs() / h < 1e-3, "haversine={h} equirect={e}");
    }

    #[test]
    fn euclidean_matches_point_method() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(6.0, 8.0);
        assert_eq!(euclidean(a, b).as_f64(), 10.0);
    }

    #[test]
    fn path_length_sums_segments() {
        let pts = [gp(0.0, 0.0), gp(0.0, 0.01), gp(0.0, 0.02)];
        let total = path_length(&pts).as_f64();
        let seg = haversine(pts[0], pts[1]).as_f64();
        assert!((total - 2.0 * seg).abs() < 1e-6);
        assert_eq!(path_length(&pts[..1]).as_f64(), 0.0);
        assert_eq!(path_length(&[]).as_f64(), 0.0);
    }

    #[test]
    fn antipodal_points_do_not_produce_nan() {
        let a = gp(0.0, 0.0);
        let b = gp(0.0, 180.0);
        let d = haversine(a, b).as_f64();
        assert!(d.is_finite());
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_M).abs() < 1_000.0);
    }
}
