//! Loopback integration tests: a real [`GeoPrivServer`] on an ephemeral
//! port, driven through [`HttpClient`] over TCP — the same path CI smokes.
//!
//! The centerpiece is the online/offline equivalence test: the protected
//! coordinates coming back **through the HTTP wire** are bit-identical to
//! the offline columnar protection at the same configuration point and
//! derived seed.

use geopriv_core::json::JsonValue;
use geopriv_core::{
    GeoIndistinguishabilityFactory, LppmFactory, MetricId, PerUserRecommendation, Recommendation,
    UserRecommendation, UserVerdict,
};
use geopriv_geo::{GeoPoint, Seconds};
use geopriv_lppm::ConfigPoint;
use geopriv_mobility::{DatasetBuilder, Record, TraceView, UserId};
use geopriv_serve::{derive_user_seed, AssignmentRegistry, GeoPrivServer, HttpClient, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const MASTER_SEED: u64 = 20161212;

fn point(epsilon: f64) -> ConfigPoint {
    ConfigPoint::from_named(vec![("epsilon".to_string(), epsilon)])
}

fn recommendation() -> PerUserRecommendation {
    PerUserRecommendation {
        dataset: Recommendation {
            point: point(0.01),
            feasible: vec![("epsilon".to_string(), (0.003, 0.06))],
            predictions: vec![(MetricId::new("poi-retrieval"), 0.1)],
        },
        users: vec![
            UserRecommendation {
                user: UserId::new(1),
                verdict: UserVerdict::Feasible,
                point: point(0.02),
                predictions: vec![(MetricId::new("poi-retrieval"), 0.08)],
            },
            UserRecommendation {
                user: UserId::new(2),
                verdict: UserVerdict::Unmodeled { reason: "too few records".into() },
                point: point(0.01),
                predictions: vec![],
            },
        ],
    }
}

fn start_server(config: &ServeConfig) -> GeoPrivServer {
    let registry = AssignmentRegistry::load(
        Box::new(GeoIndistinguishabilityFactory::new()),
        &recommendation(),
        MASTER_SEED,
    )
    .unwrap();
    GeoPrivServer::start(registry, config).unwrap()
}

fn protect_body(user: u64, i: u32) -> String {
    format!(
        "{{\"user\": {user}, \"t\": {}, \"lat\": {}, \"lon\": -1.6778}}",
        f64::from(i) * 30.0,
        48.1173 + f64::from(i) * 1e-4
    )
}

#[test]
fn smoke_all_routes_respond_and_metrics_are_well_formed() {
    let server = start_server(&ServeConfig::default());
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = client.post("/protect", &protect_body(1, 0)).unwrap();
    assert_eq!(status, 200, "{body}");
    let value = JsonValue::parse(&body).unwrap();
    assert_eq!(value.get("user").unwrap().as_u64(), Some(1));
    assert_eq!(value.get("released").unwrap().as_u64(), Some(1));

    let (status, body) = client.get("/assignment/1").unwrap();
    assert_eq!(status, 200);
    let value = JsonValue::parse(&body).unwrap();
    assert_eq!(value.get("source").unwrap().as_str(), Some("own"));

    // Unknown users get the documented fallback, not a 404 and not a panic.
    let (status, body) = client.get("/assignment/424242").unwrap();
    assert_eq!(status, 200);
    let value = JsonValue::parse(&body).unwrap();
    assert_eq!(value.get("source").unwrap().as_str(), Some("dataset-fallback"));
    assert_eq!(value.get("point").unwrap().get("epsilon").unwrap().as_f64(), Some(0.01));

    // Error paths: malformed JSON, bad coordinates, unknown routes.
    let (status, _) = client.post("/protect", "not json").unwrap();
    assert_eq!(status, 400);
    let (status, _) =
        client.post("/protect", "{\"user\": 1, \"t\": 0, \"lat\": 95, \"lon\": 0}").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.get("/nope").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.get("/assignment/not-a-number").unwrap();
    assert_eq!(status, 400);

    // The metrics exposition is well-formed and counted every request above.
    let (status, text) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(text.contains("geopriv_requests_total{route=\"/protect\",status=\"200\"} 1"));
    assert!(text.contains("geopriv_requests_total{route=\"/protect\",status=\"400\"} 2"));
    assert!(text.contains("geopriv_requests_total{route=\"/healthz\",status=\"200\"} 1"));
    assert!(text.contains("geopriv_requests_total{route=\"/assignment\",status=\"200\"} 2"));
    assert!(text.contains("geopriv_requests_total{route=\"other\",status=\"404\"} 1"));
    assert!(text.contains("geopriv_request_seconds_bucket{le=\"+Inf\"}"));
    assert!(text.contains("geopriv_request_seconds_count"));
    // Histogram totals agree with the counter totals (the /metrics request
    // itself is recorded after rendering, so it is not yet included).
    let count_line = text.lines().find(|l| l.starts_with("geopriv_request_seconds_count")).unwrap();
    let histogram_total: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
    let counter_total: u64 = text
        .lines()
        .filter(|l| l.starts_with("geopriv_requests_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(histogram_total, counter_total);

    server.shutdown();
}

#[test]
fn online_stream_is_bit_identical_to_offline_protection_through_the_wire() {
    let server = start_server(&ServeConfig::default());
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    // Drive user 1's stream through the HTTP path and collect the released
    // coordinates exactly as a client would see them.
    const RECORDS: u32 = 25;
    let mut online = Vec::new();
    for i in 0..RECORDS {
        let (status, body) = client.post("/protect", &protect_body(1, i)).unwrap();
        assert_eq!(status, 200, "{body}");
        let value = JsonValue::parse(&body).unwrap();
        assert_eq!(value.get("released").unwrap().as_u64(), Some(u64::from(i) + 1));
        online.push(Record::new(
            Seconds::new(value.get("t").unwrap().as_f64().unwrap()),
            GeoPoint::new(
                value.get("lat").unwrap().as_f64().unwrap(),
                value.get("lon").unwrap().as_f64().unwrap(),
            )
            .unwrap(),
        ));
    }
    server.shutdown();

    // Offline reference: the same trace, protected columnarly at user 1's
    // recommended point under the derived session seed.
    let records: Vec<Record> = (0..RECORDS)
        .map(|i| {
            Record::new(
                Seconds::new(f64::from(i) * 30.0),
                GeoPoint::new(48.1173 + f64::from(i) * 1e-4, -1.6778).unwrap(),
            )
        })
        .collect();
    let timestamps: Vec<f64> = records.iter().map(|r| r.timestamp().as_f64()).collect();
    let latitudes: Vec<f64> = records.iter().map(|r| r.location().latitude()).collect();
    let longitudes: Vec<f64> = records.iter().map(|r| r.location().longitude()).collect();
    let view = TraceView::from_columns(UserId::new(1), &timestamps, &latitudes, &longitudes);
    let lppm = GeoIndistinguishabilityFactory::new().instantiate_at(&point(0.02)).unwrap();
    let mut out = DatasetBuilder::with_capacity(1, records.len());
    let mut rng = StdRng::seed_from_u64(derive_user_seed(MASTER_SEED, UserId::new(1)));
    lppm.protect_view(view, &mut out, &mut rng).unwrap();
    let offline = out.finish().unwrap();
    let trace = offline.trace_at(0);

    // Bit-identical through JSON: shortest round-trip floats re-parse to
    // the exact bits the offline pipeline produced.
    for (i, record) in online.iter().enumerate() {
        let reference = trace.record(i);
        assert_eq!(
            record.location().latitude().to_bits(),
            reference.location().latitude().to_bits(),
            "latitude of record {i} diverged online vs offline"
        );
        assert_eq!(
            record.location().longitude().to_bits(),
            reference.location().longitude().to_bits(),
            "longitude of record {i} diverged online vs offline"
        );
    }
}

#[test]
fn rate_limited_users_get_429_and_metrics_count_them() {
    let config = ServeConfig {
        rate_limit: Some((3, 0.0)), // 3-request burst, no refill.
        ..ServeConfig::default()
    };
    let server = start_server(&config);
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    for i in 0..3 {
        let (status, _) = client.post("/protect", &protect_body(5, i)).unwrap();
        assert_eq!(status, 200);
    }
    let (status, body) = client.post("/protect", &protect_body(5, 3)).unwrap();
    assert_eq!(status, 429);
    assert!(body.contains("rate limit"));
    // Another user is unaffected, and unkeyed routes never limit.
    let (status, _) = client.post("/protect", &protect_body(6, 0)).unwrap();
    assert_eq!(status, 200);
    let (status, text) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(text.contains("geopriv_requests_total{route=\"/protect\",status=\"429\"} 1"));
    server.shutdown();
}

#[test]
fn metrics_exposition_is_byte_deterministic() {
    // The same traffic against two fresh server instances must yield the
    // same counter section byte for byte — no hash-seed or insertion-order
    // dependence. (Histogram bucket lines depend on measured latency, so
    // only the counter lines are compared across instances.)
    let run = || {
        let server = start_server(&ServeConfig::default());
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        // Routes hit in an order that differs from their sorted render order.
        for i in 0..3 {
            client.post("/protect", &protect_body(1, i)).unwrap();
        }
        client.get("/healthz").unwrap();
        client.get("/assignment/9").unwrap();
        client.post("/protect", "not json").unwrap();
        let (status, text) = client.get("/metrics").unwrap();
        assert_eq!(status, 200);

        // Rendering mutates nothing: a second render of the same store is
        // byte-identical to the first.
        let first = server.metrics().render();
        let second = server.metrics().render();
        assert_eq!(first.as_bytes(), second.as_bytes());

        server.shutdown();
        text.lines()
            .filter(|l| l.contains("geopriv_requests_total"))
            .map(String::from)
            .collect::<Vec<String>>()
    };
    let counters = run();
    assert!(!counters.is_empty());
    assert_eq!(counters, run(), "counter section diverged across identical instances");
}

#[test]
fn unknown_users_protect_at_the_fallback_point_deterministically() {
    // Two servers, same master seed: an unknown user's stream is identical
    // across instances (the fallback assignment is deterministic too).
    let server_a = start_server(&ServeConfig::default());
    let server_b = start_server(&ServeConfig::default());
    let mut client_a = HttpClient::connect(server_a.local_addr()).unwrap();
    let mut client_b = HttpClient::connect(server_b.local_addr()).unwrap();
    for i in 0..5 {
        let (status_a, body_a) = client_a.post("/protect", &protect_body(909, i)).unwrap();
        let (status_b, body_b) = client_b.post("/protect", &protect_body(909, i)).unwrap();
        assert_eq!((status_a, status_b), (200, 200));
        assert_eq!(body_a, body_b, "record {i} diverged across instances");
    }
    server_a.shutdown();
    server_b.shutdown();
}

#[test]
fn timeouts_surface_as_504_without_killing_the_server() {
    let config = ServeConfig { timeout: Duration::from_nanos(1), ..ServeConfig::default() };
    let server = start_server(&config);
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    // /protect is exempt from 504 replacement: by the time the deadline
    // check runs the session has already advanced, and a 504 would invite
    // a retry that pushes the record twice — desynchronizing the online
    // stream from the user's real record sequence. The applied update's
    // real response comes back even past the deadline.
    let (status, body) = client.post("/protect", &protect_body(1, 0)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"released\": 1"));
    // Side-effect-free routes are replaced, and the server stays alive and
    // serving on the same connection rather than dropping it.
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("deadline"));
    // The session did not double-advance behind the exemption.
    let (status, body) = client.post("/protect", &protect_body(1, 1)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"released\": 2"));
    server.shutdown();
}

#[test]
fn hostile_requests_cannot_kill_or_bloat_the_server() {
    let server = start_server(&ServeConfig::default());
    let addr = server.local_addr();

    // The review's original crash repro: ~100KB of '[' as a /protect body
    // used to overflow the worker stack and SIGABRT the whole process
    // (stack overflow is not unwinding — PanicCatch cannot intercept it).
    // The parser's depth limit must turn it into a plain 400.
    let mut client = HttpClient::connect(addr).unwrap();
    let (status, body) = client.post("/protect", &"[".repeat(100_000)).unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("depth"), "{body}");

    // A user id above 2^53 - 1 would silently collide with a neighbor
    // through f64; it is rejected, never aliased.
    let (status, body) = client
        .post("/protect", "{\"user\": 18446744073709551615, \"t\": 0, \"lat\": 0, \"lon\": 0}")
        .unwrap();
    assert_eq!(status, 400, "{body}");

    // And the server is still alive for well-formed traffic.
    let (status, _) = client.post("/protect", &protect_body(1, 0)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(server.metrics().count("/protect", 400), 2);
    server.shutdown();
}

#[test]
fn registry_loads_from_the_json_wire_format_end_to_end() {
    let json = geopriv_core::report::per_user_recommendation_to_json(&recommendation());
    let registry = AssignmentRegistry::from_json(
        Box::new(GeoIndistinguishabilityFactory::new()),
        &json,
        MASTER_SEED,
    )
    .unwrap();
    assert_eq!(registry.assigned_users(), 2);
    let server = GeoPrivServer::start(registry, &ServeConfig::default()).unwrap();
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let (status, body) = client.get("/assignment/2").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("dataset-fallback"));
    assert!(body.contains("too few records"));
    server.shutdown();

    // A truncated document is a load error, not a panic.
    let truncated = &json[..json.len() / 2];
    assert!(AssignmentRegistry::from_json(
        Box::new(GeoIndistinguishabilityFactory::new()),
        truncated,
        MASTER_SEED,
    )
    .is_err());
}
