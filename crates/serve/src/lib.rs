//! # geopriv-serve
//!
//! Online per-user LPPM enforcement behind an HTTP request path.
//!
//! The offline framework (Cerf et al., Middleware 2016) ends with a
//! deployment artifact: a [`geopriv_core::PerUserRecommendation`] naming,
//! for every user, the configuration point her protection mechanism should
//! run at. This crate is the serving side of that hand-off — a long-running
//! service that
//!
//! 1. **loads** the recommendation (PR 5's JSON export is the wire format,
//!    parsed by [`geopriv_core::report::per_user_recommendation_from_json`]),
//! 2. **instantiates** one mechanism per user at her recommended point via
//!    [`geopriv_core::LppmFactory::instantiate_at`] — unknown or infeasible
//!    users ride the dataset-level fallback, per the normative policy on
//!    [`geopriv_core::UserVerdict`],
//! 3. **protects** incoming `(user, record)` updates record-at-a-time
//!    through [`geopriv_lppm::open_stream`] sessions, behind a fixed
//!    middleware stack (panic catching, metrics, per-user rate limiting,
//!    request timeout).
//!
//! ## Determinism contract
//!
//! With a fixed master seed, a user's protected stream is **bit-identical**
//! to the offline [`geopriv_lppm::Lppm::protect_view`] of the same record
//! sequence at the same point, seeded with
//! `StdRng::seed_from_u64(derive_user_seed(master_seed, user))` — the wire
//! format renders floats in shortest round-trip form, so the contract holds
//! end to end *through the HTTP responses*, not just in memory. See
//! [`registry`] for the full statement and the equivalence tests.
//!
//! ## Example
//!
//! ```no_run
//! use geopriv_core::GeoIndistinguishabilityFactory;
//! use geopriv_serve::{AssignmentRegistry, GeoPrivServer, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let json = std::fs::read_to_string("per_user_recommendation.json")?;
//! let registry = AssignmentRegistry::from_json(
//!     Box::new(GeoIndistinguishabilityFactory::new()),
//!     &json,
//!     20161212,
//! )?;
//! let server = GeoPrivServer::start(registry, &ServeConfig::default())?;
//! println!("serving on {}", server.local_addr());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod middleware;
pub mod protocol;
pub mod registry;
pub mod server;

pub use client::HttpClient;
pub use metrics::RequestMetrics;
pub use middleware::{Handler, HttpRequest, HttpResponse, MiddlewareStack};
pub use protocol::ProtectRequest;
pub use registry::{derive_user_seed, Assignment, AssignmentRegistry, AssignmentSource};
pub use server::{GeoPrivServer, ServeConfig};
