//! The `/protect` wire protocol: one location update in, one protected
//! record out.
//!
//! Requests and responses are small flat JSON objects, parsed with the
//! framework's own [`geopriv_core::json`] parser and rendered with the same
//! shortest round-trip float form as every other exporter — which is what
//! makes the online/offline bit-identity contract *testable through the
//! wire*: a protected coordinate survives render → parse with its exact
//! bits.

use geopriv_core::json::JsonValue;
use geopriv_geo::{GeoPoint, Seconds};
use geopriv_mobility::Record;

/// One `POST /protect` body: a user's next raw location update.
///
/// ```json
/// {"user": 7, "t": 30.0, "lat": 48.1173, "lon": -1.6778}
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtectRequest {
    /// The user sending the update.
    pub user: u64,
    /// Timestamp of the update, in seconds.
    pub t: f64,
    /// Actual latitude, degrees.
    pub lat: f64,
    /// Actual longitude, degrees.
    pub lon: f64,
}

impl ProtectRequest {
    /// Parses a request body. Malformed JSON, missing members, a
    /// non-integer user or out-of-range coordinates are all rejected with a
    /// reason (the server answers 400 with it).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason string on any malformation.
    pub fn from_json(body: &str) -> Result<ProtectRequest, String> {
        let value = JsonValue::parse(body).map_err(|e| e.to_string())?;
        let user = value.get("user").and_then(JsonValue::as_u64).ok_or_else(|| {
            // `as_u64` also rejects integers above 2^53 − 1: JSON
            // numbers travel as f64, where larger ids would silently
            // collide onto one value — one identity for two users.
            "\"user\" must be an unsigned integer (at most 2^53 - 1)".to_string()
        })?;
        let number = |key: &str| -> Result<f64, String> {
            let n = value
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("\"{key}\" must be a number"))?;
            if n.is_finite() {
                Ok(n)
            } else {
                Err(format!("\"{key}\" must be finite"))
            }
        };
        let request =
            ProtectRequest { user, t: number("t")?, lat: number("lat")?, lon: number("lon")? };
        request.record()?; // Validate coordinates up front, one error path.
        Ok(request)
    }

    /// The update as a mobility [`Record`].
    ///
    /// # Errors
    ///
    /// Returns a reason string for coordinates outside the WGS-84 domain.
    pub fn record(&self) -> Result<Record, String> {
        let location = GeoPoint::new(self.lat, self.lon).map_err(|e| e.to_string())?;
        Ok(Record::new(Seconds::new(self.t), location))
    }

    /// Renders the request as its wire JSON (used by the bench client).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"user\": {}, \"t\": {}, \"lat\": {}, \"lon\": {}}}",
            self.user,
            json_number(self.t),
            json_number(self.lat),
            json_number(self.lon)
        )
    }
}

/// Renders a finite float in the workspace's shortest round-trip form
/// (non-finite values never reach a response: protected coordinates are
/// valid `GeoPoint`s by construction).
fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Renders a successful `/protect` response: the protected record and the
/// session's release count (1-based index of this record in the user's
/// protected stream).
pub fn protect_response_json(user: u64, protected: &Record, released: usize) -> String {
    format!(
        "{{\"user\": {user}, \"t\": {}, \"lat\": {}, \"lon\": {}, \"released\": {released}}}",
        json_number(protected.timestamp().as_f64()),
        json_number(protected.location().latitude()),
        json_number(protected.location().longitude()),
    )
}

/// Renders an error body: `{"error": "<reason>"}`.
pub fn error_json(reason: &str) -> String {
    let mut escaped = String::with_capacity(reason.len());
    for c in reason.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    format!("{{\"error\": \"{escaped}\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn requests_round_trip_bit_exactly() -> TestResult {
        let request = ProtectRequest { user: 9, t: 30.5, lat: 48.117266, lon: -1.6777926 };
        let parsed = ProtectRequest::from_json(&request.to_json())?;
        assert_eq!(parsed, request);
        assert_eq!(parsed.lat.to_bits(), request.lat.to_bits());
        let record = parsed.record()?;
        assert_eq!(record.timestamp().as_f64(), 30.5);
        Ok(())
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (body, needle) in [
            ("not json", "malformed"),
            ("{}", "\"user\""),
            ("{\"user\": -1, \"t\": 0, \"lat\": 0, \"lon\": 0}", "\"user\""),
            ("{\"user\": 1.5, \"t\": 0, \"lat\": 0, \"lon\": 0}", "\"user\""),
            ("{\"user\": 1, \"lat\": 0, \"lon\": 0}", "\"t\""),
            ("{\"user\": 1, \"t\": null, \"lat\": 0, \"lon\": 0}", "finite"),
            ("{\"user\": 1, \"t\": 0, \"lat\": 95.0, \"lon\": 0}", "latitude"),
            ("{\"user\": 1, \"t\": 0, \"lat\": 0, \"lon\": 181.0}", "longitude"),
        ] {
            let err = ProtectRequest::from_json(body).unwrap_err();
            assert!(err.contains(needle), "{body} → {err} (expected {needle})");
        }
    }

    #[test]
    fn responses_and_errors_render_as_json() -> TestResult {
        let record = ProtectRequest { user: 3, t: 1.0, lat: 10.25, lon: 20.5 }.record()?;
        let json = protect_response_json(3, &record, 7);
        let value = geopriv_core::json::JsonValue::parse(&json)?;
        assert_eq!(value.get("user").ok_or("missing user")?.as_u64(), Some(3));
        assert_eq!(value.get("lat").ok_or("missing lat")?.as_f64(), Some(10.25));
        assert_eq!(value.get("released").ok_or("missing released")?.as_u64(), Some(7));

        let err = error_json("bad \"input\"\n");
        let value = geopriv_core::json::JsonValue::parse(&err)?;
        assert_eq!(value.get("error").ok_or("missing error")?.as_str(), Some("bad \"input\"\n"));
        Ok(())
    }
}
