//! The serving loop: a [`GeoPrivServer`] binds a loopback address, applies
//! the fixed middleware stack and routes requests to the
//! [`AssignmentRegistry`].
//!
//! Routes:
//!
//! | Method | Path               | Response |
//! |--------|--------------------|----------|
//! | POST   | `/protect`         | protected record JSON; 400 malformed, 422 mechanism error |
//! | GET    | `/assignment/<id>` | the user's resolved assignment (never 404s on unknown ids — the fallback *is* the answer) |
//! | GET    | `/metrics`         | Prometheus text exposition |
//! | GET    | `/healthz`         | `ok` |
//!
//! The middleware order is fixed and declared in one place
//! ([`GeoPrivServer::start`]): `PanicCatch → Metrics → RateLimit → Timeout
//! → Router` (see [`crate::middleware`] for why). `/protect` is exempt from
//! the timeout's 504 replacement because its handler has session side
//! effects (see [`crate::middleware::Timeout`]).

use crate::metrics::RequestMetrics;
use crate::middleware::{
    Handler, HttpRequest, HttpResponse, MetricsLayer, MiddlewareStack, PanicCatch, RateLimit,
    Timeout,
};
use crate::protocol::{error_json, protect_response_json, ProtectRequest};
use crate::registry::AssignmentRegistry;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tiny_http::{Method, Response, Server};

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Per-user rate limit: `(burst, refill per second)`. `None` disables
    /// limiting.
    pub rate_limit: Option<(u32, f64)>,
    /// Cooperative per-request deadline.
    pub timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            rate_limit: Some((1000, 1000.0)),
            timeout: Duration::from_millis(250),
        }
    }
}

struct Router {
    registry: Arc<AssignmentRegistry>,
    metrics: Arc<RequestMetrics>,
}

impl Handler for Router {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        match (&request.method, request.path.as_str()) {
            (Method::Post, "/protect") => self.protect(&request.body),
            (Method::Get, "/healthz") => HttpResponse::text(200, "ok\n".to_string()),
            (Method::Get, "/metrics") => HttpResponse::text(200, self.metrics.render()),
            (Method::Get, path) if path.starts_with("/assignment/") => {
                // audit:allow(P1): the guard proved the ASCII prefix, so the slice start is in bounds
                match path["/assignment/".len()..].parse::<u64>() {
                    Ok(user) => {
                        HttpResponse::json(200, self.registry.assignment_for(user).to_json(user))
                    }
                    Err(_) => {
                        HttpResponse::json(400, error_json("assignment ids are unsigned integers"))
                    }
                }
            }
            (Method::Post | Method::Get, _) => HttpResponse::json(404, error_json("unknown route")),
            _ => HttpResponse::json(405, error_json("method not allowed")),
        }
    }
}

impl Router {
    fn protect(&self, body: &str) -> HttpResponse {
        let request = match ProtectRequest::from_json(body) {
            Ok(request) => request,
            Err(reason) => return HttpResponse::json(400, error_json(&reason)),
        };
        let record = match request.record() {
            Ok(record) => record,
            Err(reason) => return HttpResponse::json(400, error_json(&reason)),
        };
        match self.registry.protect(request.user, record) {
            Ok((protected, released)) => {
                HttpResponse::json(200, protect_response_json(request.user, &protected, released))
            }
            Err(e) => HttpResponse::json(422, error_json(&e.to_string())),
        }
    }
}

/// A running serving instance: accept loop on a background thread, clean
/// shutdown via [`GeoPrivServer::shutdown`].
pub struct GeoPrivServer {
    addr: SocketAddr,
    unblocker: tiny_http::Unblocker,
    worker: JoinHandle<()>,
    metrics: Arc<RequestMetrics>,
    registry: Arc<AssignmentRegistry>,
}

impl GeoPrivServer {
    /// Binds the configured address and starts serving the registry on a
    /// background thread.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the address cannot be bound.
    pub fn start(
        registry: AssignmentRegistry,
        config: &ServeConfig,
    ) -> std::io::Result<GeoPrivServer> {
        let server = Server::http(&config.addr)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::AddrInUse, e.to_string()))?;
        let addr = server.server_addr();
        let unblocker = server.unblock_handle();
        let metrics = Arc::new(RequestMetrics::new());
        let registry = Arc::new(registry);

        // The fixed middleware order, declared once, outermost first.
        let mut stack =
            MiddlewareStack::new().layer(PanicCatch).layer(MetricsLayer::new(Arc::clone(&metrics)));
        if let Some((burst, per_second)) = config.rate_limit {
            stack = stack.layer(RateLimit::new(burst, per_second));
        }
        // /protect is exempt from 504 replacement: its handler advances the
        // user's session, so a timed-out-but-applied update must still
        // return its real response (a 504 would invite a duplicating retry
        // that desynchronizes the stream from the record sequence).
        let handler = stack.layer(Timeout::new(config.timeout).exempt("/protect")).service(
            Box::new(Router { registry: Arc::clone(&registry), metrics: Arc::clone(&metrics) }),
        );

        let worker = std::thread::spawn(move || {
            while let Ok(incoming) = server.recv() {
                let request = HttpRequest {
                    method: *incoming.method(),
                    path: incoming.url().to_string(),
                    body: incoming.body_str().unwrap_or("").to_string(),
                };
                let outgoing = handler.handle(&request);
                let response = Response::from_string(outgoing.body)
                    .with_status_code(outgoing.status)
                    .with_content_type(outgoing.content_type);
                // A peer that vanished mid-response only ends that
                // connection; the accept loop continues.
                let _ = incoming.respond(response);
            }
        });
        Ok(GeoPrivServer { addr, unblocker, worker, metrics, registry })
    }

    /// The bound address (with the concrete ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared request metrics (for in-process inspection; the wire view
    /// is `GET /metrics`).
    pub fn metrics(&self) -> &Arc<RequestMetrics> {
        &self.metrics
    }

    /// The shared registry (for in-process inspection).
    pub fn registry(&self) -> &Arc<AssignmentRegistry> {
        &self.registry
    }

    /// Stops the accept loop and joins the worker thread.
    pub fn shutdown(self) {
        self.unblocker.unblock();
        let _ = self.worker.join();
    }
}
