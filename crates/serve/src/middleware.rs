//! The composable middleware stack of the serving layer.
//!
//! A [`Handler`] turns an [`HttpRequest`] into an [`HttpResponse`]; a
//! [`Layer`] wraps a handler with one cross-cutting concern. The
//! [`MiddlewareStack`] applies layers declaratively in the order they are
//! added — first added is **outermost** — so the server can state its fixed
//! order in one place:
//!
//! ```text
//! PanicCatch → Metrics → RateLimit → Timeout → Router
//! ```
//!
//! Consequences of that order (and the reason it is fixed):
//!
//! * a panic anywhere below is converted to a 500 at the very top, so the
//!   accept loop never dies;
//! * metrics sit above rate limiting and timeouts, so 429s and 504s are
//!   *counted* (only panics bypass the counters — the 500 is synthesized
//!   above the metrics layer);
//! * the rate limiter rejects before any protection work is spent;
//! * the timeout measures the actual handler work, innermost — with
//!   side-effecting routes exempted from response replacement
//!   ([`Timeout::exempt`]), because by then the session has already
//!   advanced and a 504 would invite a stream-desynchronizing retry.

use crate::metrics::RequestMetrics;
use crate::protocol::error_json;
use geopriv_core::json::JsonValue;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tiny_http::Method;

/// One parsed request, decoupled from the transport so handlers and layers
/// are testable without sockets.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// The request method.
    pub method: Method,
    /// The request path (no query handling; the serving API needs none).
    pub path: String,
    /// The request body as UTF-8 (empty when absent or not UTF-8).
    pub body: String,
}

impl HttpRequest {
    /// The user a request concerns, when one can be determined cheaply: the
    /// `user` member of a `/protect` body, or the trailing id of
    /// `/assignment/<id>`. Rate limiting keys on this; requests without a
    /// user (health, metrics) are not user-limited.
    pub fn user_hint(&self) -> Option<u64> {
        if let Some(id) = self.path.strip_prefix("/assignment/") {
            return id.parse().ok();
        }
        if self.path == "/protect" {
            return JsonValue::parse(&self.body).ok()?.get("user")?.as_u64();
        }
        None
    }

    /// The route label used for metrics: known routes collapse per-user
    /// paths (`/assignment/7` → `/assignment`), everything else is
    /// `"other"` so hostile paths cannot grow the counter map unboundedly.
    pub fn route_label(&self) -> &'static str {
        match self.path.as_str() {
            "/protect" => "/protect",
            "/healthz" => "/healthz",
            "/metrics" => "/metrics",
            path if path.starts_with("/assignment/") => "/assignment",
            _ => "other",
        }
    }
}

/// One response: status, content type, UTF-8 body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> HttpResponse {
        HttpResponse { status, content_type: "application/json", body }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> HttpResponse {
        HttpResponse { status, content_type: "text/plain; charset=utf-8", body }
    }
}

/// A request handler. The router at the bottom of the stack is one; every
/// wrapped stack is one too.
pub trait Handler: Send + Sync {
    /// Handles one request.
    fn handle(&self, request: &HttpRequest) -> HttpResponse;
}

impl<F> Handler for F
where
    F: Fn(&HttpRequest) -> HttpResponse + Send + Sync,
{
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        self(request)
    }
}

/// One middleware concern, applied by wrapping an inner handler.
pub trait Layer {
    /// Wraps `inner`, returning the composed handler.
    fn wrap(self: Box<Self>, inner: Box<dyn Handler>) -> Box<dyn Handler>;
}

/// A declarative, ordered stack of layers.
///
/// ```
/// use geopriv_serve::middleware::{
///     HttpRequest, HttpResponse, Handler, MiddlewareStack, PanicCatch,
/// };
///
/// let stack = MiddlewareStack::new().layer(PanicCatch).service(Box::new(
///     |_request: &HttpRequest| HttpResponse::text(200, "ok".to_string()),
/// ));
/// let request = HttpRequest {
///     method: tiny_http::Method::Get,
///     path: "/healthz".to_string(),
///     body: String::new(),
/// };
/// assert_eq!(stack.handle(&request).status, 200);
/// ```
#[derive(Default)]
pub struct MiddlewareStack {
    layers: Vec<Box<dyn Layer>>,
}

impl MiddlewareStack {
    /// An empty stack.
    pub fn new() -> MiddlewareStack {
        MiddlewareStack::default()
    }

    /// Appends a layer. The first layer added ends up **outermost**.
    #[must_use]
    pub fn layer<L: Layer + 'static>(mut self, layer: L) -> MiddlewareStack {
        self.layers.push(Box::new(layer));
        self
    }

    /// Closes the stack over the innermost handler (the router), wrapping in
    /// reverse declaration order so declaration order reads outermost-first.
    pub fn service(self, handler: Box<dyn Handler>) -> Box<dyn Handler> {
        self.layers.into_iter().rev().fold(handler, |inner, layer| layer.wrap(inner))
    }
}

// --- PanicCatch ------------------------------------------------------------

/// Outermost layer: converts a panic anywhere below into a 500 response so
/// one poisoned request cannot take the accept loop down.
pub struct PanicCatch;

struct PanicCatchHandler {
    inner: Box<dyn Handler>,
}

impl Layer for PanicCatch {
    fn wrap(self: Box<Self>, inner: Box<dyn Handler>) -> Box<dyn Handler> {
        Box::new(PanicCatchHandler { inner })
    }
}

impl Handler for PanicCatchHandler {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.inner.handle(request)))
            .unwrap_or_else(|_| {
                HttpResponse::json(500, error_json("internal error (handler panicked)"))
            })
    }
}

// --- Metrics ---------------------------------------------------------------

/// Records every non-panicking request into a shared [`RequestMetrics`]:
/// route label, final status (including 429s and 504s minted below it) and
/// wall-clock latency.
pub struct MetricsLayer {
    metrics: Arc<RequestMetrics>,
}

impl MetricsLayer {
    /// Creates the layer over a shared metrics store.
    pub fn new(metrics: Arc<RequestMetrics>) -> MetricsLayer {
        MetricsLayer { metrics }
    }
}

struct MetricsHandler {
    metrics: Arc<RequestMetrics>,
    inner: Box<dyn Handler>,
}

impl Layer for MetricsLayer {
    fn wrap(self: Box<Self>, inner: Box<dyn Handler>) -> Box<dyn Handler> {
        Box::new(MetricsHandler { metrics: self.metrics, inner })
    }
}

impl Handler for MetricsHandler {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        let start = Instant::now();
        let response = self.inner.handle(request);
        self.metrics.record(request.route_label(), response.status, start.elapsed());
        response
    }
}

// --- RateLimit -------------------------------------------------------------

/// Per-user token bucket: each user may burst up to `burst` requests and
/// refills at `per_second` tokens per second. Requests without a user hint
/// (health, metrics) are never limited. Over-limit requests are answered
/// 429 before any protection work is spent.
///
/// The bucket map is capped at [`RateLimit::MAX_BUCKETS`]: at the cap, a
/// new user evicts the longest-idle bucket (which has therefore refilled
/// the most), so a client iterating fabricated user ids bounds the map
/// instead of growing it without limit.
pub struct RateLimit {
    burst: u32,
    per_second: f64,
}

impl RateLimit {
    /// Cap on concurrently tracked per-user buckets.
    pub const MAX_BUCKETS: usize = 65_536;

    /// Creates the limiter. `burst` is clamped to at least 1.
    pub fn new(burst: u32, per_second: f64) -> RateLimit {
        RateLimit { burst: burst.max(1), per_second: per_second.max(0.0) }
    }
}

struct Bucket {
    tokens: f64,
    refreshed: Instant,
}

struct RateLimitHandler {
    burst: f64,
    per_second: f64,
    buckets: Mutex<HashMap<u64, Bucket>>,
    inner: Box<dyn Handler>,
}

impl Layer for RateLimit {
    fn wrap(self: Box<Self>, inner: Box<dyn Handler>) -> Box<dyn Handler> {
        Box::new(RateLimitHandler {
            burst: f64::from(self.burst),
            per_second: self.per_second,
            buckets: Mutex::new(HashMap::new()),
            inner,
        })
    }
}

impl Handler for RateLimitHandler {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        if let Some(user) = request.user_hint() {
            let now = Instant::now();
            let mut buckets = self.buckets.lock();
            if buckets.len() >= RateLimit::MAX_BUCKETS && !buckets.contains_key(&user) {
                // Evict the longest-idle bucket; by idling it has refilled
                // the most, so dropping it is the most forgiving choice.
                if let Some(&idle) = buckets.iter().min_by_key(|(_, b)| b.refreshed).map(|(u, _)| u)
                {
                    buckets.remove(&idle);
                }
            }
            let bucket =
                buckets.entry(user).or_insert(Bucket { tokens: self.burst, refreshed: now });
            let elapsed = now.duration_since(bucket.refreshed).as_secs_f64();
            bucket.tokens = (bucket.tokens + elapsed * self.per_second).min(self.burst);
            bucket.refreshed = now;
            if bucket.tokens < 1.0 {
                return HttpResponse::json(
                    429,
                    error_json(&format!("user {user} exceeded the request rate limit")),
                );
            }
            bucket.tokens -= 1.0;
        }
        self.inner.handle(request)
    }
}

// --- Timeout ---------------------------------------------------------------

/// Cooperative request deadline: the inner handler runs to completion, and
/// a response that took longer than the limit is replaced by a 504 (the
/// latency bound is enforced on the reply, not by killing the worker — the
/// registry below is synchronous and single-flight per connection).
///
/// Routes with session side effects must be exempted
/// ([`Timeout::exempt`]): by the time the 504 would be minted the inner
/// handler has already run, so for `/protect` the record was pushed and the
/// RNG consumed — replacing the computed response would invite the client
/// to retry an update that *was* applied, desynchronizing her online stream
/// from her real record sequence and breaking the offline bit-identity
/// contract. Exempt responses pass through untouched (the metrics layer
/// above still records their true latency).
pub struct Timeout {
    limit: Duration,
    exempt: Vec<&'static str>,
}

impl Timeout {
    /// Creates the layer with the given deadline.
    pub fn new(limit: Duration) -> Timeout {
        Timeout { limit, exempt: Vec::new() }
    }

    /// Exempts a route label ([`HttpRequest::route_label`]) from response
    /// replacement — for routes whose handler has session side effects that
    /// a 504-triggered retry would duplicate.
    #[must_use]
    pub fn exempt(mut self, route: &'static str) -> Timeout {
        self.exempt.push(route);
        self
    }
}

struct TimeoutHandler {
    limit: Duration,
    exempt: Vec<&'static str>,
    inner: Box<dyn Handler>,
}

impl Layer for Timeout {
    fn wrap(self: Box<Self>, inner: Box<dyn Handler>) -> Box<dyn Handler> {
        Box::new(TimeoutHandler { limit: self.limit, exempt: self.exempt, inner })
    }
}

impl Handler for TimeoutHandler {
    fn handle(&self, request: &HttpRequest) -> HttpResponse {
        let start = Instant::now();
        let response = self.inner.handle(request);
        if start.elapsed() > self.limit && !self.exempt.contains(&request.route_label()) {
            return HttpResponse::json(
                504,
                error_json(&format!("request exceeded the {} ms deadline", self.limit.as_millis())),
            );
        }
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> HttpRequest {
        HttpRequest { method: Method::Get, path: path.to_string(), body: String::new() }
    }

    fn protect(user: u64) -> HttpRequest {
        HttpRequest {
            method: Method::Post,
            path: "/protect".to_string(),
            body: format!("{{\"user\": {user}, \"t\": 0, \"lat\": 0, \"lon\": 0}}"),
        }
    }

    fn ok_handler() -> Box<dyn Handler> {
        Box::new(|_request: &HttpRequest| HttpResponse::text(200, "ok".to_string()))
    }

    #[test]
    fn user_hints_and_route_labels() {
        assert_eq!(protect(42).user_hint(), Some(42));
        assert_eq!(get("/assignment/7").user_hint(), Some(7));
        assert_eq!(get("/assignment/seven").user_hint(), None);
        assert_eq!(get("/healthz").user_hint(), None);
        assert_eq!(get("/metrics").route_label(), "/metrics");
        assert_eq!(get("/assignment/7").route_label(), "/assignment");
        assert_eq!(get("/../../etc/passwd").route_label(), "other");
    }

    #[test]
    fn panic_catch_converts_panics_to_500() {
        let stack = MiddlewareStack::new()
            .layer(PanicCatch)
            // audit:allow(P1): deliberate panic — this test exists to prove PanicCatch converts it
            .service(Box::new(|_request: &HttpRequest| -> HttpResponse { panic!("boom") }));
        let response = stack.handle(&get("/healthz"));
        assert_eq!(response.status, 500);
        assert!(response.body.contains("internal error"));
        // And a healthy handler passes through untouched.
        let stack = MiddlewareStack::new().layer(PanicCatch).service(ok_handler());
        assert_eq!(stack.handle(&get("/healthz")).status, 200);
    }

    #[test]
    fn metrics_layer_counts_inner_statuses() {
        let metrics = Arc::new(RequestMetrics::new());
        let stack = MiddlewareStack::new()
            .layer(MetricsLayer::new(Arc::clone(&metrics)))
            .layer(RateLimit::new(1, 0.0))
            .service(ok_handler());
        assert_eq!(stack.handle(&protect(1)).status, 200);
        assert_eq!(stack.handle(&protect(1)).status, 429);
        // Both the success AND the rate-limited rejection were counted:
        // metrics sit above the limiter by construction.
        assert_eq!(metrics.count("/protect", 200), 1);
        assert_eq!(metrics.count("/protect", 429), 1);
    }

    #[test]
    fn rate_limiter_is_per_user_and_skips_unkeyed_routes() {
        let stack = MiddlewareStack::new().layer(RateLimit::new(2, 0.0)).service(ok_handler());
        assert_eq!(stack.handle(&protect(1)).status, 200);
        assert_eq!(stack.handle(&protect(1)).status, 200);
        assert_eq!(stack.handle(&protect(1)).status, 429);
        // Another user has her own bucket.
        assert_eq!(stack.handle(&protect(2)).status, 200);
        // Unkeyed routes are never limited.
        for _ in 0..10 {
            assert_eq!(stack.handle(&get("/metrics")).status, 200);
        }
    }

    #[test]
    fn timeout_replaces_slow_responses_with_504() {
        let stack = MiddlewareStack::new().layer(Timeout::new(Duration::from_millis(5))).service(
            Box::new(|_request: &HttpRequest| {
                std::thread::sleep(Duration::from_millis(20));
                HttpResponse::text(200, "late".to_string())
            }),
        );
        let response = stack.handle(&get("/healthz"));
        assert_eq!(response.status, 504);
        assert!(response.body.contains("deadline"));
        // Fast handlers are untouched.
        let stack = MiddlewareStack::new()
            .layer(Timeout::new(Duration::from_secs(5)))
            .service(ok_handler());
        assert_eq!(stack.handle(&get("/healthz")).status, 200);
    }

    #[test]
    fn timeout_exempts_side_effecting_routes() {
        // A slow /protect has already advanced the user's session; its
        // computed response must pass through, not be replaced by a 504
        // that would invite a duplicating retry.
        let slow: Box<dyn Handler> = Box::new(|_request: &HttpRequest| {
            std::thread::sleep(Duration::from_millis(20));
            HttpResponse::text(200, "applied".to_string())
        });
        let stack = MiddlewareStack::new()
            .layer(Timeout::new(Duration::from_millis(5)).exempt("/protect"))
            .service(slow);
        let response = stack.handle(&protect(1));
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "applied");
        // Non-exempt routes are still bounded.
        assert_eq!(stack.handle(&get("/healthz")).status, 504);
    }

    #[test]
    fn rate_limit_bucket_map_is_capped() {
        let stack = MiddlewareStack::new().layer(RateLimit::new(1, 0.0)).service(ok_handler());
        // Drain user 0's bucket: burst 1, no refill.
        assert_eq!(stack.handle(&get("/assignment/0")).status, 200);
        assert_eq!(stack.handle(&get("/assignment/0")).status, 429);
        std::thread::sleep(Duration::from_millis(2));
        // A hostile sweep of fresh user ids fills the map to the cap and
        // forces one eviction — of user 0, by then the longest idle.
        for user in 1..=RateLimit::MAX_BUCKETS as u64 {
            assert_eq!(stack.handle(&get(&format!("/assignment/{user}"))).status, 200);
        }
        // Her next request opens a fresh full bucket: the drained (and
        // evicted) state is gone, and the map never exceeded the cap.
        assert_eq!(stack.handle(&get("/assignment/0")).status, 200);
    }

    #[test]
    fn declaration_order_is_outermost_first() {
        // A panic below the limiter: PanicCatch first must still win.
        let stack = MiddlewareStack::new()
            .layer(PanicCatch)
            .layer(RateLimit::new(1, 0.0))
            // audit:allow(P1): deliberate panic below the limiter — exercises PanicCatch ordering
            .service(Box::new(|_request: &HttpRequest| -> HttpResponse { panic!("inner panic") }));
        assert_eq!(stack.handle(&protect(9)).status, 500);
        // The limiter still saw the request (its bucket drained), proving it
        // sat inside PanicCatch: the second call 429s instead of panicking.
        assert_eq!(stack.handle(&protect(9)).status, 429);
    }
}
