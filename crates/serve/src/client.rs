//! A minimal blocking HTTP client over one keep-alive connection, used by
//! the loopback tests, the serving bench and the example. Not a general
//! client: exactly what the shim server speaks (HTTP/1.1, `Content-Length`
//! bodies).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One keep-alive connection to a serving instance.
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects to a server address.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the connection fails.
    pub fn connect(addr: SocketAddr) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient { stream, reader })
    }

    /// Sends a `GET` and returns `(status, body)`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on a broken connection or malformed response.
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    /// Sends a `POST` with a body and returns `(status, body)`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on a broken connection or malformed response.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: geopriv\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;

        let malformed =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(malformed("server closed the connection"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| malformed("malformed status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(malformed("connection closed mid-headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(value) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length =
                    value.trim().parse().map_err(|_| malformed("malformed content-length"))?;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body).map(|text| (status, text)).map_err(|_| malformed("non-UTF-8 body"))
    }
}
