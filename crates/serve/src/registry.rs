//! The assignment registry: which configuration point each user is served
//! at, and the live per-user protection sessions.
//!
//! The registry is loaded once at startup from a
//! [`PerUserRecommendation`] — the offline pipeline's deployment artifact
//! (PR 5's JSON export is the wire format). Every user row is resolved to a
//! concrete [`Assignment`] eagerly, so a tampered or out-of-space point
//! surfaces at load time, not on her first request. Request-time users
//! absent from the recommendation are assigned the dataset-level point
//! lazily, per the normative fallback policy on
//! [`geopriv_core::UserVerdict`].
//!
//! ## Determinism contract
//!
//! A user's protected stream is a pure function of
//! `(master seed, user id, her configuration point, her record sequence)`:
//! sessions are seeded with [`derive_user_seed`] and protected through
//! [`geopriv_lppm::open_stream_bounded`], whose output is bit-identical to
//! the offline [`geopriv_lppm::Lppm::protect_view`] of the same trace under
//! `StdRng::seed_from_u64(derive_user_seed(master_seed, user))`. Restarting
//! the service (or replaying the requests elsewhere) reproduces the exact
//! same released coordinates.
//!
//! ## Resource bounds
//!
//! Live sessions are LRU-capped ([`AssignmentRegistry::set_max_sessions`])
//! so a client iterating fabricated user ids cannot grow server memory
//! without bound, and replay-fallback sessions carry a prefix cap
//! ([`AssignmentRegistry::set_replay_prefix_limit`]) so a single
//! kernel-less session cannot either.

use geopriv_core::{CoreError, LppmFactory, PerUserRecommendation};
use geopriv_lppm::{open_stream_bounded, ConfigPoint, Lppm, LppmError, LppmStream};
use geopriv_mobility::{Record, UserId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Derives the deterministic per-user session seed from the service master
/// seed (same FNV-1a-plus-golden-ratio mixing as the sweep engine's
/// `derive_point_seed`, over the user id instead of the point token).
pub fn derive_user_seed(master_seed: u64, user: UserId) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325; // FNV-1a 64-bit offset basis.
    for byte in user.value().to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3); // FNV-1a 64-bit prime.
    }
    master_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(hash)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Why a user is served at her assigned point.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignmentSource {
    /// The user's own feasible recommendation.
    Own,
    /// The dataset-level fallback point, with the policy reason.
    DatasetFallback {
        /// Why the fallback applies (verdict reason, unknown user, or a
        /// point that failed to instantiate).
        reason: String,
    },
}

impl AssignmentSource {
    /// Short machine-stable label (`own` / `dataset-fallback`).
    pub fn label(&self) -> &'static str {
        match self {
            AssignmentSource::Own => "own",
            AssignmentSource::DatasetFallback { .. } => "dataset-fallback",
        }
    }
}

/// One user's resolved serving assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The configuration point the user's mechanism is instantiated at.
    pub point: ConfigPoint,
    /// Whether the point is her own or the dataset fallback, and why.
    pub source: AssignmentSource,
}

impl Assignment {
    /// Renders the assignment as the `/assignment/<id>` response body.
    pub fn to_json(&self, user: u64) -> String {
        let point: Vec<String> = self
            .point
            .values()
            .iter()
            .map(|(name, value)| format!("\"{name}\": {value}"))
            .collect();
        let mut out = format!(
            "{{\"user\": {user}, \"source\": \"{}\", \"point\": {{{}}}",
            self.source.label(),
            point.join(", ")
        );
        if let AssignmentSource::DatasetFallback { reason } = &self.source {
            out.push_str(&format!(", \"reason\": {}", quoted(reason)));
        }
        out.push('}');
        out
    }
}

fn quoted(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Default cap on concurrently live protection sessions (and the bound a
/// hostile client iterating user ids can grow the session map to). Well
/// above any real per-instance population; see
/// [`AssignmentRegistry::set_max_sessions`].
pub const DEFAULT_MAX_SESSIONS: usize = 65_536;

/// Default cap on the record prefix a replay-fallback session may hold (see
/// [`geopriv_lppm::open_stream_bounded`]); kernel-streaming mechanisms are
/// unaffected.
pub const DEFAULT_REPLAY_PREFIX_LIMIT: usize = 4_096;

struct Session {
    stream: Box<dyn LppmStream>,
    /// Logical access time (a per-registry counter, not wall clock), for
    /// least-recently-used eviction at the session cap.
    last_used: u64,
}

#[derive(Default)]
struct Sessions {
    map: HashMap<u64, Session>,
    tick: u64,
}

/// Per-user assignments and live protection sessions.
pub struct AssignmentRegistry {
    factory: Box<dyn LppmFactory>,
    dataset_point: ConfigPoint,
    /// The dataset-level mechanism, shared by every fallback session
    /// (mechanisms are stateless; per-session state lives in the stream).
    dataset_lppm: Arc<dyn Lppm>,
    assignments: HashMap<u64, Assignment>,
    master_seed: u64,
    sessions: Mutex<Sessions>,
    max_sessions: usize,
    replay_prefix_limit: usize,
}

impl AssignmentRegistry {
    /// Resolves a recommendation against a mechanism factory.
    ///
    /// Every known user's point is instantiated eagerly; a user whose point
    /// fails (a tampered document, or a factory with a narrower space than
    /// the one swept offline) is re-assigned the dataset-level point with
    /// the failure as her fallback reason — per-user load problems degrade,
    /// they do not abort.
    ///
    /// # Errors
    ///
    /// Returns the instantiation error when the **dataset-level** point
    /// itself is unusable: then there is no fallback anchor and the service
    /// must not start.
    pub fn load(
        factory: Box<dyn LppmFactory>,
        recommendation: &PerUserRecommendation,
        master_seed: u64,
    ) -> Result<AssignmentRegistry, CoreError> {
        let dataset_point = recommendation.dataset.point.clone();
        let dataset_lppm: Arc<dyn Lppm> = Arc::from(factory.instantiate_at(&dataset_point)?);
        let mut assignments = HashMap::with_capacity(recommendation.users.len());
        for user in &recommendation.users {
            let source = if user.used_fallback() {
                AssignmentSource::DatasetFallback { reason: user.verdict.to_string() }
            } else {
                AssignmentSource::Own
            };
            let assignment = match factory.instantiate_at(&user.point) {
                Ok(_) => Assignment { point: user.point.clone(), source },
                Err(e) => Assignment {
                    point: dataset_point.clone(),
                    source: AssignmentSource::DatasetFallback {
                        reason: format!("recommended point failed to instantiate: {e}"),
                    },
                },
            };
            assignments.insert(user.user.value(), assignment);
        }
        Ok(AssignmentRegistry {
            factory,
            dataset_point,
            dataset_lppm,
            assignments,
            master_seed,
            sessions: Mutex::new(Sessions::default()),
            max_sessions: DEFAULT_MAX_SESSIONS,
            replay_prefix_limit: DEFAULT_REPLAY_PREFIX_LIMIT,
        })
    }

    /// Caps the number of concurrently live protection sessions (default
    /// [`DEFAULT_MAX_SESSIONS`]). At the cap, opening a session for a new
    /// user evicts the least-recently-used one — so a client iterating
    /// fabricated user ids bounds server memory instead of growing it.
    ///
    /// Eviction is a documented degradation, not a silent one: an evicted
    /// user's next update starts a fresh session (her `released` counter
    /// restarts at 1), and the determinism contract then holds for the new
    /// session's record sequence. Size the cap above the real concurrent
    /// population; `cap` is clamped to at least 1.
    pub fn set_max_sessions(&mut self, cap: usize) {
        self.max_sessions = cap.max(1);
    }

    /// Caps the record prefix a replay-fallback session may hold (default
    /// [`DEFAULT_REPLAY_PREFIX_LIMIT`]). Mechanisms without a streaming
    /// kernel store and re-protect their full prefix per push — O(n) memory
    /// and CPU — so a long-lived session must bound it; pushes beyond the
    /// cap fail with [`LppmError::Unstreamable`]. Kernel-streaming
    /// mechanisms (the default geo-indistinguishability deployment) are
    /// unaffected.
    pub fn set_replay_prefix_limit(&mut self, limit: usize) {
        self.replay_prefix_limit = limit.max(1);
    }

    /// Loads a registry from the JSON wire format
    /// ([`geopriv_core::report::per_user_recommendation_to_json`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Parse`] for a malformed document, or the
    /// dataset-point instantiation error ([`AssignmentRegistry::load`]).
    pub fn from_json(
        factory: Box<dyn LppmFactory>,
        json: &str,
        master_seed: u64,
    ) -> Result<AssignmentRegistry, CoreError> {
        let recommendation = geopriv_core::report::per_user_recommendation_from_json(json)?;
        AssignmentRegistry::load(factory, &recommendation, master_seed)
    }

    /// The resolved assignment of one user. Users absent from the loaded
    /// recommendation get the dataset-level fallback — this never fails and
    /// never panics, whatever the id.
    pub fn assignment_for(&self, user: u64) -> Assignment {
        self.assignments.get(&user).cloned().unwrap_or_else(|| Assignment {
            point: self.dataset_point.clone(),
            source: AssignmentSource::DatasetFallback {
                reason: "user absent from the loaded recommendation".to_string(),
            },
        })
    }

    /// The dataset-level anchor point.
    pub fn dataset_point(&self) -> &ConfigPoint {
        &self.dataset_point
    }

    /// Number of users with a resolved (non-lazy) assignment.
    pub fn assigned_users(&self) -> usize {
        self.assignments.len()
    }

    /// Number of live protection sessions.
    pub fn active_sessions(&self) -> usize {
        self.sessions.lock().map.len()
    }

    /// Protects one record of one user's stream, opening her session on
    /// first contact. Returns the protected record and its 1-based position
    /// in her released stream. Live sessions are capped
    /// ([`AssignmentRegistry::set_max_sessions`]): at the cap, a new user
    /// evicts the least-recently-used session.
    ///
    /// # Errors
    ///
    /// Propagates the mechanism error (e.g. [`LppmError::Unstreamable`] for
    /// mechanisms that cannot protect record-at-a-time, or a
    /// replay-fallback session past its prefix cap); the session is left in
    /// place so the error is stable across retries.
    pub fn protect(&self, user: u64, record: Record) -> Result<(Record, usize), LppmError> {
        let user_id = UserId::new(user);
        let mut sessions = self.sessions.lock();
        sessions.tick += 1;
        let tick = sessions.tick;
        if !sessions.map.contains_key(&user) && sessions.map.len() >= self.max_sessions {
            // Evict the least-recently-used session. O(cap) scan, but
            // only on the hostile path (the map is already full of
            // other users) — a few hundred microseconds at the default
            // cap, against a map that would otherwise grow forever.
            // audit:allow(D1): `last_used` ticks are unique, so the hash-order scan has one minimum
            if let Some(&lru) = sessions.map.iter().min_by_key(|(_, s)| s.last_used).map(|(u, _)| u)
            {
                sessions.map.remove(&lru);
            }
        }
        let session = sessions.map.entry(user).or_insert_with(|| {
            let assignment = self.assignment_for(user);
            // A known user's point was validated at load time; the
            // fallback path re-uses the shared dataset mechanism.
            let lppm: Arc<dyn Lppm> = match self.factory.instantiate_at(&assignment.point) {
                Ok(lppm) => Arc::from(lppm),
                Err(_) => Arc::clone(&self.dataset_lppm),
            };
            let seed = derive_user_seed(self.master_seed, user_id);
            let stream = open_stream_bounded(lppm, user_id, seed, self.replay_prefix_limit);
            Session { stream, last_used: tick }
        });
        session.last_used = tick;
        let protected = session.stream.push(record)?;
        Ok((protected, session.stream.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_core::{
        GeoIndistinguishabilityFactory, MetricId, Recommendation, UserRecommendation, UserVerdict,
    };
    use geopriv_geo::{GeoPoint, Seconds};
    use geopriv_mobility::DatasetBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn point(epsilon: f64) -> ConfigPoint {
        ConfigPoint::from_named(vec![("epsilon".to_string(), epsilon)])
    }

    fn recommendation() -> PerUserRecommendation {
        PerUserRecommendation {
            dataset: Recommendation {
                point: point(0.01),
                feasible: vec![("epsilon".to_string(), (0.003, 0.06))],
                predictions: vec![(MetricId::new("poi-retrieval"), 0.1)],
            },
            users: vec![
                UserRecommendation {
                    user: UserId::new(1),
                    verdict: UserVerdict::Feasible,
                    point: point(0.02),
                    predictions: vec![(MetricId::new("poi-retrieval"), 0.08)],
                },
                UserRecommendation {
                    user: UserId::new(2),
                    verdict: UserVerdict::Infeasible { reason: "objectives conflict".into() },
                    point: point(0.01),
                    predictions: vec![],
                },
            ],
        }
    }

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn registry() -> Result<AssignmentRegistry, Box<dyn std::error::Error>> {
        Ok(AssignmentRegistry::load(
            Box::new(GeoIndistinguishabilityFactory::new()),
            &recommendation(),
            7,
        )?)
    }

    #[test]
    fn user_seeds_are_stable_and_distinct() {
        let a = derive_user_seed(7, UserId::new(1));
        assert_eq!(a, derive_user_seed(7, UserId::new(1)));
        assert_ne!(a, derive_user_seed(7, UserId::new(2)));
        assert_ne!(a, derive_user_seed(8, UserId::new(1)));
    }

    #[test]
    fn known_users_resolve_to_their_recommended_points() -> TestResult {
        let registry = registry()?;
        assert_eq!(registry.assigned_users(), 2);
        let own = registry.assignment_for(1);
        assert_eq!(own.source, AssignmentSource::Own);
        assert_eq!(own.point, point(0.02));
        let fallback = registry.assignment_for(2);
        assert_eq!(fallback.source.label(), "dataset-fallback");
        assert_eq!(fallback.point, point(0.01));
        assert!(fallback.to_json(2).contains("objectives conflict"));
        Ok(())
    }

    #[test]
    fn unknown_and_hostile_user_ids_fall_back_without_panicking() -> TestResult {
        let registry = registry()?;
        for user in [0, 3, 999_999, u64::MAX] {
            let assignment = registry.assignment_for(user);
            assert_eq!(assignment.point, point(0.01));
            assert!(matches!(assignment.source, AssignmentSource::DatasetFallback { .. }));
            // And protecting a record for that user works end to end.
            let record = Record::new(Seconds::new(0.0), GeoPoint::new(48.1, -1.67)?);
            let (protected, released) = registry.protect(user, record)?;
            assert_eq!(released, 1);
            assert!(protected.location().latitude().is_finite());
        }
        assert_eq!(registry.active_sessions(), 4);
        Ok(())
    }

    #[test]
    fn tampered_user_points_degrade_to_the_fallback_at_load() -> TestResult {
        let mut tampered = recommendation();
        tampered.users.first_mut().ok_or("fixture has no users")?.point = point(f64::NAN);
        let registry = AssignmentRegistry::load(
            Box::new(GeoIndistinguishabilityFactory::new()),
            &tampered,
            7,
        )?;
        let assignment = registry.assignment_for(1);
        assert_eq!(assignment.point, point(0.01));
        assert!(assignment.to_json(1).contains("failed to instantiate"));
        Ok(())
    }

    #[test]
    fn an_unusable_dataset_point_refuses_to_load() {
        let mut broken = recommendation();
        broken.dataset.point = point(-1.0);
        let result =
            AssignmentRegistry::load(Box::new(GeoIndistinguishabilityFactory::new()), &broken, 7);
        assert!(result.is_err());
    }

    #[test]
    fn session_map_is_capped_with_lru_eviction() -> TestResult {
        let mut registry = registry()?;
        registry.set_max_sessions(3);
        let record = Record::new(Seconds::new(0.0), GeoPoint::new(48.1, -1.67)?);
        let later = Record::new(Seconds::new(30.0), GeoPoint::new(48.11, -1.67)?);
        // A hostile sweep over many fresh user ids stays bounded at the cap.
        for user in 0..100 {
            registry.protect(user, record)?;
            assert!(registry.active_sessions() <= 3, "cap exceeded at user {user}");
        }
        assert_eq!(registry.active_sessions(), 3);
        // The most recent users survived: their streams advance past 1.
        assert_eq!(registry.protect(99, later)?.1, 2);
        // An evicted user's next update starts a fresh session at 1 — the
        // documented degradation, never a panic or unbounded growth.
        assert_eq!(registry.protect(0, record)?.1, 1);
        Ok(())
    }

    #[test]
    fn sessions_reproduce_the_offline_protection_bit_for_bit() -> TestResult {
        let registry = registry()?;
        let mut records: Vec<Record> = Vec::new();
        for i in 0..20 {
            records.push(Record::new(
                Seconds::new(f64::from(i) * 30.0),
                GeoPoint::new(48.11 + f64::from(i) * 1e-4, -1.67)?,
            ));
        }
        let mut online = Vec::new();
        for &record in &records {
            online.push(registry.protect(1, record)?.0);
        }

        // Offline reference: protect the same trace columnarly at user 1's
        // own point with the derived session seed.
        let factory = GeoIndistinguishabilityFactory::new();
        let lppm = factory.instantiate_at(&point(0.02))?;
        let timestamps: Vec<f64> = records.iter().map(|r| r.timestamp().as_f64()).collect();
        let latitudes: Vec<f64> = records.iter().map(|r| r.location().latitude()).collect();
        let longitudes: Vec<f64> = records.iter().map(|r| r.location().longitude()).collect();
        let view = geopriv_mobility::TraceView::from_columns(
            UserId::new(1),
            &timestamps,
            &latitudes,
            &longitudes,
        );
        let mut out = DatasetBuilder::with_capacity(1, records.len());
        let mut rng = StdRng::seed_from_u64(derive_user_seed(7, UserId::new(1)));
        lppm.protect_view(view, &mut out, &mut rng)?;
        let offline = out.finish()?;
        let trace = offline.trace_at(0);
        for (i, record) in online.iter().enumerate() {
            assert_eq!(*record, trace.record(i), "record {i} diverged online vs offline");
        }
        Ok(())
    }
}
