//! Request metrics: per-route/status counters and a latency histogram,
//! rendered in the Prometheus text exposition format on `GET /metrics`.
//!
//! The histogram uses fixed buckets (decade thirds from 100 µs to 1 s) so
//! the rendering is allocation-free on the hot path: recording a request is
//! a handful of atomic increments plus one short mutex hold for the
//! route/status counter map.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (seconds) of the latency histogram buckets; an implicit
/// `+Inf` bucket follows.
const BUCKET_BOUNDS_S: [f64; 9] = [0.0001, 0.000316, 0.001, 0.00316, 0.01, 0.0316, 0.1, 0.316, 1.0];

/// Counters and latency histogram for the serving request path.
///
/// Shared between the metrics middleware layer (which records) and the
/// `/metrics` route (which renders); both sides hold it behind an
/// [`std::sync::Arc`].
#[derive(Debug, Default)]
pub struct RequestMetrics {
    /// `(route label, status) → count`. BTreeMap so `/metrics` renders in a
    /// stable order.
    counters: Mutex<BTreeMap<(String, u16), u64>>,
    /// One cumulative-style counter per bucket bound, plus the +Inf bucket
    /// at the last index (stored non-cumulative, summed at render time).
    buckets: [AtomicU64; BUCKET_BOUNDS_S.len() + 1],
    latency_sum_micros: AtomicU64,
    latency_count: AtomicU64,
}

impl RequestMetrics {
    /// Creates an empty metrics store.
    pub fn new() -> RequestMetrics {
        RequestMetrics::default()
    }

    /// Records one finished request.
    pub fn record(&self, route: &str, status: u16, elapsed: Duration) {
        {
            let mut counters = self.counters.lock();
            *counters.entry((route.to_string(), status)).or_insert(0) += 1;
        }
        let seconds = elapsed.as_secs_f64();
        let bucket = BUCKET_BOUNDS_S
            .iter()
            .position(|&bound| seconds <= bound)
            .unwrap_or(BUCKET_BOUNDS_S.len());
        if let Some(counter) = self.buckets.get(bucket) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_sum_micros.fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded requests.
    pub fn total(&self) -> u64 {
        self.latency_count.load(Ordering::Relaxed)
    }

    /// Number of recorded requests for one route/status pair.
    pub fn count(&self, route: &str, status: u16) -> u64 {
        *self.counters.lock().get(&(route.to_string(), status)).unwrap_or(&0)
    }

    /// Renders the Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ =
            writeln!(out, "# HELP geopriv_requests_total Requests served, by route and status.");
        let _ = writeln!(out, "# TYPE geopriv_requests_total counter");
        for ((route, status), count) in self.counters.lock().iter() {
            let _ = writeln!(
                out,
                "geopriv_requests_total{{route=\"{route}\",status=\"{status}\"}} {count}"
            );
        }
        let _ = writeln!(out, "# HELP geopriv_request_seconds Request latency histogram.");
        let _ = writeln!(out, "# TYPE geopriv_request_seconds histogram");
        let mut cumulative = 0u64;
        // `buckets` has exactly one more slot than `BUCKET_BOUNDS_S`; zip
        // pairs the bounded buckets and leaves the +Inf slot for `last()`.
        for (counter, &bound) in self.buckets.iter().zip(BUCKET_BOUNDS_S.iter()) {
            cumulative += counter.load(Ordering::Relaxed);
            let _ = writeln!(out, "geopriv_request_seconds_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        if let Some(inf) = self.buckets.last() {
            cumulative += inf.load(Ordering::Relaxed);
        }
        let _ = writeln!(out, "geopriv_request_seconds_bucket{{le=\"+Inf\"}} {cumulative}");
        let sum = self.latency_sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        let _ = writeln!(out, "geopriv_request_seconds_sum {sum}");
        let _ = writeln!(
            out,
            "geopriv_request_seconds_count {}",
            self.latency_count.load(Ordering::Relaxed)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_counters_and_histogram() -> Result<(), Box<dyn std::error::Error>> {
        let metrics = RequestMetrics::new();
        metrics.record("/protect", 200, Duration::from_micros(50));
        metrics.record("/protect", 200, Duration::from_micros(500));
        metrics.record("/protect", 400, Duration::from_millis(2));
        metrics.record("/metrics", 200, Duration::from_secs(2));
        assert_eq!(metrics.total(), 4);
        assert_eq!(metrics.count("/protect", 200), 2);
        assert_eq!(metrics.count("/protect", 400), 1);
        assert_eq!(metrics.count("/nope", 200), 0);

        let text = metrics.render();
        assert!(text.contains("geopriv_requests_total{route=\"/protect\",status=\"200\"} 2"));
        assert!(text.contains("geopriv_requests_total{route=\"/protect\",status=\"400\"} 1"));
        assert!(text.contains("geopriv_requests_total{route=\"/metrics\",status=\"200\"} 1"));
        // 50 µs lands in the first bucket; cumulative counts are monotone and
        // the +Inf bucket equals the total.
        assert!(text.contains("geopriv_request_seconds_bucket{le=\"0.0001\"} 1"));
        assert!(text.contains("geopriv_request_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("geopriv_request_seconds_count 4"));
        // Cumulative bucket counts never decrease.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("geopriv_request_seconds_bucket"))
            .filter_map(|l| l.rsplit(' ').next())
            .map(str::parse)
            .collect::<Result<_, _>>()?;
        assert_eq!(counts.len(), BUCKET_BOUNDS_S.len() + 1);
        assert!(counts.iter().zip(counts.iter().skip(1)).all(|(a, b)| a <= b));
        Ok(())
    }

    #[test]
    fn render_is_byte_deterministic() {
        let metrics = RequestMetrics::new();
        // Routes inserted in non-sorted order; render must not depend on
        // insertion order or any hash seed.
        metrics.record("/protect", 200, Duration::from_micros(80));
        metrics.record("/assignment", 200, Duration::from_micros(120));
        metrics.record("/metrics", 503, Duration::from_millis(7));
        metrics.record("/protect", 400, Duration::from_micros(80));
        let first = metrics.render();
        let second = metrics.render();
        assert_eq!(first.as_bytes(), second.as_bytes());
        // And the counter section is sorted by (route, status).
        let counter_lines: Vec<&str> =
            first.lines().filter(|l| l.starts_with("geopriv_requests_total{")).collect();
        let mut sorted = counter_lines.clone();
        sorted.sort_unstable();
        assert_eq!(counter_lines, sorted);
    }
}
