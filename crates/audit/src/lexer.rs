//! A hand-rolled token-level Rust lexer.
//!
//! The lint engine only needs a *token* view of a source file — identifiers,
//! punctuation and literal/comment boundaries with correct line numbers —
//! never a parse tree. What it must get exactly right is the part that
//! trips up regex-based linters: nothing inside a string literal, raw
//! string, char literal, line comment or (nested) block comment may ever
//! leak out as an identifier token. The fixture suite and the lexer
//! proptests pin that contract.
//!
//! Handled syntax: line comments (`//`, `///`, `//!`), block comments with
//! nesting (`/* /* */ */`), string literals with escapes, byte strings,
//! char and byte-char literals (including `'\''`), lifetimes (`'a`,
//! `'static`, `'_`), raw strings (`r"…"`, `r#"…"#`, any hash depth), raw
//! byte strings (`br#"…"#`), raw identifiers (`r#type`) and numeric
//! literals (hex, floats, exponents, suffixes, tuple indices).

/// What a token is; the lexer keeps comment text (the allow/SAFETY escape
/// hatches live in comments) and discards literal contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `for`, `HashMap`, …).
    Ident(String),
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// A string/char/byte/numeric literal; contents deliberately dropped.
    Literal,
    /// A lifetime such as `'a` or `'_` (distinct from a char literal).
    Lifetime,
    /// A comment, with its full text (without the delimiters).
    Comment(String),
}

/// One token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind (and payload, for identifiers and comments).
    pub kind: TokKind,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Streaming cursor over the raw bytes; all Rust surface syntax the lexer
/// dispatches on is ASCII, so multi-byte UTF-8 only ever appears *inside*
/// comments, strings and identifiers-in-comments, where it is passed
/// through untouched.
struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }
}

/// Lexes a source file into tokens. Never fails: unterminated literals or
/// comments simply swallow the rest of the file, which is the only faithful
/// reading (the compiler would reject such a file anyway).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cursor = Cursor { src: src.as_bytes(), pos: 0, line: 1 };
    let mut tokens = Vec::new();
    while !cursor.eof() {
        let line = cursor.line;
        let b = cursor.peek(0);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cursor.bump();
            }
            b'/' if cursor.peek(1) == b'/' => {
                let text = lex_line_comment(&mut cursor);
                tokens.push(Token { kind: TokKind::Comment(text), line });
            }
            b'/' if cursor.peek(1) == b'*' => {
                let text = lex_block_comment(&mut cursor);
                tokens.push(Token { kind: TokKind::Comment(text), line });
            }
            b'"' => {
                lex_string(&mut cursor);
                tokens.push(Token { kind: TokKind::Literal, line });
            }
            b'\'' => {
                let kind = lex_quote(&mut cursor);
                tokens.push(Token { kind, line });
            }
            b'r' | b'b' if starts_special_literal(&cursor) => {
                lex_special_literal(&mut cursor, &mut tokens, line);
            }
            _ if is_ident_start(b) => {
                let name = lex_ident(&mut cursor);
                tokens.push(Token { kind: TokKind::Ident(name), line });
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut cursor);
                tokens.push(Token { kind: TokKind::Literal, line });
            }
            _ => {
                let c = cursor.bump();
                // Multi-byte UTF-8 outside literals can only be stray
                // (non-ASCII idents are not used in this workspace); skip
                // continuation bytes without emitting tokens for them.
                if c.is_ascii() {
                    tokens.push(Token { kind: TokKind::Punct(c as char), line });
                }
            }
        }
    }
    tokens
}

fn lex_line_comment(cursor: &mut Cursor) -> String {
    let start = cursor.pos + 2;
    while !cursor.eof() && cursor.peek(0) != b'\n' {
        cursor.bump();
    }
    String::from_utf8_lossy(&cursor.src[start..cursor.pos]).into_owned()
}

fn lex_block_comment(cursor: &mut Cursor) -> String {
    cursor.bump(); // `/`
    cursor.bump(); // `*`
    let start = cursor.pos;
    let mut depth = 1usize;
    while !cursor.eof() && depth > 0 {
        if cursor.peek(0) == b'/' && cursor.peek(1) == b'*' {
            depth += 1;
            cursor.bump();
            cursor.bump();
        } else if cursor.peek(0) == b'*' && cursor.peek(1) == b'/' {
            depth -= 1;
            cursor.bump();
            cursor.bump();
        } else {
            cursor.bump();
        }
    }
    let end = cursor.pos.saturating_sub(2).max(start);
    String::from_utf8_lossy(&cursor.src[start..end]).into_owned()
}

/// Consumes a `"…"` string body (opening quote at the cursor).
fn lex_string(cursor: &mut Cursor) {
    cursor.bump(); // opening `"`
    while !cursor.eof() {
        match cursor.bump() {
            b'\\' => {
                cursor.bump(); // whatever is escaped, including `"` and `\`
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Disambiguates `'a` / `'_` lifetimes from `'x'` / `'\n'` char literals.
fn lex_quote(cursor: &mut Cursor) -> TokKind {
    cursor.bump(); // `'`
    if cursor.peek(0) == b'\\' {
        // Escaped char literal: consume the escape, then scan to the
        // closing quote (covers `'\''`, `'\\'`, `'\u{1F600}'`).
        cursor.bump();
        cursor.bump();
        while !cursor.eof() && cursor.peek(0) != b'\'' {
            cursor.bump();
        }
        cursor.bump();
        return TokKind::Literal;
    }
    if is_ident_start(cursor.peek(0)) {
        // `'a'` is a char literal; `'a` (no closing quote after one ident
        // char run) is a lifetime. Scan the ident run first.
        let mut len = 0;
        while is_ident_continue(cursor.peek(len)) {
            len += 1;
        }
        if cursor.peek(len) == b'\'' && len == 1 {
            cursor.bump();
            cursor.bump();
            return TokKind::Literal;
        }
        for _ in 0..len {
            cursor.bump();
        }
        return TokKind::Lifetime;
    }
    // Plain char literal (`'0'`, `' '`, possibly multi-byte UTF-8).
    while !cursor.eof() && cursor.peek(0) != b'\'' {
        cursor.bump();
    }
    cursor.bump();
    TokKind::Literal
}

/// Whether the cursor sits on `r"`, `r#"`, `r#ident`, `b"`, `b'`, `br"`,
/// or `br#"` (rather than a plain identifier starting with r/b).
fn starts_special_literal(cursor: &Cursor) -> bool {
    let (first, mut at) = (cursor.peek(0), 1);
    if first == b'b' && cursor.peek(1) == b'r' {
        at = 2;
    }
    if first == b'b' && (cursor.peek(at) == b'"' || cursor.peek(at) == b'\'') {
        return true;
    }
    if (first == b'r' || (first == b'b' && at == 2)) && cursor.peek(at) == b'"' {
        return true;
    }
    if first == b'r' && cursor.peek(1) == b'#' {
        return true; // raw string `r#"` or raw ident `r#type`
    }
    first == b'b' && at == 2 && cursor.peek(2) == b'#'
}

fn lex_special_literal(cursor: &mut Cursor, tokens: &mut Vec<Token>, line: u32) {
    let first = cursor.peek(0);
    if first == b'b' && cursor.peek(1) == b'\'' {
        cursor.bump(); // `b`
        let kind = lex_quote(cursor);
        tokens.push(Token { kind, line });
        return;
    }
    if first == b'b' && cursor.peek(1) == b'"' {
        cursor.bump();
        lex_string(cursor);
        tokens.push(Token { kind: TokKind::Literal, line });
        return;
    }
    // From here: `r…` or `br…`.
    let mut at = if first == b'b' { 2 } else { 1 };
    let hash_start = at;
    while cursor.peek(at) == b'#' {
        at += 1;
    }
    let hashes = at - hash_start;
    if cursor.peek(at) == b'"' {
        // Raw (byte) string with `hashes` hash marks.
        for _ in 0..=at {
            cursor.bump(); // prefix, hashes and the opening quote
        }
        loop {
            if cursor.eof() {
                break;
            }
            if cursor.bump() == b'"' {
                let mut matched = 0;
                while matched < hashes && cursor.peek(0) == b'#' {
                    cursor.bump();
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
            }
        }
        tokens.push(Token { kind: TokKind::Literal, line });
    } else if first == b'r' && hashes == 1 && is_ident_start(cursor.peek(at)) {
        // Raw identifier `r#type`: emit the ident without the `r#`.
        cursor.bump();
        cursor.bump();
        let name = lex_ident(cursor);
        tokens.push(Token { kind: TokKind::Ident(name), line });
    } else {
        // Just an identifier starting with r/b after all (e.g. `b` alone —
        // starts_special_literal should not send us here, but stay total).
        let name = lex_ident(cursor);
        tokens.push(Token { kind: TokKind::Ident(name), line });
    }
}

fn lex_ident(cursor: &mut Cursor) -> String {
    let start = cursor.pos;
    while is_ident_continue(cursor.peek(0)) {
        cursor.bump();
    }
    String::from_utf8_lossy(&cursor.src[start..cursor.pos]).into_owned()
}

fn lex_number(cursor: &mut Cursor) {
    // Integer part: digits plus anything alphanumeric (covers 0x…, suffixes
    // like u64/f32, and separators `1_000`).
    consume_number_run(cursor);
    // Fractional part: only when the dot is followed by a digit (so `0..10`
    // and `1.max(…)` keep their dot as punctuation).
    if cursor.peek(0) == b'.' && cursor.peek(1).is_ascii_digit() {
        cursor.bump();
        consume_number_run(cursor);
    }
}

fn consume_number_run(cursor: &mut Cursor) {
    while is_ident_continue(cursor.peek(0)) {
        let b = cursor.bump();
        // Exponent sign: `1e-9`, `2.5E+3`.
        if (b == b'e' || b == b'E')
            && (cursor.peek(0) == b'+' || cursor.peek(0) == b'-')
            && cursor.peek(1).is_ascii_digit()
        {
            cursor.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).into_iter().filter_map(|t| t.ident().map(str::to_string)).collect()
    }

    #[test]
    fn idents_in_literals_and_comments_never_surface() {
        let src = r####"
            // thread_rng in a line comment
            /* thread_rng /* nested thread_rng */ still a comment */
            let a = "thread_rng";
            let b = r#"thread_rng"#;
            let c = b"thread_rng";
            let d = 'x';
            let e = '\'';
            let real = seeded_rng();
        "####;
        let found = idents(src);
        assert!(!found.contains(&"thread_rng".to_string()), "leaked from literal: {found:?}");
        assert!(found.contains(&"seeded_rng".to_string()));
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }";
        let found = idents(src);
        assert!(found.contains(&"str".to_string()));
        assert_eq!(lex(src).iter().filter(|t| t.kind == TokKind::Lifetime).count(), 3);
    }

    #[test]
    fn line_numbers_are_exact() {
        let src = "line1();\n\"two\nthree\"\nline4();\n";
        let tokens = lex(src);
        let line4 = tokens.iter().find(|t| t.ident() == Some("line4")).unwrap();
        assert_eq!(line4.line, 4);
        let string = tokens.iter().find(|t| t.kind == TokKind::Literal).unwrap();
        assert_eq!(string.line, 2);
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes_inside() {
        let src = r##"let x = r#"she said "hi" and thread_rng()"#; after();"##;
        let found = idents(src);
        assert!(!found.contains(&"thread_rng".to_string()));
        assert!(found.contains(&"after".to_string()));
    }

    #[test]
    fn comments_keep_their_text() {
        let src = "// audit:allow(D1): keys are unique\nnext();";
        let tokens = lex(src);
        match &tokens[0].kind {
            TokKind::Comment(text) => assert!(text.contains("audit:allow(D1)")),
            other => panic!("expected comment, got {other:?}"),
        }
    }

    #[test]
    fn numeric_literals_do_not_eat_ranges_or_methods() {
        let src = "for i in 0..10 { x[i] = 1.5e-3; t.0 = 2; }";
        let tokens = lex(src);
        let dots = tokens.iter().filter(|t| t.is_punct('.')).count();
        // `0..10` keeps two dots, `t.0` keeps one; `1.5e-3` keeps none.
        assert_eq!(dots, 3);
    }
}
