//! The audit engine: walks the workspace, applies the zone map to every
//! `.rs` file, and reconciles findings against the committed baseline.
//!
//! ## The ratchet
//!
//! `audit-baseline.txt` (repo root) lists grandfathered findings as
//! `(lint, count, file)` rows. `--check` passes only when the tree's
//! findings match the baseline *exactly*:
//!
//! - a file whose count **grows** fails (new debt is rejected), and
//! - a baseline row whose count **shrinks** fails too — fixing a finding
//!   must shrink the baseline in the same commit, so the ledger can never
//!   overstate the debt and silently re-absorb regressions.
//!
//! `--write-baseline` regenerates the file from the current tree.

use crate::config::{is_excluded, zones_for};
use crate::lints::{scan_source, Finding, Lint, ScanOptions};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// One finding with its repo-relative file path attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFinding {
    /// Repo-relative `/`-separated path.
    pub file: String,
    /// The finding itself.
    pub finding: Finding,
}

impl FileFinding {
    /// Renders as `file:line: ID message` — the one format everything
    /// (terminal, CI log, fixture tests) consumes.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} {}",
            self.file,
            self.finding.line,
            self.finding.lint.id(),
            self.finding.message
        )
    }
}

/// Result of scanning the whole tree.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Findings that survived allow-comments, sorted by (file, line, lint).
    pub findings: Vec<FileFinding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Scans every `.rs` file under `root` according to the zone map.
///
/// # Errors
///
/// Returns an error string when the tree cannot be walked or a file cannot
/// be read — IO problems, not lint findings.
pub fn scan_tree(root: &Path) -> Result<AuditReport, String> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    let mut report = AuditReport::default();
    for rel in files {
        let source = fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("failed to read {rel}: {e}"))?;
        report.files_scanned += 1;
        for finding in scan_file(&rel, &source) {
            report.findings.push(FileFinding { file: rel.clone(), finding });
        }
    }
    report.findings.sort_by(|a, b| {
        (&a.file, a.finding.line, a.finding.lint).cmp(&(&b.file, b.finding.line, b.finding.lint))
    });
    Ok(report)
}

/// Scans one file's source as the engine would: zone lookup, crate-root
/// detection, vendor mode, then the token-level lints. Exposed for the
/// fixture tests.
pub fn scan_file(rel: &str, source: &str) -> Vec<Finding> {
    let zones = zones_for(rel);
    if zones.is_empty() {
        return vec![Finding {
            line: 1,
            lint: Lint::Z0,
            message: format!(
                "`{rel}` is covered by no zone rule — add it to the zone map in \
                 crates/audit/src/config.rs (coverage must be explicit, never silent)"
            ),
        }];
    }
    let mut options = ScanOptions {
        vendor: rel.starts_with("vendor/"),
        require_forbid: !rel.starts_with("vendor/") && is_crate_root(rel),
        ..ScanOptions::default()
    };
    for zone in &zones {
        for &lint in zone.lints {
            if !options.lints.contains(&lint) {
                options.lints.push(lint);
            }
        }
        for &lint in zone.test_lints {
            if !options.test_lints.contains(&lint) {
                options.test_lints.push(lint);
            }
        }
    }
    scan_source(source, &options)
}

/// Whether `rel` is a crate-root file that must carry the forbid attribute.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<String>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let rel = match path.strip_prefix(root) {
            Ok(rel) => rel.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if is_excluded(&rel) || rel.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, files)?;
        } else if rel.ends_with(".rs") {
            files.push(rel);
        }
    }
    Ok(())
}

/// The committed baseline: grandfathered finding counts per (file, lint).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(file, lint id) → grandfathered count`, kept sorted by the map.
    pub counts: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Parses the baseline file format: `<lint-id> <count> <path>` rows,
    /// `#` comments and blank lines ignored.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed rows.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let (lint, count, path) = match (parts.next(), parts.next(), parts.next()) {
                (Some(l), Some(c), Some(p)) => (l, c, p),
                _ => {
                    return Err(format!(
                        "audit-baseline.txt:{}: expected `<lint> <count> <path>`",
                        i + 1
                    ))
                }
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("audit-baseline.txt:{}: bad count `{count}`", i + 1))?;
            if counts.insert((path.to_string(), lint.to_string()), count).is_some() {
                return Err(format!(
                    "audit-baseline.txt:{}: duplicate entry for {path} {lint}",
                    i + 1
                ));
            }
        }
        Ok(Baseline { counts })
    }

    /// Renders the baseline file from a report.
    pub fn render_from(report: &AuditReport) -> String {
        let mut out = String::from(
            "# audit-baseline.txt — grandfathered geopriv-audit findings.\n\
             # Format: <lint-id> <count> <path>. Ratchet rule: counts may only\n\
             # decrease. `cargo run -p geopriv-audit -- --check` fails if a file's\n\
             # count grows OR if this file lists findings that no longer exist\n\
             # (shrink the row — or delete it — in the same commit as the fix).\n\
             # Regenerate with `cargo run -p geopriv-audit -- --write-baseline`.\n",
        );
        for ((file, lint), count) in group_counts(report) {
            out.push_str(&format!("{lint} {count} {file}\n"));
        }
        out
    }

    /// Reconciles a report against the baseline; returns the error lines
    /// (empty = the gate passes).
    pub fn check(&self, report: &AuditReport) -> Vec<String> {
        let current = group_counts(report);
        let mut errors = Vec::new();
        for ((file, lint), count) in &current {
            let allowed = self.counts.get(&(file.clone(), lint.clone())).copied().unwrap_or(0);
            if *count > allowed {
                errors.push(format!(
                    "{file}: {count} {lint} finding(s), baseline allows {allowed} — fix them or \
                     audit:allow each with a reason"
                ));
            }
        }
        for ((file, lint), allowed) in &self.counts {
            let count = current.get(&(file.clone(), lint.clone())).copied().unwrap_or(0);
            if count < *allowed {
                errors.push(format!(
                    "ratchet: baseline lists {allowed} {lint} finding(s) for {file} but only \
                     {count} remain — shrink the baseline (cargo run -p geopriv-audit -- \
                     --write-baseline)"
                ));
            }
        }
        errors
    }
}

fn group_counts(report: &AuditReport) -> BTreeMap<(String, String), usize> {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in &report.findings {
        *counts.entry((f.file.clone(), f.finding.lint.id().to_string())).or_insert(0) += 1;
    }
    counts
}

/// Findings that the baseline does not cover, for display: everything in
/// files/lints whose count exceeds the baseline.
pub fn uncovered<'a>(report: &'a AuditReport, baseline: &Baseline) -> Vec<&'a FileFinding> {
    let current = group_counts(report);
    report
        .findings
        .iter()
        .filter(|f| {
            let key = (f.file.clone(), f.finding.lint.id().to_string());
            let allowed = baseline.counts.get(&key).copied().unwrap_or(0);
            current.get(&key).copied().unwrap_or(0) > allowed
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, u32, Lint)]) -> AuditReport {
        AuditReport {
            findings: entries
                .iter()
                .map(|(file, line, lint)| FileFinding {
                    file: (*file).to_string(),
                    finding: Finding { line: *line, lint: *lint, message: String::new() },
                })
                .collect(),
            files_scanned: 1,
        }
    }

    #[test]
    fn baseline_round_trips() {
        let r = report(&[("a.rs", 3, Lint::P1), ("a.rs", 9, Lint::P1), ("b.rs", 1, Lint::D1)]);
        let text = Baseline::render_from(&r);
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.counts.get(&("a.rs".into(), "P1".into())), Some(&2));
        assert!(parsed.check(&r).is_empty());
    }

    #[test]
    fn growth_and_shrink_both_fail_the_ratchet() {
        let baseline = Baseline::parse("P1 2 a.rs\n").unwrap();
        // Growth: 3 findings against 2 allowed.
        let grown = report(&[("a.rs", 1, Lint::P1), ("a.rs", 2, Lint::P1), ("a.rs", 3, Lint::P1)]);
        assert_eq!(baseline.check(&grown).len(), 1);
        // Shrink: 1 finding against 2 allowed — stale baseline.
        let shrunk = report(&[("a.rs", 1, Lint::P1)]);
        let errors = baseline.check(&shrunk);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("ratchet"));
        // A clean tree against a non-empty baseline is also stale.
        assert_eq!(baseline.check(&report(&[])).len(), 1);
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::parse("P1 two a.rs").is_err());
        assert!(Baseline::parse("P1 1").is_err());
        assert!(Baseline::parse("P1 1 a.rs\nP1 2 a.rs").is_err());
        assert!(Baseline::parse("# comment\n\nP1 1 a.rs").is_ok());
    }

    #[test]
    fn zone_lookup_drives_scan_file() {
        // A request-path file: P1 applies, D2 does not.
        let found = scan_file(
            "crates/serve/src/server.rs",
            "fn f(x: Option<u32>) -> u32 { let _t = Instant::now(); x.unwrap() }",
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lint, Lint::P1);
        // A deterministic-core file: D2 applies, P1 does not.
        let found = scan_file(
            "crates/core/src/modeling.rs",
            "fn f(x: Option<u32>) -> u32 { let _t = Instant::now(); x.unwrap() }",
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lint, Lint::D2);
        // An uncovered file is its own finding.
        let found = scan_file("rogue/file.rs", "fn f() {}");
        assert_eq!(found[0].lint, Lint::Z0);
    }
}
