//! The committed zone map: which contract lints apply where.
//!
//! This file **is** the configuration — reviewed and versioned like any
//! other code. Every `.rs` file in the repository must fall under at least
//! one zone (the engine reports `Z0` for uncovered files), so nothing is
//! ever exempted *by silence*: the bench binaries and the middleware timing
//! layer, for example, are allowed to read wall clocks because their zone
//! says so, visibly, below.
//!
//! Zone semantics:
//! - A file may match several zones; the lints applied are the union.
//! - Each rule lists which of its lints also apply inside `#[cfg(test)]` /
//!   `#[test]` regions. Panic-freedom (P1) deliberately *includes* tests on
//!   the serving request path (hostile-client tests must exercise error
//!   paths, not mask them with `unwrap`) and *excludes* them on the sweep
//!   hot path, where panicking assertions are the test mechanism itself.

use crate::lints::Lint;

/// One zone rule: a path prefix (or exact file) and the lints it enables.
#[derive(Debug, Clone, Copy)]
pub struct ZoneRule {
    /// Human-readable zone name, shown in findings and docs.
    pub zone: &'static str,
    /// Repo-relative path prefix (`/`-separated). A file matches when its
    /// path equals the prefix or starts with `prefix` + `/`.
    pub prefix: &'static str,
    /// Lints enforced in non-test code.
    pub lints: &'static [Lint],
    /// The subset of `lints` also enforced inside test regions.
    pub test_lints: &'static [Lint],
}

/// Lints for deterministic-core zones: iteration order (D1), wall clock
/// (D2), entropy seeding (D3) and the unsafe-code ban (U1). Inside test
/// regions only D3 and U1 apply — a test may iterate a scratch map to
/// assert set-equality, but may never draw entropy (derandomized tests are
/// themselves a workspace contract).
const DETERMINISTIC: &[Lint] = &[Lint::D1, Lint::D2, Lint::D3, Lint::U1];
const DETERMINISTIC_TESTS: &[Lint] = &[Lint::D3, Lint::U1];

/// Lints for the serving request path: panic-freedom (P1) everywhere,
/// including tests (see module docs), plus D3/U1.
const REQUEST_PATH: &[Lint] = &[Lint::P1, Lint::D3, Lint::U1];

/// Timing-allowed zones: D2 is deliberately absent — these measure wall
/// time as their purpose. Everything else still applies.
const TIMING: &[Lint] = &[Lint::D3, Lint::U1];

/// Test-support zones (integration tests, examples): deterministic seeding
/// and the unsafe ban still hold.
const SUPPORT: &[Lint] = &[Lint::D3, Lint::U1];

/// Vendored shims: the `SAFETY:`-comment rule (U1) only. Vendor code is
/// exempt from the crate-root `forbid(unsafe_code)` requirement but every
/// `unsafe` block must justify itself.
const VENDOR: &[Lint] = &[Lint::U1];

/// The committed zone map. Order matters only for display; matching is
/// by union over all rules.
pub const ZONES: &[ZoneRule] = &[
    // Deterministic core: bit-identical output is the contract.
    ZoneRule {
        zone: "deterministic-core",
        prefix: "crates/geo/src",
        lints: DETERMINISTIC,
        test_lints: DETERMINISTIC_TESTS,
    },
    ZoneRule {
        zone: "deterministic-core",
        prefix: "crates/mobility/src",
        lints: DETERMINISTIC,
        test_lints: DETERMINISTIC_TESTS,
    },
    ZoneRule {
        zone: "deterministic-core",
        prefix: "crates/lppm/src",
        lints: DETERMINISTIC,
        test_lints: DETERMINISTIC_TESTS,
    },
    ZoneRule {
        zone: "deterministic-core",
        prefix: "crates/metrics/src",
        lints: DETERMINISTIC,
        test_lints: DETERMINISTIC_TESTS,
    },
    ZoneRule {
        zone: "deterministic-core",
        prefix: "crates/analysis/src",
        lints: DETERMINISTIC,
        test_lints: DETERMINISTIC_TESTS,
    },
    ZoneRule {
        zone: "deterministic-core",
        prefix: "crates/core/src",
        lints: DETERMINISTIC,
        test_lints: DETERMINISTIC_TESTS,
    },
    // The umbrella facade crate re-exports the deterministic pipeline.
    ZoneRule {
        zone: "deterministic-core",
        prefix: "src",
        lints: DETERMINISTIC,
        test_lints: DETERMINISTIC_TESTS,
    },
    // The serving layer's deterministic files: the registry derives seeds
    // and replays streams; the protocol renders wire bytes. Both must be
    // bit-stable, so they sit in the deterministic zone *and* the request
    // path below.
    ZoneRule {
        zone: "deterministic-core",
        prefix: "crates/serve/src/registry.rs",
        lints: DETERMINISTIC,
        test_lints: DETERMINISTIC_TESTS,
    },
    ZoneRule {
        zone: "deterministic-core",
        prefix: "crates/serve/src/protocol.rs",
        lints: DETERMINISTIC,
        test_lints: DETERMINISTIC_TESTS,
    },
    // The auditor itself renders findings and the baseline; its output
    // order is part of the ratchet contract.
    ZoneRule {
        zone: "deterministic-core",
        prefix: "crates/audit/src",
        lints: DETERMINISTIC,
        test_lints: DETERMINISTIC_TESTS,
    },
    // Request path: a hostile client must not be able to panic the server.
    ZoneRule {
        zone: "request-path",
        prefix: "crates/serve/src",
        lints: REQUEST_PATH,
        test_lints: REQUEST_PATH,
    },
    // Sweep hot path: PR 7 replaced the hot-path `expect`s with typed
    // `CoreError::Internal`; P1 keeps them out. Tests are exempt from P1
    // here (assertions panic by design) but D1–D3 still apply through the
    // deterministic-core rule above.
    ZoneRule {
        zone: "sweep-hot-path",
        prefix: "crates/core/src/experiment.rs",
        lints: &[Lint::P1],
        test_lints: &[],
    },
    ZoneRule {
        zone: "sweep-hot-path",
        prefix: "crates/core/src/campaign.rs",
        lints: &[Lint::P1],
        test_lints: &[],
    },
    // The measurement cache decodes untrusted bytes (a corrupted file must
    // fall back, never panic) and sits on the cached sweep's hot path.
    ZoneRule {
        zone: "sweep-hot-path",
        prefix: "crates/core/src/cache.rs",
        lints: &[Lint::P1],
        test_lints: &[],
    },
    // Timing-allowed zones — wall-clock reads are their purpose. Explicit
    // entries, not silent omissions (see module docs).
    ZoneRule { zone: "timing", prefix: "crates/bench", lints: TIMING, test_lints: TIMING },
    ZoneRule {
        zone: "timing",
        prefix: "crates/serve/src/middleware.rs",
        lints: TIMING,
        test_lints: TIMING,
    },
    ZoneRule {
        zone: "timing",
        prefix: "crates/serve/src/server.rs",
        lints: TIMING,
        test_lints: TIMING,
    },
    ZoneRule {
        zone: "timing",
        prefix: "crates/serve/src/client.rs",
        lints: TIMING,
        test_lints: TIMING,
    },
    // Integration tests and examples.
    ZoneRule { zone: "tests", prefix: "tests", lints: SUPPORT, test_lints: SUPPORT },
    ZoneRule { zone: "tests", prefix: "crates/geo/tests", lints: SUPPORT, test_lints: SUPPORT },
    ZoneRule {
        zone: "tests",
        prefix: "crates/mobility/tests",
        lints: SUPPORT,
        test_lints: SUPPORT,
    },
    ZoneRule { zone: "tests", prefix: "crates/lppm/tests", lints: SUPPORT, test_lints: SUPPORT },
    ZoneRule { zone: "tests", prefix: "crates/metrics/tests", lints: SUPPORT, test_lints: SUPPORT },
    ZoneRule {
        zone: "tests",
        prefix: "crates/analysis/tests",
        lints: SUPPORT,
        test_lints: SUPPORT,
    },
    ZoneRule { zone: "tests", prefix: "crates/core/tests", lints: SUPPORT, test_lints: SUPPORT },
    ZoneRule { zone: "tests", prefix: "crates/serve/tests", lints: SUPPORT, test_lints: SUPPORT },
    ZoneRule { zone: "tests", prefix: "crates/audit/tests", lints: SUPPORT, test_lints: SUPPORT },
    ZoneRule { zone: "examples", prefix: "examples", lints: SUPPORT, test_lints: SUPPORT },
    // Vendored shims: `// SAFETY:` justification on every unsafe block.
    ZoneRule { zone: "vendor", prefix: "vendor", lints: VENDOR, test_lints: VENDOR },
];

/// Paths never scanned (build output, the linter's own hostile fixtures).
pub const EXCLUDED: &[&str] = &["target", "crates/audit/tests/fixtures", ".git"];

/// Whether `path` (repo-relative, `/`-separated) is excluded from scanning.
pub fn is_excluded(path: &str) -> bool {
    EXCLUDED.iter().any(|prefix| matches_prefix(path, prefix))
}

/// All zone rules matching `path`.
pub fn zones_for(path: &str) -> Vec<&'static ZoneRule> {
    ZONES.iter().filter(|rule| matches_prefix(path, rule.prefix)).collect()
}

fn matches_prefix(path: &str, prefix: &str) -> bool {
    path == prefix || (path.starts_with(prefix) && path.as_bytes().get(prefix.len()) == Some(&b'/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_both_deterministic_and_request_path() {
        let zones: Vec<&str> =
            zones_for("crates/serve/src/registry.rs").iter().map(|z| z.zone).collect();
        assert!(zones.contains(&"deterministic-core"));
        assert!(zones.contains(&"request-path"));
    }

    #[test]
    fn middleware_is_timing_allowed_but_still_request_path() {
        let zones: Vec<&str> =
            zones_for("crates/serve/src/middleware.rs").iter().map(|z| z.zone).collect();
        assert!(zones.contains(&"timing"));
        assert!(zones.contains(&"request-path"));
        // And no deterministic zone: D2 must not apply.
        assert!(!zones.contains(&"deterministic-core"));
    }

    #[test]
    fn prefix_matching_respects_path_boundaries() {
        assert!(matches_prefix("src/lib.rs", "src"));
        assert!(!matches_prefix("srcery/lib.rs", "src"));
        assert!(matches_prefix("vendor/rand/src/lib.rs", "vendor"));
    }

    #[test]
    fn fixtures_are_excluded_from_scanning() {
        assert!(is_excluded("crates/audit/tests/fixtures/d1_bad.rs"));
        assert!(!is_excluded("crates/audit/tests/fixtures.rs"));
    }
}
