//! The zone-aware contract lints and their token-level detectors.
//!
//! Each lint has a stable id used in findings, in `audit:allow(<id>)`
//! escape hatches and in the committed baseline. The checks are heuristic
//! by design — a token-level view has no type information — but every
//! heuristic errs toward *reporting*, and the allow/baseline machinery is
//! the pressure valve. See `docs/contracts.md` for the contract each lint
//! enforces and the historical bug it guards against.

use crate::lexer::{lex, TokKind, Token};

/// The contract lints. `A1`/`A2`/`Z0` are meta-lints raised by the engine
/// itself (malformed allow, unused allow, file not covered by the zone
/// map); they cannot be allowed away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// `HashMap`/`HashSet` iteration in deterministic or output-rendering
    /// code: hash order varies across runs and toolchains.
    D1,
    /// `Instant::now` / `SystemTime::now` in deterministic zones.
    D2,
    /// RNG construction from ambient entropy (`thread_rng`, `from_entropy`,
    /// `rand::random`): seeds must flow through the `derive_*_seed` family.
    D3,
    /// Panic surfaces (`unwrap`, `expect`, `panic!`, `unreachable!`,
    /// `todo!`, `unimplemented!`, slice indexing without `get`) on the
    /// request path and the sweep hot path.
    P1,
    /// Unsafe-code hygiene: non-vendor crate roots carry
    /// `#![forbid(unsafe_code)]`; vendor `unsafe` blocks carry `// SAFETY:`.
    U1,
    /// Malformed `audit:allow` (unknown lint id or missing reason).
    A1,
    /// An `audit:allow` that suppresses nothing (stale escape hatch).
    A2,
    /// A scanned file matched by no zone rule: coverage must be explicit.
    Z0,
}

impl Lint {
    /// The stable id used in findings, allows and the baseline.
    pub fn id(self) -> &'static str {
        match self {
            Lint::D1 => "D1",
            Lint::D2 => "D2",
            Lint::D3 => "D3",
            Lint::P1 => "P1",
            Lint::U1 => "U1",
            Lint::A1 => "A1",
            Lint::A2 => "A2",
            Lint::Z0 => "Z0",
        }
    }

    /// Parses a lint id as written in `audit:allow(<id>)`. Only the
    /// allowable (non-meta) lints parse.
    pub fn parse_allowable(id: &str) -> Option<Lint> {
        match id {
            "D1" => Some(Lint::D1),
            "D2" => Some(Lint::D2),
            "D3" => Some(Lint::D3),
            "P1" => Some(Lint::P1),
            "U1" => Some(Lint::U1),
            _ => None,
        }
    }
}

/// One finding within a single file (the engine attaches the path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// 1-based line number.
    pub line: u32,
    /// The violated lint.
    pub lint: Lint,
    /// Human-readable explanation pointing at the offending construct.
    pub message: String,
}

/// How one file should be scanned (derived from its zone memberships).
#[derive(Debug, Clone, Default)]
pub struct ScanOptions {
    /// Lints enforced outside test regions.
    pub lints: Vec<Lint>,
    /// Lints enforced inside `#[cfg(test)]` / `#[test]` regions.
    pub test_lints: Vec<Lint>,
    /// Whether the file is a crate root that must carry
    /// `#![forbid(unsafe_code)]` (U1).
    pub require_forbid: bool,
    /// Vendor mode for U1: `unsafe` is tolerated when justified by a
    /// `// SAFETY:` comment instead of being banned outright.
    pub vendor: bool,
}

/// An `audit:allow(<id>): <reason>` escape hatch parsed from a comment.
#[derive(Debug, Clone)]
struct Allow {
    line: u32,
    lint: Lint,
    used: bool,
}

/// Scans one file's source under the given options and returns its
/// findings, sorted by line then lint id, with allows already applied and
/// allow-discipline findings (A1/A2) included.
pub fn scan_source(src: &str, options: &ScanOptions) -> Vec<Finding> {
    let tokens = lex(src);
    let sig: Vec<&Token> =
        tokens.iter().filter(|t| !matches!(t.kind, TokKind::Comment(_))).collect();
    let comments: Vec<(u32, &str)> = tokens
        .iter()
        .filter_map(|t| match &t.kind {
            TokKind::Comment(text) => Some((t.line, text.as_str())),
            _ => None,
        })
        .collect();

    let test_regions = test_regions(&sig);
    let in_tests = |line: u32| test_regions.iter().any(|&(lo, hi)| line >= lo && line <= hi);
    let enabled = |lint: Lint, line: u32| {
        if in_tests(line) {
            options.test_lints.contains(&lint)
        } else {
            options.lints.contains(&lint)
        }
    };

    let mut raw: Vec<Finding> = Vec::new();
    if options.lints.contains(&Lint::D1) || options.test_lints.contains(&Lint::D1) {
        detect_d1(&sig, &mut raw);
    }
    if options.lints.contains(&Lint::D2) || options.test_lints.contains(&Lint::D2) {
        detect_d2(&sig, &mut raw);
    }
    if options.lints.contains(&Lint::D3) || options.test_lints.contains(&Lint::D3) {
        detect_d3(&sig, &mut raw);
    }
    if options.lints.contains(&Lint::P1) || options.test_lints.contains(&Lint::P1) {
        detect_p1(&sig, &mut raw);
    }
    if options.lints.contains(&Lint::U1) || options.test_lints.contains(&Lint::U1) {
        detect_u1(&sig, &comments, options, &mut raw);
    }
    raw.retain(|f| enabled(f.lint, f.line));

    // Dedup (several detectors can hit one construct on one line).
    raw.sort_by_key(|f| (f.line, f.lint));
    raw.dedup_by(|a, b| a.line == b.line && a.lint == b.lint);

    // Parse allows; malformed ones are findings themselves.
    let mut allows: Vec<Allow> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    for (line, text) in &comments {
        parse_allows(*line, text, &mut allows, &mut findings);
    }

    // Apply allows: a finding is suppressed by a matching allow on the same
    // line (trailing comment) or the immediately preceding line.
    for finding in raw {
        let allow = allows.iter_mut().find(|a| {
            a.lint == finding.lint && (a.line == finding.line || a.line + 1 == finding.line)
        });
        match allow {
            Some(a) => a.used = true,
            None => findings.push(finding),
        }
    }
    for allow in &allows {
        if !allow.used {
            findings.push(Finding {
                line: allow.line,
                lint: Lint::A2,
                message: format!(
                    "unused audit:allow({}) — it suppresses nothing on this or the next line; \
                     remove it",
                    allow.lint.id()
                ),
            });
        }
    }

    findings.sort_by_key(|f| (f.line, f.lint));
    findings
}

/// Parses every allow directive in one comment's text. A directive must
/// *start* the comment (`// audit:allow(P1): reason`); prose that merely
/// mentions the syntax (docs, messages) is not a directive.
fn parse_allows(line: u32, text: &str, allows: &mut Vec<Allow>, findings: &mut Vec<Finding>) {
    if !text.trim_start().starts_with("audit:allow") {
        return;
    }
    let mut rest = text;
    while let Some(at) = rest.find("audit:allow") {
        rest = &rest[at + "audit:allow".len()..];
        let Some(open) = rest.strip_prefix('(') else {
            findings.push(Finding {
                line,
                lint: Lint::A1,
                message: "malformed audit:allow — expected `audit:allow(<lint-id>): <reason>`"
                    .to_string(),
            });
            continue;
        };
        let Some(close) = open.find(')') else {
            findings.push(Finding {
                line,
                lint: Lint::A1,
                message: "malformed audit:allow — unclosed lint id".to_string(),
            });
            break;
        };
        let id = &open[..close];
        rest = &open[close + 1..];
        let Some(lint) = Lint::parse_allowable(id) else {
            findings.push(Finding {
                line,
                lint: Lint::A1,
                message: format!("audit:allow names unknown or non-allowable lint `{id}`"),
            });
            continue;
        };
        let reason = rest.strip_prefix(':').map(str::trim_start).unwrap_or("");
        if reason.is_empty() {
            findings.push(Finding {
                line,
                lint: Lint::A1,
                message: format!(
                    "audit:allow({id}) without a reason — write `audit:allow({id}): <why this \
                     is sound>`"
                ),
            });
            continue;
        }
        allows.push(Allow { line, lint, used: false });
    }
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items.
fn test_regions(sig: &[&Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        if sig[i].is_punct('#') && i + 1 < sig.len() && sig[i + 1].is_punct('[') {
            let start_line = sig[i].line;
            let (attr_end, is_test) = parse_attribute(sig, i + 1);
            if is_test {
                if let Some((_, end_line)) = item_body(sig, attr_end + 1) {
                    regions.push((start_line, end_line));
                }
            }
            i = attr_end + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// Parses an attribute starting at its `[`; returns (index of `]`, whether
/// it gates on test). `#[cfg(not(test))]` gates on *not* test and is
/// excluded.
fn parse_attribute(sig: &[&Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut i = open;
    while i < sig.len() {
        match &sig[i].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i, has_test && !has_not);
                }
            }
            TokKind::Ident(name) if name == "test" => has_test = true,
            TokKind::Ident(name) if name == "not" => has_not = true,
            _ => {}
        }
        i += 1;
    }
    (sig.len().saturating_sub(1), false)
}

/// From the token after an attribute, skips further attributes and finds
/// the item's body: returns (index, line) of the closing `}` (or the `;`
/// of a body-less item).
fn item_body(sig: &[&Token], mut i: usize) -> Option<(usize, u32)> {
    // Skip stacked attributes and doc attributes.
    while i + 1 < sig.len() && sig[i].is_punct('#') && sig[i + 1].is_punct('[') {
        let (end, _) = parse_attribute(sig, i + 1);
        i = end + 1;
    }
    // Find the opening `{` of the body (or `;` for a body-less item),
    // tracking only ()/[] nesting — an item header contains no braces.
    let mut depth = 0i32;
    while i < sig.len() {
        match &sig[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct(';') if depth == 0 => return Some((i, sig[i].line)),
            TokKind::Punct('{') if depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    // Match braces to the end of the body.
    let mut braces = 0i32;
    while i < sig.len() {
        match &sig[i].kind {
            TokKind::Punct('{') => braces += 1,
            TokKind::Punct('}') => {
                braces -= 1;
                if braces == 0 {
                    return Some((i, sig[i].line));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Names declared (or ascribed) in this file with a `HashMap`/`HashSet`
/// type, including through wrappers (`Mutex<HashMap<…>>`) and paths
/// (`std::collections::HashMap`).
fn hash_typed_names(sig: &[&Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..sig.len() {
        let is_hash = matches!(sig[i].ident(), Some("HashMap" | "HashSet"));
        if !is_hash {
            continue;
        }
        // Walk left over path segments (`std :: collections ::`), generic
        // wrappers (`Mutex <`) and references to reach `:` or `=`.
        let mut p = i as isize - 1;
        loop {
            if p >= 2
                && sig[p as usize].is_punct(':')
                && sig[p as usize - 1].is_punct(':')
                && sig[p as usize - 2].ident().is_some()
            {
                p -= 3; // `segment ::`
            } else if p >= 1
                && sig[p as usize].is_punct('<')
                && sig[p as usize - 1].ident().is_some()
            {
                p -= 2; // `Wrapper <`
            } else if p >= 0
                && (sig[p as usize].is_punct('&')
                    || sig[p as usize].ident() == Some("mut")
                    || sig[p as usize].ident() == Some("dyn"))
            {
                p -= 1;
            } else {
                break;
            }
        }
        if p < 1 {
            continue;
        }
        let (sep, before) = (sig[p as usize], sig[p as usize - 1]);
        let ascription = sep.is_punct(':')
            && !(p >= 2 && sig[p as usize - 1].is_punct(':'))
            && before.ident().is_some();
        let assignment = sep.is_punct('=') && before.ident().is_some();
        if ascription || assignment {
            if let Some(name) = before.ident() {
                if name != "mut" && !names.iter().any(|n| n == name) {
                    names.push(name.to_string());
                }
            }
        }
    }
    names
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn d1_message(name: &str) -> String {
    format!(
        "iteration over hash-ordered `{name}` (HashMap/HashSet) — hash order is \
         nondeterministic; use BTreeMap/BTreeSet or collect and sort"
    )
}

/// D1: iteration over names with a HashMap/HashSet-bearing type.
fn detect_d1(sig: &[&Token], findings: &mut Vec<Finding>) {
    let names = hash_typed_names(sig);
    if names.is_empty() {
        return;
    }
    // `.iter()`-family calls whose receiver chain touches a hash map name.
    for i in 0..sig.len() {
        if !sig[i].is_punct('.') {
            continue;
        }
        let Some(method) = sig.get(i + 1).and_then(|t| t.ident()) else { continue };
        if !ITER_METHODS.contains(&method) || !sig.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        for name in receiver_chain(sig, i) {
            if names.contains(&name) {
                findings.push(Finding {
                    line: sig[i + 1].line,
                    lint: Lint::D1,
                    message: d1_message(&name),
                });
                break;
            }
        }
    }
    // `for pat in <expr> {` where <expr> mentions a hash map name that is
    // not immediately followed by `.` (method calls are judged above).
    let mut i = 0;
    while i < sig.len() {
        if sig[i].ident() != Some("for") {
            i += 1;
            continue;
        }
        let Some(in_at) = find_in_keyword(sig, i + 1) else {
            i += 1;
            continue;
        };
        let mut j = in_at + 1;
        let mut depth = 0i32;
        while j < sig.len() {
            match &sig[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct('{') if depth == 0 => break,
                TokKind::Ident(name)
                    if names.iter().any(|n| n == name)
                        && !sig.get(j + 1).is_some_and(|t| t.is_punct('.')) =>
                {
                    findings.push(Finding {
                        line: sig[j].line,
                        lint: Lint::D1,
                        message: d1_message(name),
                    });
                }
                _ => {}
            }
            j += 1;
        }
        i = j;
    }
}

/// The identifiers along a method-call receiver chain, walking left from
/// the `.` at `dot` over `)`/`]` groups, `.segment` hops and `::` paths.
fn receiver_chain(sig: &[&Token], dot: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut i = dot as isize - 1;
    while i >= 0 {
        match &sig[i as usize].kind {
            TokKind::Punct(')') | TokKind::Punct(']') => {
                let close = if sig[i as usize].is_punct(')') { ')' } else { ']' };
                let open = if close == ')' { '(' } else { '[' };
                let mut depth = 0i32;
                while i >= 0 {
                    if sig[i as usize].is_punct(close) {
                        depth += 1;
                    } else if sig[i as usize].is_punct(open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i -= 1;
                }
                i -= 1;
            }
            TokKind::Ident(name) => {
                chain.push(name.clone());
                if i >= 1 && sig[i as usize - 1].is_punct('.') {
                    i -= 2;
                } else if i >= 2
                    && sig[i as usize - 1].is_punct(':')
                    && sig[i as usize - 2].is_punct(':')
                {
                    i -= 3;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    chain
}

/// Finds the `in` keyword of a `for` loop, skipping the pattern.
fn find_in_keyword(sig: &[&Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, token) in sig.iter().enumerate().skip(from) {
        match &token.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Ident(name) if name == "in" && depth == 0 => return Some(k),
            TokKind::Punct('{') => return None, // malformed / not a loop
            _ => {}
        }
    }
    None
}

/// D2: `Instant::now` / `SystemTime::now`.
fn detect_d2(sig: &[&Token], findings: &mut Vec<Finding>) {
    for i in 0..sig.len() {
        let Some(name @ ("Instant" | "SystemTime")) = sig[i].ident() else { continue };
        let now = sig.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && sig.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && sig.get(i + 3).and_then(|t| t.ident()) == Some("now");
        if now {
            findings.push(Finding {
                line: sig[i].line,
                lint: Lint::D2,
                message: format!(
                    "wall-clock read `{name}::now` in a deterministic zone — time must come in \
                     as data, never be sampled"
                ),
            });
        }
    }
}

/// D3: RNG construction from ambient entropy.
fn detect_d3(sig: &[&Token], findings: &mut Vec<Finding>) {
    for i in 0..sig.len() {
        match sig[i].ident() {
            Some(name @ ("thread_rng" | "from_entropy")) => findings.push(Finding {
                line: sig[i].line,
                lint: Lint::D3,
                message: format!(
                    "entropy-seeded RNG (`{name}`) — seeds must flow through the \
                     `derive_*_seed` family so every stream is replayable"
                ),
            }),
            Some("rand")
                if sig.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && sig.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && sig.get(i + 3).and_then(|t| t.ident()) == Some("random") =>
            {
                findings.push(Finding {
                    line: sig[i].line,
                    lint: Lint::D3,
                    message: "entropy-seeded RNG (`rand::random`) — seeds must flow through the \
                              `derive_*_seed` family so every stream is replayable"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// P1: panic surfaces.
fn detect_p1(sig: &[&Token], findings: &mut Vec<Finding>) {
    for i in 0..sig.len() {
        // `.unwrap()` / `.expect(…)` — `unwrap_or*` are distinct idents and
        // never match.
        if sig[i].is_punct('.') {
            if let Some(name @ ("unwrap" | "expect")) = sig.get(i + 1).and_then(|t| t.ident()) {
                if sig.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                    findings.push(Finding {
                        line: sig[i + 1].line,
                        lint: Lint::P1,
                        message: format!(
                            "`.{name}()` on a panic-free path — return a typed error instead"
                        ),
                    });
                }
            }
        }
        // panic-family macros.
        if let Some(name) = sig[i].ident() {
            if PANIC_MACROS.contains(&name) && sig.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                findings.push(Finding {
                    line: sig[i].line,
                    lint: Lint::P1,
                    message: format!(
                        "`{name}!` on a panic-free path — return a typed error instead"
                    ),
                });
            }
        }
        // Indexing: `expr[…]` can panic; `expr[..]` (full range) cannot.
        // A `[` after a keyword (`for x in [1, 2]`, `return [0; 4]`) opens
        // an array literal, not an index expression.
        if sig[i].is_punct('[') && i > 0 {
            // `mut` covers slice types (`&mut [T]`): the keyword can never
            // immediately precede a real index expression.
            const KEYWORDS: &[&str] = &[
                "in", "return", "else", "match", "break", "continue", "move", "loop", "while",
                "if", "unsafe", "do", "yield", "mut",
            ];
            let indexes = match &sig[i - 1].kind {
                TokKind::Ident(name) => !KEYWORDS.contains(&name.as_str()),
                TokKind::Punct(')') | TokKind::Punct(']') => true,
                _ => false,
            };
            let full_range = sig.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && sig.get(i + 2).is_some_and(|t| t.is_punct('.'))
                && sig.get(i + 3).is_some_and(|t| t.is_punct(']'));
            if indexes && !full_range {
                findings.push(Finding {
                    line: sig[i].line,
                    lint: Lint::P1,
                    message: "indexing without `get` may panic — use `.get(…)` and handle `None`"
                        .to_string(),
                });
            }
        }
    }
}

/// U1: unsafe-code hygiene.
fn detect_u1(
    sig: &[&Token],
    comments: &[(u32, &str)],
    options: &ScanOptions,
    findings: &mut Vec<Finding>,
) {
    if options.require_forbid {
        let has_forbid = sig.windows(6).any(|w| {
            w[0].is_punct('#')
                && w[1].is_punct('!')
                && w[2].is_punct('[')
                && w[3].ident() == Some("forbid")
                && w[4].is_punct('(')
                && w[5].ident() == Some("unsafe_code")
        });
        if !has_forbid {
            findings.push(Finding {
                line: 1,
                lint: Lint::U1,
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }
    for token in sig {
        if token.ident() != Some("unsafe") {
            continue;
        }
        if options.vendor {
            let justified = comments.iter().any(|(line, text)| {
                *line + 3 >= token.line && *line <= token.line && text.contains("SAFETY")
            });
            if !justified {
                findings.push(Finding {
                    line: token.line,
                    lint: Lint::U1,
                    message: "vendor `unsafe` without a `// SAFETY:` comment on or just above \
                              this line"
                        .to_string(),
                });
            }
        } else {
            findings.push(Finding {
                line: token.line,
                lint: Lint::U1,
                message: "`unsafe` outside vendor code — the workspace forbids it".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str, lints: &[Lint]) -> Vec<(u32, Lint)> {
        let options = ScanOptions {
            lints: lints.to_vec(),
            test_lints: lints.to_vec(),
            ..ScanOptions::default()
        };
        scan_source(src, &options).into_iter().map(|f| (f.line, f.lint)).collect()
    }

    #[test]
    fn d1_flags_hash_map_iteration_through_wrappers_and_chains() {
        let src = "struct S { counters: Mutex<HashMap<K, u64>> }\n\
                   fn render(s: &S) {\n\
                   for (k, v) in s.counters.lock().iter() {}\n\
                   }\n";
        assert_eq!(scan(src, &[Lint::D1]), vec![(3, Lint::D1)]);
    }

    #[test]
    fn d1_ignores_btreemap_and_non_iteration() {
        let src = "fn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); for x in m.iter() {} \
                   let h: HashMap<u32, u32> = HashMap::new(); h.get(&1); h.insert(1, 2); }";
        assert_eq!(scan(src, &[Lint::D1]), vec![]);
    }

    #[test]
    fn d1_flags_direct_for_loops_over_maps() {
        let src = "fn f(seen: &HashSet<u32>) {\nfor x in seen {}\n}";
        assert_eq!(scan(src, &[Lint::D1]), vec![(2, Lint::D1)]);
    }

    #[test]
    fn d1_allows_len_in_loop_bounds() {
        let src = "fn f(m: &HashMap<u32, u32>) { for i in 0..m.len() { let _ = i; } }";
        assert_eq!(scan(src, &[Lint::D1]), vec![]);
    }

    #[test]
    fn p1_distinguishes_unwrap_from_unwrap_or() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(scan(src, &[Lint::P1]), vec![(2, Lint::P1)]);
    }

    #[test]
    fn p1_flags_indexing_but_not_full_range_or_types() {
        let src = "fn f(xs: &[u32], i: usize) -> u32 { let _all = &xs[..]; xs[i] }\n\
                   fn g(x: [u8; 4]) -> u8 { x.len() as u8 }\n\
                   fn h(xs: &mut [u32]) { xs.sort() }\n";
        assert_eq!(scan(src, &[Lint::P1]), vec![(1, Lint::P1)]);
    }

    #[test]
    fn allows_suppress_and_must_be_used_and_reasoned() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // audit:allow(P1): checked non-empty two lines up\n\
                   x.unwrap()\n\
                   }\n\
                   // audit:allow(P1): nothing here\n\
                   fn g() {}\n\
                   fn h(x: Option<u32>) -> u32 { x.unwrap() } // audit:allow(P1)\n";
        let found = scan(src, &[Lint::P1]);
        // Line 3 suppressed; line 5 allow unused (A2); line 7 allow lacks a
        // reason (A1) so the unwrap stands too.
        assert_eq!(found, vec![(5, Lint::A2), (7, Lint::P1), (7, Lint::A1)]);
    }

    #[test]
    fn test_regions_toggle_lints() {
        let src = "fn live(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   #[test]\n\
                   fn t() { Some(1).unwrap(); }\n\
                   }\n";
        let options = ScanOptions { lints: vec![Lint::P1], ..ScanOptions::default() };
        let found: Vec<(u32, Lint)> =
            scan_source(src, &options).into_iter().map(|f| (f.line, f.lint)).collect();
        assert_eq!(found, vec![(1, Lint::P1)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let options = ScanOptions { lints: vec![Lint::P1], ..ScanOptions::default() };
        assert_eq!(scan_source(src, &options).len(), 1);
    }

    #[test]
    fn u1_requires_forbid_and_flags_unsafe() {
        let src = "pub fn f() {}\n";
        let options =
            ScanOptions { lints: vec![Lint::U1], require_forbid: true, ..ScanOptions::default() };
        let found = scan_source(src, &options);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lint, Lint::U1);

        let vendor_src = "fn f() { unsafe { x() } }\n\
                          // SAFETY: pointer is valid for the call\n\
                          fn g() { unsafe { x() } }\n";
        let vendor = ScanOptions { lints: vec![Lint::U1], vendor: true, ..ScanOptions::default() };
        let found: Vec<(u32, Lint)> =
            scan_source(vendor_src, &vendor).into_iter().map(|f| (f.line, f.lint)).collect();
        assert_eq!(found, vec![(1, Lint::U1)]);
    }

    #[test]
    fn d2_and_d3_match_paths() {
        let src = "fn f() { let t = std::time::Instant::now(); let r = rand::thread_rng(); }";
        let found = scan(src, &[Lint::D2, Lint::D3]);
        assert_eq!(found, vec![(1, Lint::D2), (1, Lint::D3)]);
    }
}
