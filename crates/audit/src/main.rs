//! CLI for the workspace contract linter.
//!
//! ```text
//! cargo run -p geopriv-audit -- --check            # the CI gate
//! cargo run -p geopriv-audit -- --list             # every finding, incl. baselined
//! cargo run -p geopriv-audit -- --write-baseline   # regenerate audit-baseline.txt
//! cargo run -p geopriv-audit -- --check --root …   # audit another checkout
//! ```
//!
//! Exit codes: 0 clean, 1 findings outside the baseline (or a stale
//! baseline), 2 usage or IO error.

#![forbid(unsafe_code)]

use geopriv_audit::engine::uncovered;
use geopriv_audit::{scan_tree, Baseline};
use std::path::PathBuf;
use std::process::ExitCode;

const BASELINE_FILE: &str = "audit-baseline.txt";

struct Args {
    root: PathBuf,
    mode: Mode,
}

enum Mode {
    Check,
    List,
    WriteBaseline,
}

fn parse_args() -> Result<Args, String> {
    // Default root: the workspace that contains this crate, so `cargo run
    // -p geopriv-audit` audits the tree it was built from regardless of the
    // invoking directory.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut root = default_root;
    let mut mode = Mode::Check;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--list" => mode = Mode::List,
            "--write-baseline" => mode = Mode::WriteBaseline,
            "--root" => {
                let value = args.next().ok_or("--root needs a path")?;
                root = PathBuf::from(value);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let root = root.canonicalize().map_err(|e| format!("bad root: {e}"))?;
    Ok(Args { root, mode })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("geopriv-audit: {e}");
            eprintln!("usage: geopriv-audit [--check|--list|--write-baseline] [--root <path>]");
            return ExitCode::from(2);
        }
    };
    let report = match scan_tree(&args.root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("geopriv-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = args.root.join(BASELINE_FILE);
    match args.mode {
        Mode::WriteBaseline => {
            let text = Baseline::render_from(&report);
            if let Err(e) = std::fs::write(&baseline_path, &text) {
                eprintln!("geopriv-audit: failed to write {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
            println!(
                "wrote {} ({} grandfathered finding(s) across {} file(s) scanned)",
                BASELINE_FILE,
                report.findings.len(),
                report.files_scanned
            );
            ExitCode::SUCCESS
        }
        Mode::List => {
            for finding in &report.findings {
                println!("{}", finding.render());
            }
            println!(
                "geopriv-audit: {} finding(s) across {} file(s)",
                report.findings.len(),
                report.files_scanned
            );
            ExitCode::SUCCESS
        }
        Mode::Check => {
            let baseline = match std::fs::read_to_string(&baseline_path) {
                Ok(text) => match Baseline::parse(&text) {
                    Ok(baseline) => baseline,
                    Err(e) => {
                        eprintln!("geopriv-audit: {e}");
                        return ExitCode::from(2);
                    }
                },
                Err(_) => Baseline::default(), // no baseline file = empty baseline
            };
            let errors = baseline.check(&report);
            if errors.is_empty() {
                println!(
                    "geopriv-audit: clean — {} file(s) scanned, {} baselined finding(s), \
                     ratchet holds",
                    report.files_scanned,
                    report.findings.len()
                );
                return ExitCode::SUCCESS;
            }
            for finding in uncovered(&report, &baseline) {
                println!("{}", finding.render());
            }
            for error in &errors {
                println!("error: {error}");
            }
            println!(
                "geopriv-audit: FAILED — {} problem(s); see docs/contracts.md for the \
                 contracts and the audit:allow escape hatch",
                errors.len()
            );
            ExitCode::FAILURE
        }
    }
}
