//! `geopriv-audit` — the workspace contract linter.
//!
//! Every PR in this repository leans on two hand-enforced contracts:
//! **bit-identical determinism** (the `derive_*_seed` streams, byte-diffed
//! `configure_geoi` output, the online/offline stream identity) and
//! **panic-freedom on hot paths** (typed `CoreError::Internal` on the sweep
//! pool, the hostile-client hardening of the serving layer). This crate
//! turns those conventions into a mechanical gate: a hand-rolled
//! token-level Rust lexer ([`lexer`]) feeding a zone-aware lint engine
//! ([`lints`], [`config`], [`engine`]).
//!
//! The lints (full contract text in `docs/contracts.md`):
//!
//! | id | contract |
//! |----|----------|
//! | D1 | no `HashMap`/`HashSet` iteration in deterministic or output-rendering zones |
//! | D2 | no `Instant::now` / `SystemTime::now` in deterministic zones |
//! | D3 | no entropy-seeded RNGs anywhere — seeds flow through `derive_*_seed` |
//! | P1 | no panic surfaces (`unwrap`/`expect`/`panic!`/`unreachable!`/bare indexing) on request/hot paths |
//! | U1 | `#![forbid(unsafe_code)]` on every non-vendor crate root; `// SAFETY:` on every vendor `unsafe` |
//! | A1/A2 | every `audit:allow` is well-formed, reasoned, and actually used |
//! | Z0 | every scanned file is covered by an explicit zone rule |
//!
//! Escape hatch: `// audit:allow(<lint-id>): <reason>` on the finding's
//! line or the line just above; the reason is mandatory. Grandfathered
//! findings live in the committed `audit-baseline.txt` under a ratchet
//! (counts may only decrease — see [`engine::Baseline`]).
//!
//! Entry point: `cargo run -p geopriv-audit -- --check`.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod lints;

pub use engine::{scan_file, scan_tree, AuditReport, Baseline, FileFinding};
pub use lints::{scan_source, Finding, Lint, ScanOptions};
