//! Property tests for the token-level lexer: hazardous-looking text that
//! sits inside string literals, raw strings, or (nested) block comments
//! must never surface as a lint finding, whatever surrounds it.

use geopriv_audit::{scan_source, Lint, ScanOptions};
use proptest::prelude::*;

/// Phrases that would each trip a lint if they appeared as real code.
const HAZARDS: &[&str] = &[
    "rand::thread_rng()",
    "StdRng::from_entropy()",
    "value.unwrap()",
    "value.expect(msg)",
    "std::time::Instant::now()",
    "std::time::SystemTime::now()",
    "values[0]",
    "unreachable!()",
    "panic!(oops)",
    "for k in map.iter()",
    "audit:allow(P1)",
];

/// Every lint armed, in and out of test regions — the harshest options.
fn armed() -> ScanOptions {
    ScanOptions {
        lints: vec![Lint::D1, Lint::D2, Lint::D3, Lint::P1, Lint::U1],
        test_lints: vec![Lint::D1, Lint::D2, Lint::D3, Lint::P1, Lint::U1],
        require_forbid: false,
        vendor: false,
    }
}

/// Lowercase filler that cannot itself form a hazard or close a literal.
fn filler() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..27, 0..12).prop_map(|bytes| {
        bytes.iter().map(|b| if *b == 26 { ' ' } else { (b'a' + b) as char }).collect()
    })
}

fn hazard() -> impl Strategy<Value = &'static str> {
    (0usize..HAZARDS.len()).prop_map(|i| HAZARDS.get(i).copied().unwrap_or(HAZARDS[0]))
}

proptest! {
    #[test]
    fn hazards_inside_string_literals_never_fire(pre in filler(), h in hazard(), post in filler()) {
        let src = format!("fn f() -> usize {{\n    let s = \"{pre}{h}{post}\";\n    s.len()\n}}\n");
        let found = scan_source(&src, &armed());
        prop_assert!(found.is_empty(), "{src} -> {found:?}");
    }

    #[test]
    fn hazards_inside_raw_strings_never_fire(pre in filler(), h in hazard(), post in filler()) {
        let src = format!(
            "fn f() -> usize {{\n    let s = r#\"{pre}\"{h}\"{post}\"#;\n    s.len()\n}}\n"
        );
        let found = scan_source(&src, &armed());
        prop_assert!(found.is_empty(), "{src} -> {found:?}");
    }

    #[test]
    fn hazards_inside_nested_block_comments_never_fire(
        pre in filler(),
        h1 in hazard(),
        h2 in hazard(),
        post in filler(),
    ) {
        let src = format!("fn f() {{}}\n/* {pre} /* {h1} */ {h2} {post} */\nfn g() {{}}\n");
        let found = scan_source(&src, &armed());
        prop_assert!(found.is_empty(), "{src} -> {found:?}");
    }

    #[test]
    fn hazards_inside_byte_and_char_adjacent_strings_never_fire(h in hazard()) {
        // Byte strings, char literals and lifetimes around a hazardous
        // string must not desynchronise the lexer into reading the hazard.
        let src = format!(
            "fn f<'a>(x: &'a [u8]) -> usize {{\n    let b = b\"{h}\";\n    let c = '\"';\n    \
             let s = \"{h}\";\n    x.len() + b.len() + s.len() + (c as usize)\n}}\n"
        );
        let found = scan_source(&src, &armed());
        prop_assert!(found.is_empty(), "{src} -> {found:?}");
    }

    #[test]
    fn real_code_after_a_literal_is_still_seen(pre in filler(), h in hazard()) {
        // The dual property: a literal must not swallow what follows it.
        let src = format!(
            "fn f(value: Option<u32>) -> u32 {{\n    let _s = \"{pre}{h}\";\n    value.unwrap()\n}}\n"
        );
        let found = scan_source(&src, &armed());
        prop_assert_eq!(found.len(), 1, "{src} -> {found:?}");
        prop_assert_eq!(found.first().map(|f| (f.line, f.lint)), Some((3, Lint::P1)));
    }
}
