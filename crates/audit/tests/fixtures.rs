//! Fixture-driven tests: one good and one bad file per lint, scanned
//! exactly as the engine would scan a real workspace file (zone lookup
//! included), with exact `line`/`lint` assertions.
//!
//! The fixture sources live under `tests/fixtures/` — a directory the
//! engine itself refuses to scan (`config::EXCLUDED`), so the hostile
//! files can never leak into the repository's own audit.

use geopriv_audit::engine::FileFinding;
use geopriv_audit::{scan_file, Finding, Lint};

/// Scans `source` as if it sat at `zone_path` in the repository.
fn findings(zone_path: &str, source: &str) -> Vec<(u32, Lint)> {
    scan_file(zone_path, source).into_iter().map(|f| (f.line, f.lint)).collect()
}

/// A deterministic-core path (D1/D2/D3 apply, P1 does not).
const DET: &str = "crates/core/src/fixture.rs";
/// A request-path file (P1/D3 apply, D2 does not).
const REQ: &str = "crates/serve/src/fixture.rs";
/// A vendored-shim file (SAFETY-comment rule only).
const VENDOR: &str = "vendor/shim/src/fixture.rs";

#[test]
fn d1_flags_hash_map_iteration_in_deterministic_code() {
    let found = findings(DET, include_str!("fixtures/d1_bad.rs"));
    assert_eq!(found, vec![(5, Lint::D1)]);
}

#[test]
fn d1_accepts_btreemap_iteration_and_hash_point_lookups() {
    assert_eq!(findings(DET, include_str!("fixtures/d1_good.rs")), vec![]);
}

#[test]
fn d2_flags_wall_clock_reads_in_deterministic_code() {
    let found = findings(DET, include_str!("fixtures/d2_bad.rs"));
    assert_eq!(found, vec![(2, Lint::D2), (7, Lint::D2)]);
}

#[test]
fn d2_accepts_injected_timestamps() {
    assert_eq!(findings(DET, include_str!("fixtures/d2_good.rs")), vec![]);
}

#[test]
fn d2_does_not_apply_in_timing_zones() {
    // The same wall-clock reads are fine where the zone map says so.
    assert_eq!(findings("crates/bench/src/fixture.rs", include_str!("fixtures/d2_bad.rs")), vec![]);
}

#[test]
fn d3_flags_entropy_seeding() {
    let found = findings(DET, include_str!("fixtures/d3_bad.rs"));
    assert_eq!(found, vec![(4, Lint::D3), (8, Lint::D3)]);
}

#[test]
fn d3_accepts_derived_seeds() {
    assert_eq!(findings(DET, include_str!("fixtures/d3_good.rs")), vec![]);
}

#[test]
fn p1_flags_every_panic_surface_on_the_request_path() {
    let found = findings(REQ, include_str!("fixtures/p1_bad.rs"));
    assert_eq!(
        found,
        vec![(2, Lint::P1), (6, Lint::P1), (10, Lint::P1), (14, Lint::P1), (18, Lint::P1)]
    );
}

#[test]
fn p1_accepts_typed_errors_defaults_and_full_range_slices() {
    assert_eq!(findings(REQ, include_str!("fixtures/p1_good.rs")), vec![]);
}

#[test]
fn p1_does_not_apply_in_deterministic_only_zones() {
    // The same panic surfaces scanned under a deterministic-core path:
    // P1 is not in that zone's lint set, so nothing fires.
    assert_eq!(findings(DET, include_str!("fixtures/p1_bad.rs")), vec![]);
}

#[test]
fn u1_requires_forbid_on_crate_roots() {
    let found = findings("crates/geo/src/lib.rs", include_str!("fixtures/u1_bad.rs"));
    assert_eq!(found, vec![(1, Lint::U1)]);
    assert_eq!(findings("crates/geo/src/lib.rs", include_str!("fixtures/u1_good.rs")), vec![]);
}

#[test]
fn u1_requires_safety_comments_on_vendor_unsafe() {
    let found = findings(VENDOR, include_str!("fixtures/u1_vendor_bad.rs"));
    assert_eq!(found, vec![(2, Lint::U1)]);
    assert_eq!(findings(VENDOR, include_str!("fixtures/u1_vendor_good.rs")), vec![]);
}

#[test]
fn allow_discipline_is_enforced() {
    let found = findings(REQ, include_str!("fixtures/allow_bad.rs"));
    // Line 2: directive without a reason (A1) — so line 3's indexing still
    // stands. Line 7: reasoned directive that suppresses nothing (A2).
    assert_eq!(found, vec![(2, Lint::A1), (3, Lint::P1), (7, Lint::A2)]);
}

#[test]
fn reasoned_allows_suppress_exactly_their_finding() {
    assert_eq!(findings(REQ, include_str!("fixtures/allow_good.rs")), vec![]);
}

#[test]
fn uncovered_files_are_their_own_finding() {
    let found = findings("rogue/orphan.rs", "pub fn f() {}\n");
    assert_eq!(found.len(), 1);
    assert_eq!(found.first().map(|f| f.1), Some(Lint::Z0));
}

#[test]
fn findings_render_as_file_line_id_message() {
    let finding = FileFinding {
        file: "crates/serve/src/fixture.rs".to_string(),
        finding: Finding { line: 6, lint: Lint::P1, message: "boom".to_string() },
    };
    assert_eq!(finding.render(), "crates/serve/src/fixture.rs:6: P1 boom");
}
