pub fn checked(values: &[u64]) -> u64 {
    // audit:allow(P1): the caller's contract guarantees at least two entries
    values[1]
}
