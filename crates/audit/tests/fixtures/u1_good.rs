//! A crate root carrying the workspace-wide unsafe ban.

#![forbid(unsafe_code)]

pub fn fine() -> u64 {
    7
}
