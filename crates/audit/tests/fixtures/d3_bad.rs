use rand::SeedableRng;

pub fn entropy_seeded() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy()
}

pub fn thread_local_rng() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
