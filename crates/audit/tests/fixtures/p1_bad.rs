pub fn first(values: &[u64]) -> u64 {
    values[0]
}

pub fn must(value: Option<u64>) -> u64 {
    value.unwrap()
}

pub fn believe(value: Option<u64>) -> u64 {
    value.expect("always present")
}

pub fn never() -> u64 {
    unreachable!()
}

pub fn refuse() {
    panic!("hostile input");
}
