pub fn transmuted(value: u64) -> i64 {
    unsafe { std::mem::transmute::<u64, i64>(value) }
}
