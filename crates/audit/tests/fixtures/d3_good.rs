use rand::SeedableRng;

pub fn derived(master_seed: u64, user: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(master_seed ^ user)
}
