pub fn first(values: &[u64]) -> u64 {
    values.first().copied().unwrap_or(0)
}

pub fn must(value: Option<u64>) -> Result<u64, String> {
    value.ok_or_else(|| "missing value".to_string())
}

pub fn whole(values: &[u64]) -> &[u64] {
    // A full-range slice cannot go out of bounds.
    &values[..]
}
