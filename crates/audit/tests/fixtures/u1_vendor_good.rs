pub fn transmuted(value: u64) -> i64 {
    // SAFETY: u64 and i64 have identical size and all bit patterns are valid.
    unsafe { std::mem::transmute::<u64, i64>(value) }
}
