//! A crate root that forgot the workspace-wide unsafe ban.

pub fn fine() -> u64 {
    7
}
