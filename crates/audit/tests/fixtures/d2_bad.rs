pub fn elapsed_micros() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_micros() as u64
}

pub fn wall_clock_nanos() -> u128 {
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH).map(|d| d.as_nanos()).unwrap_or(0)
}
