use std::collections::HashMap;

pub fn render(map: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (key, value) in map.iter() {
        out.push_str(&format!("{key}={value}\n"));
    }
    out
}
