pub fn unreasoned(values: &[u64]) -> u64 {
    // audit:allow(P1)
    values[1]
}

pub fn unused(value: Option<u64>) -> u64 {
    // audit:allow(P1): nothing here actually panics
    value.unwrap_or(7)
}
