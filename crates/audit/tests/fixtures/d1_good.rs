use std::collections::{BTreeMap, HashMap};

pub fn render(map: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (key, value) in map.iter() {
        out.push_str(&format!("{key}={value}\n"));
    }
    out
}

pub fn lookup(index: &HashMap<String, u64>, key: &str) -> u64 {
    // Point lookups on a HashMap are order-free and therefore fine.
    index.get(key).copied().unwrap_or(0)
}
