pub fn elapsed_micros(started_micros: u64, now_micros: u64) -> u64 {
    now_micros.saturating_sub(started_micros)
}
