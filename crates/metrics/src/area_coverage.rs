//! The area-coverage utility metric.
//!
//! The paper's utility objective: "maintaining a similar location precision
//! at the scale of a city block. More precisely, the difference between the
//! area coverage of users in the actual mobility traces and their protected
//! counterpart is expected to remain about the size of a city block and no
//! less accurate." Higher is better.

use crate::error::MetricError;
use crate::grid_support::combined_bounds;
use crate::traits::{MetricValue, UtilityMetric};
use geopriv_geo::{Grid, Meters};
use geopriv_mobility::Dataset;
use serde::{Deserialize, Serialize};

/// How the actual and protected coverages are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoverageSimilarity {
    /// Compare the *size* of the covered areas: `min(|A|, |P|) / max(|A|, |P|)`
    /// where `|A|` and `|P|` are the numbers of city-block cells covered by the
    /// actual and protected traces.
    ///
    /// This is the reading closest to the paper's definition ("the difference
    /// between the area coverage … is expected to remain about the size of a
    /// city block"): it penalizes the protected trace for inflating (or
    /// shrinking) the user's apparent coverage, and is the default.
    AreaRatio,
    /// Compare *which* cells are covered: the F1 score of the protected cell
    /// set against the actual cell set. Stricter than [`CoverageSimilarity::AreaRatio`]
    /// because it also requires the covered cells to be the right ones.
    CellF1,
}

/// Utility metric: similarity between the city-block area coverage of the
/// actual trace and of the protected trace.
///
/// For each user, the trace's *coverage* is the set of grid cells (square
/// cells of `cell_size`, 200 m — a San Francisco city block — by default)
/// touched by at least one record. The per-user utility compares the actual
/// and protected coverages according to the configured
/// [`CoverageSimilarity`]; the dataset-level value is the mean over users —
/// the quantity plotted on the y-axis of Figure 1b.
///
/// # Examples
///
/// ```
/// use geopriv_metrics::{AreaCoverage, UtilityMetric};
/// use geopriv_lppm::{Identity, Lppm};
/// use geopriv_mobility::generator::TaxiFleetBuilder;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let actual = TaxiFleetBuilder::new().drivers(2).duration_hours(3.0).build(&mut rng)?;
/// let released = Identity::new().protect_dataset(&actual, &mut rng)?;
/// let utility = AreaCoverage::default().evaluate(&actual, &released)?;
/// assert!(utility.value() > 0.99); // releasing the truth keeps full utility
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaCoverage {
    cell_size: Meters,
    similarity: CoverageSimilarity,
}

impl Default for AreaCoverage {
    fn default() -> Self {
        Self { cell_size: Meters::new(200.0), similarity: CoverageSimilarity::AreaRatio }
    }
}

impl AreaCoverage {
    /// The id/name of the default ([`CoverageSimilarity::AreaRatio`]) variant
    /// inside suites and sweep results.
    pub const ID: &'static str = "area-coverage";

    /// Creates the metric with an explicit city-block cell size and the
    /// default (paper) similarity, [`CoverageSimilarity::AreaRatio`].
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidParameter`] for a non-positive cell size.
    pub fn new(cell_size: Meters) -> Result<Self, MetricError> {
        Self::with_similarity(cell_size, CoverageSimilarity::AreaRatio)
    }

    /// Creates the metric with an explicit cell size and similarity mode.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidParameter`] for a non-positive cell size.
    pub fn with_similarity(
        cell_size: Meters,
        similarity: CoverageSimilarity,
    ) -> Result<Self, MetricError> {
        if !(cell_size.as_f64().is_finite() && cell_size.as_f64() > 0.0) {
            return Err(MetricError::InvalidParameter {
                name: "cell_size",
                value: cell_size.as_f64(),
                reason: "cell size must be finite and strictly positive",
            });
        }
        Ok(Self { cell_size, similarity })
    }

    /// The strict cell-overlap (F1) variant with the default 200 m cells.
    pub fn cell_overlap() -> Self {
        Self { cell_size: Meters::new(200.0), similarity: CoverageSimilarity::CellF1 }
    }

    /// The city-block cell size.
    pub fn cell_size(&self) -> Meters {
        self.cell_size
    }

    /// The configured similarity mode.
    pub fn similarity(&self) -> CoverageSimilarity {
        self.similarity
    }
}

impl UtilityMetric for AreaCoverage {
    fn name(&self) -> &str {
        match self.similarity {
            CoverageSimilarity::AreaRatio => Self::ID,
            CoverageSimilarity::CellF1 => "area-coverage-f1",
        }
    }

    // The grid metrics keep the trait's default passthrough `prepare`: the
    // grid spans the *protected* dataset too, so the only actual-side
    // invariant is a bounding box whose re-scan costs no more than verifying
    // a cached copy would.
    fn evaluate(&self, actual: &Dataset, protected: &Dataset) -> Result<MetricValue, MetricError> {
        let pairs = actual
            .paired_with(protected)
            .map_err(|e| MetricError::DatasetMismatch { reason: e.to_string() })?;
        // One grid spanning both datasets so clamping at the border never
        // creates artificial matches between far-away cells.
        let bounds = combined_bounds(actual, protected)?;
        let grid = Grid::new(bounds, self.cell_size)?;

        let mut per_user = Vec::with_capacity(pairs.len());
        for (actual_trace, protected_trace) in pairs {
            let actual_cells = grid.coverage(actual_trace.iter().map(|r| r.location()));
            let protected_cells = grid.coverage(protected_trace.iter().map(|r| r.location()));
            let similarity = match self.similarity {
                CoverageSimilarity::AreaRatio => {
                    let a = actual_cells.len() as f64;
                    let p = protected_cells.len() as f64;
                    if a == 0.0 && p == 0.0 {
                        1.0
                    } else {
                        a.min(p) / a.max(p)
                    }
                }
                CoverageSimilarity::CellF1 => actual_cells.f1_of(&protected_cells),
            };
            per_user.push((actual_trace.user(), similarity));
        }
        MetricValue::from_per_user(per_user)
    }

    fn cache_key(&self) -> String {
        format!("{}/cell={}", self.name(), self.cell_size.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_lppm::{Epsilon, GaussianPerturbation, GeoIndistinguishability, Identity, Lppm};
    use geopriv_mobility::generator::TaxiFleetBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn taxi_dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        TaxiFleetBuilder::new().drivers(4).duration_hours(6.0).build(&mut rng).unwrap()
    }

    #[test]
    fn construction_validates_cell_size() {
        assert!(AreaCoverage::new(Meters::new(200.0)).is_ok());
        assert!(AreaCoverage::new(Meters::new(0.0)).is_err());
        assert!(AreaCoverage::new(Meters::new(-10.0)).is_err());
        assert!(AreaCoverage::with_similarity(Meters::new(f64::NAN), CoverageSimilarity::CellF1)
            .is_err());
        let m = AreaCoverage::default();
        assert_eq!(m.name(), "area-coverage");
        assert_eq!(m.cell_size().as_f64(), 200.0);
        assert_eq!(m.similarity(), CoverageSimilarity::AreaRatio);
        assert_eq!(AreaCoverage::cell_overlap().name(), "area-coverage-f1");
        assert_eq!(AreaCoverage::cell_overlap().similarity(), CoverageSimilarity::CellF1);
    }

    #[test]
    fn identity_protection_keeps_full_utility_in_both_modes() {
        let actual = taxi_dataset(31);
        let mut rng = StdRng::seed_from_u64(1);
        let protected = Identity::new().protect_dataset(&actual, &mut rng).unwrap();
        for metric in [AreaCoverage::default(), AreaCoverage::cell_overlap()] {
            let value = metric.evaluate(&actual, &protected).unwrap();
            assert!(value.value() > 0.999, "{}: got {}", metric.name(), value.value());
            assert!(value.worst_for_utility() > 0.999);
        }
    }

    #[test]
    fn small_noise_keeps_high_utility_heavy_noise_destroys_it() {
        let actual = taxi_dataset(32);
        let utility_at = |eps: f64, metric: AreaCoverage| {
            let mut rng = StdRng::seed_from_u64(2);
            let protected = GeoIndistinguishability::new(Epsilon::new(eps).unwrap())
                .protect_dataset(&actual, &mut rng)
                .unwrap();
            metric.evaluate(&actual, &protected).unwrap().value()
        };
        // Paper-mode (area ratio): high utility at the paper's operating point.
        let at_operating_point = utility_at(0.01, AreaCoverage::default());
        assert!(at_operating_point > 0.6, "utility at eps=0.01 is {at_operating_point}");
        let heavy = utility_at(0.0005, AreaCoverage::default());
        assert!(heavy < at_operating_point, "heavy-noise {heavy} not below {at_operating_point}");

        // Strict mode: same ordering, lower absolute values.
        let strict_high = utility_at(0.5, AreaCoverage::cell_overlap());
        let strict_low = utility_at(0.0005, AreaCoverage::cell_overlap());
        assert!(strict_high > 0.85, "high-eps strict utility {strict_high}");
        assert!(strict_low < 0.4, "low-eps strict utility {strict_low}");
        // The strict metric is never more forgiving than the area ratio.
        assert!(utility_at(0.01, AreaCoverage::cell_overlap()) <= at_operating_point + 1e-9);
    }

    #[test]
    fn utility_decreases_monotonically_with_gaussian_noise() {
        let actual = taxi_dataset(33);
        let utility_at = |sigma: f64| {
            let mut rng = StdRng::seed_from_u64(3);
            let protected = GaussianPerturbation::new(Meters::new(sigma))
                .unwrap()
                .protect_dataset(&actual, &mut rng)
                .unwrap();
            AreaCoverage::default().evaluate(&actual, &protected).unwrap().value()
        };
        let u_small = utility_at(10.0);
        let u_medium = utility_at(300.0);
        let u_large = utility_at(3_000.0);
        assert!(u_small > u_medium, "{u_small} vs {u_medium}");
        assert!(u_medium > u_large, "{u_medium} vs {u_large}");
    }

    #[test]
    fn coarser_cells_are_more_forgiving() {
        let actual = taxi_dataset(34);
        let mut rng = StdRng::seed_from_u64(4);
        let protected = GeoIndistinguishability::new(Epsilon::new(0.01).unwrap())
            .protect_dataset(&actual, &mut rng)
            .unwrap();
        for similarity in [CoverageSimilarity::AreaRatio, CoverageSimilarity::CellF1] {
            let fine = AreaCoverage::with_similarity(Meters::new(100.0), similarity)
                .unwrap()
                .evaluate(&actual, &protected)
                .unwrap();
            let coarse = AreaCoverage::with_similarity(Meters::new(1_000.0), similarity)
                .unwrap()
                .evaluate(&actual, &protected)
                .unwrap();
            assert!(
                coarse.value() >= fine.value(),
                "{similarity:?}: coarse {} < fine {}",
                coarse.value(),
                fine.value()
            );
        }
    }

    #[test]
    fn mismatched_datasets_are_rejected() {
        let a = taxi_dataset(35);
        let b = a.take(2).unwrap();
        assert!(matches!(
            AreaCoverage::default().evaluate(&a, &b),
            Err(MetricError::DatasetMismatch { .. })
        ));
    }

    #[test]
    fn prepared_evaluation_matches_direct_evaluation() {
        let actual = taxi_dataset(36);
        let mut rng = StdRng::seed_from_u64(5);
        let protected = GeoIndistinguishability::new(Epsilon::new(0.01).unwrap())
            .protect_dataset(&actual, &mut rng)
            .unwrap();
        for metric in [AreaCoverage::default(), AreaCoverage::cell_overlap()] {
            // The grid metrics use the default passthrough prepare.
            let prepared = metric.prepare(&actual).unwrap();
            assert!(prepared.is_empty());
            let direct = metric.evaluate(&actual, &protected).unwrap();
            let via_prepared = metric.evaluate_prepared(&prepared, &actual, &protected).unwrap();
            assert_eq!(direct, via_prepared, "{}", metric.name());
        }
        // Distinct configurations have distinct cache keys.
        assert_ne!(AreaCoverage::default().cache_key(), AreaCoverage::cell_overlap().cache_key());
        assert_ne!(
            AreaCoverage::new(Meters::new(100.0)).unwrap().cache_key(),
            AreaCoverage::default().cache_key()
        );
    }
}
