//! Named, direction-tagged metric suites.
//!
//! The paper's framework fixes exactly one privacy and one utility metric,
//! but is explicitly meant to grow: "we also plan to extend our framework
//! with more metrics and parameters". [`MetricSuite`] is that growth point —
//! an ordered set of metrics, each addressed by a [`MetricId`] and tagged
//! with a [`Direction`], so a study can sweep POI retrieval, distortion,
//! area coverage and hotspot preservation side by side instead of forking
//! the framework per metric pair.

use crate::error::MetricError;
use crate::traits::{Direction, MetricValue, PreparedState, PrivacyMetric, UtilityMetric};
use geopriv_mobility::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a metric inside a suite.
///
/// Defaults to the metric's `name()`; [`SuiteMetric::with_id`] overrides it
/// when one suite carries two differently configured instances of the same
/// metric family (e.g. area coverage at two cell sizes).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricId(String);

impl MetricId {
    /// Creates an id from any string-like value.
    pub fn new(id: impl Into<String>) -> Self {
        Self(id.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for MetricId {
    fn from(id: &str) -> Self {
        Self::new(id)
    }
}

impl From<String> for MetricId {
    fn from(id: String) -> Self {
        Self(id)
    }
}

impl PartialEq<str> for MetricId {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for MetricId {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

/// One entry of a [`MetricSuite`]: a boxed metric (either trait) plus its
/// optional id override.
///
/// The wrapped trait decides the [`Direction`]: [`PrivacyMetric`]s improve
/// downward, [`UtilityMetric`]s improve upward.
pub struct SuiteMetric {
    kind: Kind,
    id: Option<MetricId>,
}

enum Kind {
    Privacy(Box<dyn PrivacyMetric>),
    Utility(Box<dyn UtilityMetric>),
}

impl SuiteMetric {
    /// Wraps a privacy-style metric (lower is better).
    pub fn privacy<M: PrivacyMetric + 'static>(metric: M) -> Self {
        Self::privacy_boxed(Box::new(metric))
    }

    /// Wraps an already-boxed privacy-style metric.
    pub fn privacy_boxed(metric: Box<dyn PrivacyMetric>) -> Self {
        Self { kind: Kind::Privacy(metric), id: None }
    }

    /// Wraps a utility-style metric (higher is better).
    pub fn utility<M: UtilityMetric + 'static>(metric: M) -> Self {
        Self::utility_boxed(Box::new(metric))
    }

    /// Wraps an already-boxed utility-style metric.
    pub fn utility_boxed(metric: Box<dyn UtilityMetric>) -> Self {
        Self { kind: Kind::Utility(metric), id: None }
    }

    /// Overrides the id this metric is addressed by inside its suite
    /// (default: the metric's `name()`).
    #[must_use]
    pub fn with_id(mut self, id: impl Into<MetricId>) -> Self {
        self.id = Some(id.into());
        self
    }

    /// The id this metric is addressed by.
    pub fn id(&self) -> MetricId {
        self.id.clone().unwrap_or_else(|| MetricId::new(self.name()))
    }

    /// The underlying metric's human-readable name.
    pub fn name(&self) -> &str {
        match &self.kind {
            Kind::Privacy(m) => m.name(),
            Kind::Utility(m) => m.name(),
        }
    }

    /// Which way this metric improves.
    pub fn direction(&self) -> Direction {
        match &self.kind {
            Kind::Privacy(m) => m.direction(),
            Kind::Utility(m) => m.direction(),
        }
    }

    /// Evaluates the metric on an actual/protected dataset pair.
    ///
    /// # Errors
    ///
    /// Propagates the underlying metric's errors.
    pub fn evaluate(
        &self,
        actual: &Dataset,
        protected: &Dataset,
    ) -> Result<MetricValue, MetricError> {
        match &self.kind {
            Kind::Privacy(m) => m.evaluate(actual, protected),
            Kind::Utility(m) => m.evaluate(actual, protected),
        }
    }

    /// Precomputes the metric's actual-side state (see
    /// [`PrivacyMetric::prepare`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying metric's errors.
    pub fn prepare(&self, actual: &Dataset) -> Result<PreparedState, MetricError> {
        match &self.kind {
            Kind::Privacy(m) => m.prepare(actual),
            Kind::Utility(m) => m.prepare(actual),
        }
    }

    /// Evaluates the metric against prepared actual-side state (bit-identical
    /// to [`SuiteMetric::evaluate`] by the metric traits' contract).
    ///
    /// # Errors
    ///
    /// Propagates the underlying metric's errors.
    pub fn evaluate_prepared(
        &self,
        prepared: &PreparedState,
        actual: &Dataset,
        protected: &Dataset,
    ) -> Result<MetricValue, MetricError> {
        match &self.kind {
            Kind::Privacy(m) => m.evaluate_prepared(prepared, actual, protected),
            Kind::Utility(m) => m.evaluate_prepared(prepared, actual, protected),
        }
    }

    /// The underlying metric's configuration cache key (see
    /// [`PrivacyMetric::cache_key`]), used to share prepared state between
    /// identically configured metrics.
    pub fn cache_key(&self) -> String {
        match &self.kind {
            Kind::Privacy(m) => m.cache_key(),
            Kind::Utility(m) => m.cache_key(),
        }
    }
}

impl fmt::Debug for SuiteMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SuiteMetric")
            .field("id", &self.id())
            .field("name", &self.name())
            .field("direction", &self.direction())
            .finish()
    }
}

/// An ordered set of metrics with unique [`MetricId`]s — the measurement
/// dimensions of one study.
///
/// # Examples
///
/// ```
/// use geopriv_metrics::{AreaCoverage, MetricSuite, PoiRetrieval, SuiteMetric};
///
/// # fn main() -> Result<(), geopriv_metrics::MetricError> {
/// let suite = MetricSuite::new(vec![
///     SuiteMetric::privacy(PoiRetrieval::default()),
///     SuiteMetric::utility(AreaCoverage::default()),
/// ])?;
/// assert_eq!(suite.len(), 2);
/// assert!(suite.get(&"poi-retrieval".into()).is_some());
/// # Ok(())
/// # }
/// ```
pub struct MetricSuite {
    metrics: Vec<SuiteMetric>,
}

impl MetricSuite {
    /// Creates a suite from an ordered list of metrics.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidSuite`] for an empty list or duplicate
    /// ids (disambiguate with [`SuiteMetric::with_id`]).
    pub fn new(metrics: Vec<SuiteMetric>) -> Result<Self, MetricError> {
        if metrics.is_empty() {
            return Err(MetricError::InvalidSuite {
                reason: "a suite needs at least one metric".to_string(),
            });
        }
        let mut seen = std::collections::BTreeSet::new();
        for metric in &metrics {
            if !seen.insert(metric.id()) {
                return Err(MetricError::InvalidSuite {
                    reason: format!(
                        "duplicate metric id \"{}\" — disambiguate with SuiteMetric::with_id",
                        metric.id()
                    ),
                });
            }
        }
        Ok(Self { metrics })
    }

    /// The paper's shape: one privacy metric and one utility metric, in that
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidSuite`] if both metrics share a name.
    pub fn pair(
        privacy: Box<dyn PrivacyMetric>,
        utility: Box<dyn UtilityMetric>,
    ) -> Result<Self, MetricError> {
        Self::new(vec![SuiteMetric::privacy_boxed(privacy), SuiteMetric::utility_boxed(utility)])
    }

    /// Number of metrics.
    #[allow(clippy::len_without_is_empty)] // a suite is never empty
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// The metrics, in suite order.
    pub fn metrics(&self) -> &[SuiteMetric] {
        &self.metrics
    }

    /// Iterates over the metrics in suite order.
    pub fn iter(&self) -> impl Iterator<Item = &SuiteMetric> {
        self.metrics.iter()
    }

    /// The metric ids, in suite order.
    pub fn ids(&self) -> Vec<MetricId> {
        self.metrics.iter().map(SuiteMetric::id).collect()
    }

    /// Looks a metric up by id.
    pub fn get(&self, id: &MetricId) -> Option<&SuiteMetric> {
        self.metrics.iter().find(|m| &m.id() == id)
    }

    /// The position of a metric inside the suite.
    pub fn index_of(&self, id: &MetricId) -> Option<usize> {
        self.metrics.iter().position(|m| &m.id() == id)
    }

    /// The first metric improving in `direction`, if any — how the paper's
    /// "the privacy metric" / "the utility metric" map onto a suite.
    pub fn first_with_direction(&self, direction: Direction) -> Option<&SuiteMetric> {
        self.metrics.iter().find(|m| m.direction() == direction)
    }
}

impl fmt::Debug for MetricSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.metrics.iter().map(|m| m.id())).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AreaCoverage, HotspotPreservation, PoiRetrieval};
    use geopriv_mobility::generator::TaxiFleetBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_suite() -> MetricSuite {
        MetricSuite::pair(Box::new(PoiRetrieval::default()), Box::new(AreaCoverage::default()))
            .unwrap()
    }

    #[test]
    fn metric_id_conversions_and_display() {
        let id = MetricId::new("poi-retrieval");
        assert_eq!(id, MetricId::from("poi-retrieval"));
        assert_eq!(id, MetricId::from("poi-retrieval".to_string()));
        assert_eq!(id.as_str(), "poi-retrieval");
        assert_eq!(id, "poi-retrieval");
        assert_eq!(id.to_string(), "poi-retrieval");
    }

    #[test]
    fn direction_goodness_and_display() {
        assert_eq!(Direction::LowerIsBetter.goodness(0.3), -0.3);
        assert_eq!(Direction::HigherIsBetter.goodness(0.3), 0.3);
        assert!(Direction::LowerIsBetter.to_string().contains("lower"));
        assert!(Direction::HigherIsBetter.to_string().contains("higher"));
    }

    #[test]
    fn suite_orders_and_tags_metrics() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 2);
        assert_eq!(
            suite.ids(),
            vec![MetricId::new("poi-retrieval"), MetricId::new("area-coverage")]
        );
        assert_eq!(suite.metrics()[0].direction(), Direction::LowerIsBetter);
        assert_eq!(suite.metrics()[1].direction(), Direction::HigherIsBetter);
        assert_eq!(suite.index_of(&"area-coverage".into()), Some(1));
        assert!(suite.get(&"nope".into()).is_none());
        assert_eq!(
            suite.first_with_direction(Direction::HigherIsBetter).unwrap().id(),
            MetricId::new("area-coverage")
        );
        assert!(format!("{suite:?}").contains("poi-retrieval"));
        assert!(format!("{:?}", suite.metrics()[0]).contains("LowerIsBetter"));
    }

    #[test]
    fn suite_rejects_empty_and_duplicate_ids() {
        assert!(matches!(MetricSuite::new(vec![]), Err(MetricError::InvalidSuite { .. })));
        let duplicated = MetricSuite::new(vec![
            SuiteMetric::utility(AreaCoverage::default()),
            SuiteMetric::utility(AreaCoverage::default()),
        ]);
        assert!(
            matches!(duplicated, Err(MetricError::InvalidSuite { reason }) if reason.contains("area-coverage"))
        );
        // with_id disambiguates.
        let suite = MetricSuite::new(vec![
            SuiteMetric::utility(AreaCoverage::default()),
            SuiteMetric::utility(AreaCoverage::default()).with_id("area-coverage-fine"),
        ])
        .unwrap();
        assert_eq!(suite.ids()[1], MetricId::new("area-coverage-fine"));
    }

    #[test]
    fn suite_metric_delegates_evaluation_and_caching() {
        let mut rng = StdRng::seed_from_u64(3);
        let dataset =
            TaxiFleetBuilder::new().drivers(2).duration_hours(3.0).build(&mut rng).unwrap();
        let suite = MetricSuite::new(vec![
            SuiteMetric::privacy(PoiRetrieval::default()),
            SuiteMetric::utility(AreaCoverage::default()),
            SuiteMetric::utility(HotspotPreservation::default()),
        ])
        .unwrap();
        for metric in suite.iter() {
            assert_eq!(metric.cache_key(), metric.cache_key());
            let prepared = metric.prepare(&dataset).unwrap();
            let direct = metric.evaluate(&dataset, &dataset).unwrap();
            let via_prepared = metric.evaluate_prepared(&prepared, &dataset, &dataset).unwrap();
            assert_eq!(direct, via_prepared);
        }
    }
}
