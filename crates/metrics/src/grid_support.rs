//! Shared actual-side machinery of the grid-based metrics
//! ([`crate::AreaCoverage`], [`crate::HotspotPreservation`]).
//!
//! The grid metrics use the trait's *default* passthrough `prepare`: their
//! only actual-side invariant is the bounding box, and verifying that cached
//! state matches the dataset would cost a full record pass — the same order
//! of work as just re-scanning the box. There is nothing worth caching.

use crate::error::MetricError;
use geopriv_geo::BoundingBox;
use geopriv_mobility::Dataset;

/// The bounding box of both datasets together, expanded by a small margin —
/// the grid frame the metrics lay their cells in, spanning both datasets so
/// clamping at the border never creates artificial matches between far-away
/// cells.
pub(crate) fn combined_bounds(
    actual: &Dataset,
    protected: &Dataset,
) -> Result<BoundingBox, MetricError> {
    let a = actual.bounding_box()?;
    let b = protected.bounding_box()?;
    Ok(BoundingBox::new(
        a.min_latitude().min(b.min_latitude()),
        a.min_longitude().min(b.min_longitude()),
        a.max_latitude().max(b.max_latitude()),
        a.max_longitude().max(b.max_longitude()),
    )?
    .expanded(0.02))
}
