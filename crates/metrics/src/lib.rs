//! # geopriv-metrics
//!
//! Privacy and utility metrics for the `geopriv` workspace — the two
//! assessment dimensions of Cerf et al.'s configuration framework.
//!
//! * [`PrivacyMetric`] / [`UtilityMetric`] — the plug-in interfaces (the
//!   framework is "modular: by using different metrics…").
//! * [`PoiExtractor`] — stay-point clustering ("meaningful locations where a
//!   user made a significant stop").
//! * [`PoiRetrieval`] — the paper's privacy metric: proportion of actual POIs
//!   retrievable from the protected data (Figure 1a).
//! * [`AreaCoverage`] — the paper's utility metric: city-block area-coverage
//!   similarity (Figure 1b).
//! * [`MeanDistortion`] / [`DistortionUtility`] — auxiliary displacement
//!   metrics used in ablations.
//!
//! ## Example
//!
//! ```
//! use geopriv_metrics::{AreaCoverage, PoiRetrieval, PrivacyMetric, UtilityMetric};
//! use geopriv_lppm::{Epsilon, GeoIndistinguishability, Lppm};
//! use geopriv_mobility::generator::TaxiFleetBuilder;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2);
//! let actual = TaxiFleetBuilder::new().drivers(2).duration_hours(4.0).build(&mut rng)?;
//! let protected = GeoIndistinguishability::new(Epsilon::new(0.01)?)
//!     .protect_dataset(&actual, &mut rng)?;
//!
//! let privacy = PoiRetrieval::default().evaluate(&actual, &protected)?;
//! let utility = AreaCoverage::default().evaluate(&actual, &protected)?;
//! assert!((0.0..=1.0).contains(&privacy.value()));
//! assert!((0.0..=1.0).contains(&utility.value()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area_coverage;
pub mod distortion;
pub mod error;
mod grid_support;
pub mod hotspot;
pub mod poi;
pub mod poi_retrieval;
pub mod suite;
pub mod traits;

pub use area_coverage::{AreaCoverage, CoverageSimilarity};
pub use distortion::{DistortionUtility, MeanDistortion};
pub use error::MetricError;
pub use hotspot::HotspotPreservation;
pub use poi::{Poi, PoiExtractor};
pub use poi_retrieval::PoiRetrieval;
pub use suite::{MetricId, MetricSuite, SuiteMetric};
pub use traits::{
    DatasetFingerprint, Direction, MetricValue, PreparedState, PrivacyMetric, UtilityMetric,
};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::area_coverage::{AreaCoverage, CoverageSimilarity};
    pub use crate::distortion::{DistortionUtility, MeanDistortion};
    pub use crate::error::MetricError;
    pub use crate::hotspot::HotspotPreservation;
    pub use crate::poi::{Poi, PoiExtractor};
    pub use crate::poi_retrieval::PoiRetrieval;
    pub use crate::suite::{MetricId, MetricSuite, SuiteMetric};
    pub use crate::traits::{
        DatasetFingerprint, Direction, MetricValue, PreparedState, PrivacyMetric, UtilityMetric,
    };
}
