//! The metric interfaces of the framework.
//!
//! The paper's framework is "modular: by using different metrics, a system
//! designer is able to fine-tune her LPPM according to her expected privacy
//! and utility guarantees". [`PrivacyMetric`] and [`UtilityMetric`] are those
//! two plug-in points; both compare an *actual* dataset with its *protected*
//! counterpart and return a value in `[0, 1]`.

use crate::error::MetricError;
use geopriv_mobility::{Dataset, UserId};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::fmt;

/// Which way a metric improves.
///
/// The framework never hard-codes "privacy" and "utility": every metric in a
/// [`crate::MetricSuite`] carries its direction, and objectives, frontiers and
/// reports interpret values through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Smaller values are better — the privacy-style metrics (less
    /// information retrievable by the adversary).
    LowerIsBetter,
    /// Larger values are better — the utility-style metrics (the protected
    /// data remains useful).
    HigherIsBetter,
}

impl Direction {
    /// Converts a raw metric value to a *goodness* score where greater is
    /// always better, so direction-agnostic comparisons (dominance, knees)
    /// can use plain `>`.
    pub fn goodness(self, value: f64) -> f64 {
        match self {
            Direction::LowerIsBetter => -value,
            Direction::HigherIsBetter => value,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::LowerIsBetter => write!(f, "lower is better"),
            Direction::HigherIsBetter => write!(f, "higher is better"),
        }
    }
}

/// Opaque actual-side state computed once by a metric's
/// [`PrivacyMetric::prepare`] / [`UtilityMetric::prepare`] and reused across
/// many evaluations against the *same* actual dataset.
///
/// Sweeps and campaigns evaluate a metric at every `(point, repetition)`
/// sample while the actual dataset never changes; whatever the metric derives
/// from the actual side alone (POI extraction, bounding boxes, grids) is
/// invariant across the whole run and can be computed once. The state is
/// deliberately opaque — each metric downcasts back to its own private type —
/// so the trait stays object-safe and new metrics can cache whatever they
/// need without touching the interface.
pub struct PreparedState(Option<Box<dyn Any + Send + Sync>>);

impl PreparedState {
    /// Wraps a metric-specific prepared value.
    pub fn new<T: Any + Send + Sync>(state: T) -> Self {
        Self(Some(Box::new(state)))
    }

    /// The state of metrics that have nothing to prepare (the default).
    pub fn empty() -> Self {
        Self(None)
    }

    /// Returns `true` when no state was prepared.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Borrows the prepared value as `T`, or `None` if this state is empty or
    /// was prepared by a different metric type.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.as_ref().and_then(|boxed| boxed.downcast_ref::<T>())
    }
}

impl fmt::Debug for PreparedState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedState").field("prepared", &self.0.is_some()).finish()
    }
}

/// A fingerprint of a dataset — each trace's user id, record count and an
/// order-sensitive hash over *every* record — embedded in prepared state so
/// evaluation detects state built for a different dataset instead of
/// silently computing wrong values from it.
///
/// The hash is computed straight off the columnar storage: one pass over each
/// trace span's `t`/`lat`/`lon` slices, mixing the raw `f64` bit patterns.
/// Because the columns store exactly the bits the old row layout stored per
/// [`geopriv_mobility::Record`], this produces *identical* fingerprints to
/// the historical record-by-record walk — prepared state cached before the
/// columnar refactor would still validate.
///
/// Computing (and re-checking) the fingerprint is a single cheap pass over
/// the columns, far below the cost of the work the prepared state caches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetFingerprint {
    traces: Vec<(u64, usize, u64)>,
}

impl DatasetFingerprint {
    /// Fingerprints a dataset.
    pub fn of(dataset: &Dataset) -> Self {
        Self {
            traces: dataset
                .iter()
                .map(|t| {
                    // Multiply-mix fold (FNV-style) over the trace's column
                    // slices: position-dependent, so permuting records never
                    // collides the way a plain rotate-xor fold would for
                    // positions 64 apart.
                    let mut hash = 0xcbf2_9ce4_8422_2325u64;
                    for i in 0..t.len() {
                        let mixed = t.timestamps()[i].to_bits()
                            ^ t.latitudes()[i].to_bits().rotate_left(21)
                            ^ t.longitudes()[i].to_bits().rotate_left(42);
                        hash = (hash ^ mixed).wrapping_mul(0x100_0000_01b3);
                    }
                    (t.user().value(), t.len(), hash)
                })
                .collect(),
        }
    }

    /// Returns an error unless `dataset` has the fingerprinted structure.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::DatasetMismatch`] naming `metric` when the
    /// dataset's traces differ from the fingerprint.
    pub fn ensure_matches(&self, dataset: &Dataset, metric: &str) -> Result<(), MetricError> {
        if *self == Self::of(dataset) {
            Ok(())
        } else {
            Err(MetricError::DatasetMismatch {
                reason: format!("prepared state of {metric} was built for a different dataset"),
            })
        }
    }

    /// Per-user sub-fingerprints, one per distinct user in trace order.
    ///
    /// Each digest folds the user's per-trace `(record count, record hash)`
    /// entries — in the dataset's trace order — with the same FNV-style
    /// multiply-mix used for the per-trace hashes, so it is sensitive to any
    /// record change, any record count change, and any reordering of the
    /// user's traces, while being *independent of every other user*: a
    /// user's digest is a pure function of her own records. That is the
    /// property incremental recomputation keys on — comparing two datasets'
    /// sub-fingerprints identifies exactly which users need re-measurement.
    ///
    /// Traces of the same user are assumed contiguous, which
    /// [`geopriv_mobility::Dataset`] guarantees (its constructor sorts traces
    /// by user). Non-contiguous duplicates would produce one entry per run.
    pub fn per_user(&self) -> Vec<(UserId, u64)> {
        let mut out: Vec<(UserId, u64)> = Vec::new();
        for &(user, len, hash) in &self.traces {
            match out.last_mut() {
                Some((last, digest)) if last.value() == user => {
                    *digest = Self::mix_trace(*digest, len, hash);
                }
                _ => {
                    let digest = Self::mix_trace(0xcbf2_9ce4_8422_2325, len, hash);
                    out.push((UserId::new(user), digest));
                }
            }
        }
        out
    }

    /// The sub-fingerprint of a single user, or `None` if the fingerprinted
    /// dataset has no trace for her.
    pub fn user_fingerprint(&self, user: UserId) -> Option<u64> {
        self.per_user().into_iter().find(|(u, _)| *u == user).map(|(_, digest)| digest)
    }

    /// Users whose sub-fingerprint differs between `self` (the new dataset)
    /// and `previous`, including users absent from `previous` entirely.
    /// Users present only in `previous` (removed from the fleet) are *not*
    /// reported — they simply have no entry to recompute.
    pub fn changed_users(&self, previous: &DatasetFingerprint) -> Vec<UserId> {
        let old: std::collections::BTreeMap<UserId, u64> =
            previous.per_user().into_iter().collect();
        self.per_user()
            .into_iter()
            .filter(|(user, digest)| old.get(user) != Some(digest))
            .map(|(user, _)| user)
            .collect()
    }

    fn mix_trace(digest: u64, len: usize, hash: u64) -> u64 {
        let digest = (digest ^ len as u64).wrapping_mul(0x100_0000_01b3);
        (digest ^ hash).wrapping_mul(0x100_0000_01b3)
    }
}

/// A metric value in `[0, 1]` together with its *user-keyed* per-user
/// breakdown.
///
/// Every breakdown entry carries the [`UserId`] it was measured for, so two
/// metrics evaluated over the same dataset can be joined by user even when
/// one of them excludes users it cannot evaluate (e.g. POI retrieval for
/// users without POIs) — positional zipping of breakdowns is never needed
/// and never correct.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricValue {
    value: f64,
    evaluated: usize,
    per_user: Vec<(UserId, f64)>,
}

impl MetricValue {
    /// Creates a metric value from user-keyed per-trace values.
    ///
    /// The aggregate is the mean over the given entries, summed in the given
    /// order — for metrics that evaluate one entry per trace this is the
    /// historical trace-grain mean, bit for bit. A user appearing several
    /// times (a dataset may hold several traces per user, e.g. one per day)
    /// contributes one *breakdown* entry carrying the mean of her traces, at
    /// her first position, so breakdown keys stay unique and joinable while
    /// the aggregate keeps weighting every trace equally.
    ///
    /// Non-finite values and an empty list are rejected; a metric that
    /// cannot evaluate *any* user represents that with
    /// [`MetricValue::defined_zero`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidParameter`] if `per_user` is empty or
    /// contains non-finite values.
    pub fn from_per_user(per_user: Vec<(UserId, f64)>) -> Result<Self, MetricError> {
        if per_user.is_empty() {
            return Err(MetricError::InvalidParameter {
                name: "per_user",
                value: 0.0,
                reason: "metric needs at least one per-user value",
            });
        }
        if per_user.iter().any(|(_, v)| !v.is_finite()) {
            return Err(MetricError::InvalidParameter {
                name: "per_user",
                value: f64::NAN,
                reason: "per-user metric values must be finite",
            });
        }
        let value = per_user.iter().map(|(_, v)| v).sum::<f64>() / per_user.len() as f64;
        let evaluated = per_user.len();
        // Merge multi-trace users: one breakdown entry per user, in
        // first-appearance order, carrying the mean of the user's entries
        // (exactly the single entry for the common one-trace-per-user case).
        let mut index = std::collections::BTreeMap::new();
        let mut merged: Vec<(UserId, f64, usize)> = Vec::with_capacity(per_user.len());
        for (user, v) in per_user {
            match index.get(&user) {
                Some(&i) => {
                    let (_, sum, count): &mut (UserId, f64, usize) = &mut merged[i];
                    *sum += v;
                    *count += 1;
                }
                None => {
                    index.insert(user, merged.len());
                    merged.push((user, v, 1));
                }
            }
        }
        let per_user = merged.into_iter().map(|(user, sum, n)| (user, sum / n as f64)).collect();
        Ok(Self { value, evaluated, per_user })
    }

    /// The metric value of a dataset on which *no* user could be evaluated
    /// but the metric is still well defined as zero (e.g. POI retrieval when
    /// no user has a single POI: nothing is retrievable at all). The
    /// aggregate is `0.0` and the breakdown is empty — excluded users never
    /// appear in a breakdown.
    pub fn defined_zero() -> Self {
        Self { value: 0.0, evaluated: 0, per_user: Vec::new() }
    }

    /// The aggregate metric value (mean over the evaluated traces), in
    /// `[0, 1]`.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Number of per-trace entries behind the aggregate mean — the count of
    /// traces the metric actually evaluated, *before* multi-trace users are
    /// merged into the breakdown (zero for [`MetricValue::defined_zero`]).
    ///
    /// Sharded sweep execution uses this as the weight when combining
    /// shard-level aggregates into a dataset-level mean.
    pub fn evaluated_count(&self) -> usize {
        self.evaluated
    }

    /// The user-keyed per-user metric values, in dataset (trace) order.
    ///
    /// A metric may exclude users it cannot evaluate (e.g. POI retrieval for
    /// users without POIs — see the metric's docs); the breakdown then covers
    /// only the evaluated users. Join breakdowns of different metrics by
    /// [`UserId`], never by position.
    pub fn per_user(&self) -> &[(UserId, f64)] {
        &self.per_user
    }

    /// The evaluated users, in breakdown order.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.per_user.iter().map(|(user, _)| *user)
    }

    /// The value measured for one user, or `None` if the metric excluded
    /// that user.
    pub fn value_for(&self, user: UserId) -> Option<f64> {
        self.per_user.iter().find(|(u, _)| *u == user).map(|(_, v)| *v)
    }

    /// The worst per-user value — the maximum for a privacy metric (where
    /// higher is worse), the minimum for a utility metric. Falls back to the
    /// aggregate when the breakdown is empty ([`MetricValue::defined_zero`]).
    pub fn worst_for_privacy(&self) -> f64 {
        self.per_user.iter().map(|(_, v)| *v).fold(self.value, f64::max)
    }

    /// The worst per-user value for a utility metric (minimum). Falls back to
    /// the aggregate when the breakdown is empty.
    pub fn worst_for_utility(&self) -> f64 {
        if self.per_user.is_empty() {
            return self.value;
        }
        self.per_user.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} (over {} users)", self.value, self.per_user.len())
    }
}

/// A privacy metric: *lower is better* (less information retrievable by the
/// adversary from the protected data).
///
/// The paper's example is POI retrieval: "the proportion of actual POIs
/// retrieved from the protected data for each user".
pub trait PrivacyMetric: Send + Sync {
    /// Human-readable name of the metric.
    fn name(&self) -> &str;

    /// Privacy metrics improve downward ([`Direction::LowerIsBetter`]).
    fn direction(&self) -> Direction {
        Direction::LowerIsBetter
    }

    /// Evaluates the metric for an actual dataset and its protected counterpart.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::DatasetMismatch`] when the datasets are not
    /// aligned, or configuration errors.
    fn evaluate(&self, actual: &Dataset, protected: &Dataset) -> Result<MetricValue, MetricError>;

    /// Precomputes the actual-side state reused by
    /// [`PrivacyMetric::evaluate_prepared`]. The default prepares nothing.
    ///
    /// Implementations must guarantee that `evaluate(a, p)` and
    /// `evaluate_prepared(&prepare(a)?, a, p)` return bit-identical values.
    ///
    /// # Errors
    ///
    /// Propagates errors from analyzing the actual dataset.
    fn prepare(&self, actual: &Dataset) -> Result<PreparedState, MetricError> {
        let _ = actual;
        Ok(PreparedState::empty())
    }

    /// Evaluates the metric, reusing state prepared from the same actual
    /// dataset by [`PrivacyMetric::prepare`]. The default ignores the state
    /// and falls back to [`PrivacyMetric::evaluate`].
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::DatasetMismatch`] when the datasets are not
    /// aligned or (for metrics that prepare state and fingerprint it, see
    /// [`DatasetFingerprint`]) `prepared` was built for a different dataset.
    fn evaluate_prepared(
        &self,
        prepared: &PreparedState,
        actual: &Dataset,
        protected: &Dataset,
    ) -> Result<MetricValue, MetricError> {
        let _ = prepared;
        self.evaluate(actual, protected)
    }

    /// A stable key encoding the metric's full configuration, so prepared
    /// state can be shared between separately constructed but identically
    /// configured metric instances. Defaults to the metric name; metrics with
    /// parameters must include them.
    fn cache_key(&self) -> String {
        self.name().to_string()
    }
}

/// A utility metric: *higher is better* (the protected data remains useful).
///
/// The paper's example is area-coverage similarity at city-block granularity.
pub trait UtilityMetric: Send + Sync {
    /// Human-readable name of the metric.
    fn name(&self) -> &str;

    /// Utility metrics improve upward ([`Direction::HigherIsBetter`]).
    fn direction(&self) -> Direction {
        Direction::HigherIsBetter
    }

    /// Evaluates the metric for an actual dataset and its protected counterpart.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::DatasetMismatch`] when the datasets are not
    /// aligned, or configuration errors.
    fn evaluate(&self, actual: &Dataset, protected: &Dataset) -> Result<MetricValue, MetricError>;

    /// Precomputes the actual-side state reused by
    /// [`UtilityMetric::evaluate_prepared`]. The default prepares nothing.
    ///
    /// Implementations must guarantee that `evaluate(a, p)` and
    /// `evaluate_prepared(&prepare(a)?, a, p)` return bit-identical values.
    ///
    /// # Errors
    ///
    /// Propagates errors from analyzing the actual dataset.
    fn prepare(&self, actual: &Dataset) -> Result<PreparedState, MetricError> {
        let _ = actual;
        Ok(PreparedState::empty())
    }

    /// Evaluates the metric, reusing state prepared from the same actual
    /// dataset by [`UtilityMetric::prepare`]. The default ignores the state
    /// and falls back to [`UtilityMetric::evaluate`].
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::DatasetMismatch`] when the datasets are not
    /// aligned or (for metrics that prepare state and fingerprint it, see
    /// [`DatasetFingerprint`]) `prepared` was built for a different dataset.
    fn evaluate_prepared(
        &self,
        prepared: &PreparedState,
        actual: &Dataset,
        protected: &Dataset,
    ) -> Result<MetricValue, MetricError> {
        let _ = prepared;
        self.evaluate(actual, protected)
    }

    /// A stable key encoding the metric's full configuration, so prepared
    /// state can be shared between separately constructed but identically
    /// configured metric instances. Defaults to the metric name; metrics with
    /// parameters must include them.
    fn cache_key(&self) -> String {
        self.name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed(values: &[(u64, f64)]) -> Vec<(UserId, f64)> {
        values.iter().map(|&(u, v)| (UserId::new(u), v)).collect()
    }

    #[test]
    fn metric_value_aggregates_per_user_values() {
        let v = MetricValue::from_per_user(keyed(&[(1, 0.1), (2, 0.3), (3, 0.2)])).unwrap();
        assert!((v.value() - 0.2).abs() < 1e-12);
        assert_eq!(v.evaluated_count(), 3);
        assert_eq!(v.per_user().len(), 3);
        assert_eq!(
            v.users().collect::<Vec<_>>(),
            vec![UserId::new(1), UserId::new(2), UserId::new(3)]
        );
        assert_eq!(v.value_for(UserId::new(2)), Some(0.3));
        assert_eq!(v.value_for(UserId::new(9)), None);
        assert_eq!(v.worst_for_privacy(), 0.3);
        assert_eq!(v.worst_for_utility(), 0.1);
        assert!(v.to_string().contains("3 users"));
    }

    #[test]
    fn metric_value_rejects_bad_input() {
        assert!(MetricValue::from_per_user(vec![]).is_err());
        assert!(MetricValue::from_per_user(keyed(&[(1, 0.5), (2, f64::NAN)])).is_err());
        assert!(MetricValue::from_per_user(keyed(&[(1, f64::INFINITY)])).is_err());
    }

    /// A dataset may hold several traces per user (one per day, say): the
    /// aggregate stays the per-trace mean while the breakdown merges the
    /// user's traces into one joinable entry.
    #[test]
    fn multi_trace_users_are_merged_in_the_breakdown_only() {
        let v = MetricValue::from_per_user(keyed(&[(1, 0.2), (2, 0.9), (1, 0.4)])).unwrap();
        // Aggregate: mean over the three traces, not over the two users.
        assert!((v.value() - 0.5).abs() < 1e-12);
        // The evaluated count keeps the trace grain too.
        assert_eq!(v.evaluated_count(), 3);
        // Breakdown: one entry per user, first-appearance order, per-user
        // mean of her traces.
        assert_eq!(v.per_user().len(), 2);
        assert_eq!(v.per_user()[0].0, UserId::new(1));
        assert!((v.per_user()[0].1 - 0.3).abs() < 1e-12);
        assert_eq!(v.value_for(UserId::new(2)), Some(0.9));
    }

    #[test]
    fn defined_zero_has_an_empty_breakdown() {
        let v = MetricValue::defined_zero();
        assert_eq!(v.value(), 0.0);
        assert_eq!(v.evaluated_count(), 0);
        assert!(v.per_user().is_empty());
        assert_eq!(v.users().count(), 0);
        assert_eq!(v.value_for(UserId::new(1)), None);
        // The worst-case accessors fall back to the aggregate.
        assert_eq!(v.worst_for_privacy(), 0.0);
        assert_eq!(v.worst_for_utility(), 0.0);
        assert!(v.to_string().contains("0 users"));
    }

    #[test]
    fn prepared_state_wraps_and_downcasts() {
        let empty = PreparedState::empty();
        assert!(empty.is_empty());
        assert!(empty.downcast_ref::<u32>().is_none());
        assert!(format!("{empty:?}").contains("false"));

        let state = PreparedState::new(vec![1u32, 2, 3]);
        assert!(!state.is_empty());
        assert_eq!(state.downcast_ref::<Vec<u32>>(), Some(&vec![1u32, 2, 3]));
        // Downcasting to the wrong type fails instead of panicking.
        assert!(state.downcast_ref::<String>().is_none());
    }

    #[test]
    fn fingerprint_detects_interior_record_changes() {
        use geopriv_geo::{GeoPoint, Seconds};
        use geopriv_mobility::{Record, Trace, UserId};

        let dataset_with_middle = |lat: f64| {
            let records = vec![
                Record::new(Seconds::new(0.0), GeoPoint::clamped(37.70, -122.45)),
                Record::new(Seconds::new(60.0), GeoPoint::clamped(lat, -122.44)),
                Record::new(Seconds::new(120.0), GeoPoint::clamped(37.72, -122.43)),
            ];
            Dataset::new(vec![Trace::new(UserId::new(1), records).unwrap()]).unwrap()
        };
        // Same user, length, first and last records — only the middle differs.
        let a = dataset_with_middle(37.71);
        let b = dataset_with_middle(37.99);
        let fp = DatasetFingerprint::of(&a);
        assert!(fp.ensure_matches(&a, "test").is_ok());
        assert!(matches!(fp.ensure_matches(&b, "test"), Err(MetricError::DatasetMismatch { .. })));
    }

    #[test]
    fn default_prepare_is_a_passthrough() {
        use geopriv_geo::{GeoPoint, Seconds};
        use geopriv_mobility::{Record, Trace, UserId};

        /// A metric relying entirely on the trait's default prepared-state
        /// plumbing.
        struct ConstantMetric;
        impl PrivacyMetric for ConstantMetric {
            fn name(&self) -> &str {
                "constant"
            }
            fn evaluate(&self, actual: &Dataset, _: &Dataset) -> Result<MetricValue, MetricError> {
                MetricValue::from_per_user(actual.iter().map(|t| (t.user(), 0.5)).collect())
            }
        }

        let trace = Trace::new(
            UserId::new(1),
            vec![Record::new(Seconds::new(0.0), GeoPoint::clamped(37.77, -122.41))],
        )
        .unwrap();
        let dataset = Dataset::new(vec![trace]).unwrap();
        let metric = ConstantMetric;
        assert_eq!(metric.cache_key(), "constant");
        let prepared = metric.prepare(&dataset).unwrap();
        assert!(prepared.is_empty());
        let direct = metric.evaluate(&dataset, &dataset).unwrap();
        let via_prepared = metric.evaluate_prepared(&prepared, &dataset, &dataset).unwrap();
        assert_eq!(direct, via_prepared);
    }
}
