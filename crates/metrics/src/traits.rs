//! The metric interfaces of the framework.
//!
//! The paper's framework is "modular: by using different metrics, a system
//! designer is able to fine-tune her LPPM according to her expected privacy
//! and utility guarantees". [`PrivacyMetric`] and [`UtilityMetric`] are those
//! two plug-in points; both compare an *actual* dataset with its *protected*
//! counterpart and return a value in `[0, 1]`.

use crate::error::MetricError;
use geopriv_mobility::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A metric value in `[0, 1]` together with its per-user breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricValue {
    value: f64,
    per_user: Vec<f64>,
}

impl MetricValue {
    /// Creates a metric value from per-user values (the aggregate is their mean).
    ///
    /// Non-finite per-user values are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidParameter`] if `per_user` is empty or
    /// contains non-finite values.
    pub fn from_per_user(per_user: Vec<f64>) -> Result<Self, MetricError> {
        if per_user.is_empty() {
            return Err(MetricError::InvalidParameter {
                name: "per_user",
                value: 0.0,
                reason: "metric needs at least one per-user value",
            });
        }
        if per_user.iter().any(|v| !v.is_finite()) {
            return Err(MetricError::InvalidParameter {
                name: "per_user",
                value: f64::NAN,
                reason: "per-user metric values must be finite",
            });
        }
        let value = per_user.iter().sum::<f64>() / per_user.len() as f64;
        Ok(Self { value, per_user })
    }

    /// The aggregate metric value (mean over users), in `[0, 1]`.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The per-user metric values, in dataset (user id) order.
    pub fn per_user(&self) -> &[f64] {
        &self.per_user
    }

    /// The worst per-user value — the maximum for a privacy metric (where
    /// higher is worse), the minimum for a utility metric.
    pub fn worst_for_privacy(&self) -> f64 {
        self.per_user.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// The worst per-user value for a utility metric (minimum).
    pub fn worst_for_utility(&self) -> f64 {
        self.per_user.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} (over {} users)", self.value, self.per_user.len())
    }
}

/// A privacy metric: *lower is better* (less information retrievable by the
/// adversary from the protected data).
///
/// The paper's example is POI retrieval: "the proportion of actual POIs
/// retrieved from the protected data for each user".
pub trait PrivacyMetric: Send + Sync {
    /// Human-readable name of the metric.
    fn name(&self) -> &str;

    /// Evaluates the metric for an actual dataset and its protected counterpart.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::DatasetMismatch`] when the datasets are not
    /// aligned, or configuration errors.
    fn evaluate(&self, actual: &Dataset, protected: &Dataset) -> Result<MetricValue, MetricError>;
}

/// A utility metric: *higher is better* (the protected data remains useful).
///
/// The paper's example is area-coverage similarity at city-block granularity.
pub trait UtilityMetric: Send + Sync {
    /// Human-readable name of the metric.
    fn name(&self) -> &str;

    /// Evaluates the metric for an actual dataset and its protected counterpart.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::DatasetMismatch`] when the datasets are not
    /// aligned, or configuration errors.
    fn evaluate(&self, actual: &Dataset, protected: &Dataset) -> Result<MetricValue, MetricError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_value_aggregates_per_user_values() {
        let v = MetricValue::from_per_user(vec![0.1, 0.3, 0.2]).unwrap();
        assert!((v.value() - 0.2).abs() < 1e-12);
        assert_eq!(v.per_user().len(), 3);
        assert_eq!(v.worst_for_privacy(), 0.3);
        assert_eq!(v.worst_for_utility(), 0.1);
        assert!(v.to_string().contains("3 users"));
    }

    #[test]
    fn metric_value_rejects_bad_input() {
        assert!(MetricValue::from_per_user(vec![]).is_err());
        assert!(MetricValue::from_per_user(vec![0.5, f64::NAN]).is_err());
        assert!(MetricValue::from_per_user(vec![f64::INFINITY]).is_err());
    }
}
