//! The POI-retrieval privacy metric.
//!
//! The paper's privacy objective: "the retrieval in the protected data of at
//! most 10 % of the Points of interest (POIs) of users", quantified by "a
//! privacy metric which quantifies the proportion of actual POIs retrieved
//! from the protected data for each user". Lower is better.

use crate::error::MetricError;
use crate::poi::{Poi, PoiExtractor};
use crate::traits::{DatasetFingerprint, MetricValue, PreparedState, PrivacyMetric};
use geopriv_geo::{distance, Meters};
use geopriv_mobility::Dataset;
use serde::{Deserialize, Serialize};

/// Privacy metric: proportion of a user's actual POIs that can still be
/// retrieved from her protected trace.
///
/// For each user the metric:
/// 1. extracts the distinct POIs of the actual trace and of the protected
///    trace with the same [`PoiExtractor`];
/// 2. counts an actual POI as *retrieved* when some protected POI lies within
///    `match_radius` of it (great-circle distance, so wide-area traces are
///    measured correctly);
/// 3. reports `retrieved / total`.
///
/// Users without any actual POI are *excluded* from the dataset-level mean:
/// nothing can be learned about their stops, so counting them as "perfectly
/// private" zeros would bias the average toward privacy. The dataset-level
/// value is the mean over users that have at least one POI — the quantity
/// plotted on the y-axis of Figure 1a. When *no* user has a POI the metric is
/// defined as `0.0` (nothing is retrievable at all).
///
/// The expensive actual-side POI extraction is invariant across evaluations
/// against the same actual dataset; [`PrivacyMetric::prepare`] computes it
/// once so sweeps and campaigns can amortize it.
///
/// # Examples
///
/// ```
/// use geopriv_metrics::{PoiRetrieval, PrivacyMetric};
/// use geopriv_lppm::{Epsilon, GeoIndistinguishability, Lppm};
/// use geopriv_mobility::generator::TaxiFleetBuilder;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let actual = TaxiFleetBuilder::new().drivers(3).duration_hours(6.0).build(&mut rng)?;
/// let protected = GeoIndistinguishability::new(Epsilon::new(0.005)?)
///     .protect_dataset(&actual, &mut rng)?;
///
/// let privacy = PoiRetrieval::default().evaluate(&actual, &protected)?;
/// assert!((0.0..=1.0).contains(&privacy.value()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoiRetrieval {
    extractor: PoiExtractor,
    match_radius: Meters,
}

impl Default for PoiRetrieval {
    fn default() -> Self {
        Self { extractor: PoiExtractor::default(), match_radius: Meters::new(200.0) }
    }
}

/// Actual-side state of [`PoiRetrieval`]: the distinct POIs of every actual
/// trace, aligned with the dataset's trace order, plus the fingerprint tying
/// the state to the dataset it was extracted from.
struct PreparedPois {
    per_trace: Vec<Vec<Poi>>,
    fingerprint: DatasetFingerprint,
}

impl PoiRetrieval {
    /// The metric's id/name inside suites and sweep results.
    pub const ID: &'static str = "poi-retrieval";

    /// Creates the metric with an explicit extractor and match radius.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidParameter`] for a non-positive radius.
    pub fn new(extractor: PoiExtractor, match_radius: Meters) -> Result<Self, MetricError> {
        if !(match_radius.as_f64().is_finite() && match_radius.as_f64() > 0.0) {
            return Err(MetricError::InvalidParameter {
                name: "match_radius",
                value: match_radius.as_f64(),
                reason: "match radius must be finite and strictly positive",
            });
        }
        Ok(Self { extractor, match_radius })
    }

    /// The POI extractor used on both the actual and protected traces.
    pub fn extractor(&self) -> PoiExtractor {
        self.extractor
    }

    /// The matching radius under which an actual POI counts as retrieved.
    pub fn match_radius(&self) -> Meters {
        self.match_radius
    }

    /// Retrieval proportion for one user: fraction of her actual POIs with a
    /// protected POI within the match radius, by great-circle distance.
    fn retrieval(&self, actual_pois: &[Poi], protected_pois: &[Poi]) -> f64 {
        let radius = self.match_radius.as_f64();
        // Exact prefilter for the pairwise scan: the great-circle distance is
        // at least the meridian distance of the latitude difference, so pairs
        // whose latitudes alone are too far apart skip the trigonometry.
        let max_dlat_deg = radius / (distance::EARTH_RADIUS_M * std::f64::consts::PI / 180.0);
        let retrieved = actual_pois
            .iter()
            .filter(|actual| {
                protected_pois.iter().any(|protected| {
                    (actual.location.latitude() - protected.location.latitude()).abs()
                        <= max_dlat_deg
                        && distance::haversine(actual.location, protected.location).as_f64()
                            <= radius
                })
            })
            .count();
        retrieved as f64 / actual_pois.len() as f64
    }

    /// The shared evaluation body behind both `evaluate` (fresh extraction)
    /// and `evaluate_prepared` (cached extraction) — one code path, so the
    /// two routes are bit-identical by construction.
    fn evaluate_with_pois(
        &self,
        per_trace: &[Vec<Poi>],
        actual: &Dataset,
        protected: &Dataset,
    ) -> Result<MetricValue, MetricError> {
        let pairs = actual
            .paired_with(protected)
            .map_err(|e| MetricError::DatasetMismatch { reason: e.to_string() })?;
        // Users without any actual POI are skipped: their retrieval is
        // undefined, and averaging them in as 0.0 would bias the dataset mean
        // toward "perfectly private". The breakdown carries each evaluated
        // user's id, so downstream joins with metrics covering *all* users
        // (area coverage, distortion) align by user instead of by position.
        let mut per_user = Vec::with_capacity(pairs.len());
        for (&(actual_trace, protected_trace), actual_pois) in pairs.iter().zip(per_trace) {
            if actual_pois.is_empty() {
                continue;
            }
            let protected_pois = self.extractor.extract_distinct(protected_trace);
            per_user.push((actual_trace.user(), self.retrieval(actual_pois, &protected_pois)));
        }
        if per_user.is_empty() {
            // No user has a single POI: nothing is retrievable. The breakdown
            // rule stays consistent — excluded users never appear in it — so
            // the defined 0.0 value carries an empty breakdown.
            return Ok(MetricValue::defined_zero());
        }
        MetricValue::from_per_user(per_user)
    }
}

impl PrivacyMetric for PoiRetrieval {
    fn name(&self) -> &str {
        Self::ID
    }

    fn evaluate(&self, actual: &Dataset, protected: &Dataset) -> Result<MetricValue, MetricError> {
        // Direct path: extract and evaluate without building or verifying a
        // fingerprint — that bookkeeping only pays off when state is reused.
        let per_trace: Vec<Vec<Poi>> =
            actual.iter().map(|t| self.extractor.extract_distinct(t)).collect();
        self.evaluate_with_pois(&per_trace, actual, protected)
    }

    fn prepare(&self, actual: &Dataset) -> Result<PreparedState, MetricError> {
        let per_trace = actual.iter().map(|t| self.extractor.extract_distinct(t)).collect();
        Ok(PreparedState::new(PreparedPois {
            per_trace,
            fingerprint: DatasetFingerprint::of(actual),
        }))
    }

    fn evaluate_prepared(
        &self,
        prepared: &PreparedState,
        actual: &Dataset,
        protected: &Dataset,
    ) -> Result<MetricValue, MetricError> {
        let state = prepared.downcast_ref::<PreparedPois>().ok_or_else(|| {
            MetricError::DatasetMismatch {
                reason: "prepared state was not built by poi-retrieval".to_string(),
            }
        })?;
        state.fingerprint.ensure_matches(actual, self.name())?;
        self.evaluate_with_pois(&state.per_trace, actual, protected)
    }

    fn cache_key(&self) -> String {
        format!(
            "poi-retrieval/dwell={}/diameter={}/radius={}",
            self.extractor.min_dwell().as_f64(),
            self.extractor.max_diameter().as_f64(),
            self.match_radius.as_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_geo::{GeoPoint, LocalProjection, Seconds};
    use geopriv_lppm::{Epsilon, GeoIndistinguishability, Identity, Lppm};
    use geopriv_mobility::generator::TaxiFleetBuilder;
    use geopriv_mobility::{Record, Trace, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn taxi_dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        TaxiFleetBuilder::new().drivers(4).duration_hours(8.0).build(&mut rng).unwrap()
    }

    /// A trace dwelling 30 minutes at `at`, sampled every 30 s.
    fn dwell_trace(user: u64, at: GeoPoint) -> Trace {
        let records: Vec<Record> =
            (0..60).map(|i| Record::new(Seconds::new(i as f64 * 30.0), at)).collect();
        Trace::new(UserId::new(user), records).unwrap()
    }

    /// A trace in constant motion: no POI at all.
    fn moving_trace(user: u64) -> Trace {
        let records: Vec<Record> = (0..200)
            .map(|i| {
                Record::new(
                    Seconds::new(i as f64 * 30.0),
                    GeoPoint::new(37.70 + i as f64 * 0.0004, -122.45).unwrap(),
                )
            })
            .collect();
        Trace::new(UserId::new(user), records).unwrap()
    }

    #[test]
    fn construction_validates_radius() {
        assert!(PoiRetrieval::new(PoiExtractor::default(), Meters::new(100.0)).is_ok());
        assert!(PoiRetrieval::new(PoiExtractor::default(), Meters::new(0.0)).is_err());
        assert!(PoiRetrieval::new(PoiExtractor::default(), Meters::new(f64::NAN)).is_err());
        let metric = PoiRetrieval::default();
        assert_eq!(metric.name(), "poi-retrieval");
        assert_eq!(metric.match_radius().as_f64(), 200.0);
        assert_eq!(metric.extractor().max_diameter().as_f64(), 200.0);
        assert!(metric.cache_key().contains("radius=200"));
    }

    #[test]
    fn unprotected_data_has_maximal_retrieval() {
        let actual = taxi_dataset(21);
        let mut rng = StdRng::seed_from_u64(1);
        let protected = Identity::new().protect_dataset(&actual, &mut rng).unwrap();
        let value = PoiRetrieval::default().evaluate(&actual, &protected).unwrap();
        // Identical data: every actual POI is trivially retrieved.
        assert!(value.value() > 0.99, "got {}", value.value());
    }

    #[test]
    fn heavy_noise_hides_most_pois() {
        let actual = taxi_dataset(22);
        let mut rng = StdRng::seed_from_u64(2);
        // epsilon = 0.0005 -> mean noise 4 km: POIs should be essentially gone.
        let protected = GeoIndistinguishability::new(Epsilon::new(0.0005).unwrap())
            .protect_dataset(&actual, &mut rng)
            .unwrap();
        let value = PoiRetrieval::default().evaluate(&actual, &protected).unwrap();
        assert!(value.value() < 0.15, "got {}", value.value());
    }

    #[test]
    fn retrieval_decreases_monotonically_with_noise() {
        let actual = taxi_dataset(23);
        let evaluate = |eps: f64| {
            let mut rng = StdRng::seed_from_u64(3);
            let protected = GeoIndistinguishability::new(Epsilon::new(eps).unwrap())
                .protect_dataset(&actual, &mut rng)
                .unwrap();
            PoiRetrieval::default().evaluate(&actual, &protected).unwrap().value()
        };
        let low_noise = evaluate(0.5);
        let mid_noise = evaluate(0.01);
        let high_noise = evaluate(0.0005);
        assert!(low_noise >= mid_noise, "{low_noise} vs {mid_noise}");
        assert!(mid_noise >= high_noise, "{mid_noise} vs {high_noise}");
        assert!(low_noise > 0.8);
    }

    #[test]
    fn dataset_without_any_poi_has_a_defined_zero_value() {
        let dataset = Dataset::new(vec![moving_trace(1), moving_trace(2)]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let protected = Identity::new().protect_dataset(&dataset, &mut rng).unwrap();
        let value = PoiRetrieval::default().evaluate(&dataset, &protected).unwrap();
        assert_eq!(value.value(), 0.0);
        // Consistent breakdown rule: users without POIs never appear in it,
        // so the all-excluded case carries an empty breakdown.
        assert!(value.per_user().is_empty());
    }

    /// Regression test for the zero-bias bug: a user with no actual POI used
    /// to contribute 0.0 ("perfectly private") to the dataset mean, dragging
    /// it down. She must be excluded instead.
    #[test]
    fn users_without_pois_are_excluded_from_the_mean() {
        let with_poi = dwell_trace(1, GeoPoint::new(37.76, -122.45).unwrap());
        let without_poi = moving_trace(2);
        let dataset = Dataset::new(vec![with_poi, without_poi]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let released = Identity::new().protect_dataset(&dataset, &mut rng).unwrap();

        let value = PoiRetrieval::default().evaluate(&dataset, &released).unwrap();
        // Releasing the truth retrieves 100% of user 1's POIs; user 2 has
        // nothing to retrieve and must not drag the mean to 0.5.
        assert_eq!(value.value(), 1.0, "no-POI user biased the mean");
        // The breakdown only covers users that were actually evaluated — and
        // names them, so nobody has to guess which users were excluded.
        assert_eq!(value.per_user(), &[(UserId::new(1), 1.0)]);
        assert_eq!(value.value_for(UserId::new(2)), None);
    }

    /// Regression test for the projection-anchor bug: distances used to be
    /// measured in a planar frame centered on the user's *first* POI, which
    /// distorts longitudes far away from that anchor. A protected POI 150 m
    /// east of an actual POI 50° of latitude away from the anchor appeared
    /// ~295 m away and was missed. Great-circle matching retrieves it.
    #[test]
    fn wide_area_pois_match_by_true_distance() {
        let south = GeoPoint::new(10.0, 10.0).unwrap();
        let north = GeoPoint::new(60.0, 10.0).unwrap();
        // One user dwelling 30 minutes at each end of a 5500 km trace.
        let mut records: Vec<Record> =
            (0..60).map(|i| Record::new(Seconds::new(i as f64 * 30.0), south)).collect();
        records.extend((60..120).map(|i| Record::new(Seconds::new(i as f64 * 30.0), north)));
        let actual =
            Dataset::new(vec![Trace::new(UserId::new(1), records.clone()).unwrap()]).unwrap();

        // Protected counterpart: every record shifted 150 m east at its own
        // latitude — within the 200 m match radius of both POIs.
        let shift_east = |point: GeoPoint| {
            let projection = LocalProjection::centered_on(point);
            projection.unproject(projection.project(point).translated(150.0, 0.0))
        };
        let protected_records: Vec<Record> =
            records.iter().map(|r| r.with_location(shift_east(r.location()))).collect();
        let protected =
            Dataset::new(vec![Trace::new(UserId::new(1), protected_records).unwrap()]).unwrap();

        let value = PoiRetrieval::default().evaluate(&actual, &protected).unwrap();
        assert_eq!(value.value(), 1.0, "far-from-anchor POI was not retrieved");
    }

    /// The prepared path must agree bit-for-bit with direct evaluation, and
    /// reject state built for a different dataset.
    #[test]
    fn prepared_evaluation_matches_direct_evaluation() {
        let actual = taxi_dataset(24);
        let mut rng = StdRng::seed_from_u64(6);
        let protected = GeoIndistinguishability::new(Epsilon::new(0.01).unwrap())
            .protect_dataset(&actual, &mut rng)
            .unwrap();
        let metric = PoiRetrieval::default();
        let prepared = metric.prepare(&actual).unwrap();
        assert!(!prepared.is_empty());

        let direct = metric.evaluate(&actual, &protected).unwrap();
        let via_prepared = metric.evaluate_prepared(&prepared, &actual, &protected).unwrap();
        assert_eq!(direct, via_prepared);

        // State prepared for a smaller dataset is rejected.
        let smaller = actual.take(2).unwrap();
        let stale = metric.prepare(&smaller).unwrap();
        assert!(matches!(
            metric.evaluate_prepared(&stale, &actual, &protected),
            Err(MetricError::DatasetMismatch { .. })
        ));
        // So is state from a dataset with the same shape but different data.
        let same_shape = taxi_dataset(25);
        let foreign = metric.prepare(&same_shape).unwrap();
        assert!(matches!(
            metric.evaluate_prepared(&foreign, &actual, &protected),
            Err(MetricError::DatasetMismatch { .. })
        ));
        // So is state of the wrong type.
        assert!(matches!(
            metric.evaluate_prepared(&PreparedState::new(7u32), &actual, &protected),
            Err(MetricError::DatasetMismatch { .. })
        ));
    }

    #[test]
    fn mismatched_datasets_are_rejected() {
        let a = taxi_dataset(25);
        let b = a.take(2).unwrap();
        assert!(matches!(
            PoiRetrieval::default().evaluate(&a, &b),
            Err(MetricError::DatasetMismatch { .. })
        ));
    }
}
