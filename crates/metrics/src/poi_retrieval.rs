//! The POI-retrieval privacy metric.
//!
//! The paper's privacy objective: "the retrieval in the protected data of at
//! most 10 % of the Points of interest (POIs) of users", quantified by "a
//! privacy metric which quantifies the proportion of actual POIs retrieved
//! from the protected data for each user". Lower is better.

use crate::error::MetricError;
use crate::poi::PoiExtractor;
use crate::traits::{MetricValue, PrivacyMetric};
use geopriv_geo::{LocalProjection, Meters, QuadTree};
use geopriv_mobility::Dataset;
use serde::{Deserialize, Serialize};

/// Privacy metric: proportion of a user's actual POIs that can still be
/// retrieved from her protected trace.
///
/// For each user the metric:
/// 1. extracts the distinct POIs of the actual trace and of the protected
///    trace with the same [`PoiExtractor`];
/// 2. counts an actual POI as *retrieved* when some protected POI lies within
///    `match_radius` of it;
/// 3. reports `retrieved / total` (or 0 when the user has no actual POI —
///    nothing can be learned about her stops).
///
/// The dataset-level value is the mean over users, exactly the quantity
/// plotted on the y-axis of Figure 1a.
///
/// # Examples
///
/// ```
/// use geopriv_metrics::{PoiRetrieval, PrivacyMetric};
/// use geopriv_lppm::{Epsilon, GeoIndistinguishability, Lppm};
/// use geopriv_mobility::generator::TaxiFleetBuilder;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let actual = TaxiFleetBuilder::new().drivers(3).duration_hours(6.0).build(&mut rng)?;
/// let protected = GeoIndistinguishability::new(Epsilon::new(0.005)?)
///     .protect_dataset(&actual, &mut rng)?;
///
/// let privacy = PoiRetrieval::default().evaluate(&actual, &protected)?;
/// assert!((0.0..=1.0).contains(&privacy.value()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoiRetrieval {
    extractor: PoiExtractor,
    match_radius: Meters,
}

impl Default for PoiRetrieval {
    fn default() -> Self {
        Self { extractor: PoiExtractor::default(), match_radius: Meters::new(200.0) }
    }
}

impl PoiRetrieval {
    /// Creates the metric with an explicit extractor and match radius.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidParameter`] for a non-positive radius.
    pub fn new(extractor: PoiExtractor, match_radius: Meters) -> Result<Self, MetricError> {
        if !(match_radius.as_f64().is_finite() && match_radius.as_f64() > 0.0) {
            return Err(MetricError::InvalidParameter {
                name: "match_radius",
                value: match_radius.as_f64(),
                reason: "match radius must be finite and strictly positive",
            });
        }
        Ok(Self { extractor, match_radius })
    }

    /// The POI extractor used on both the actual and protected traces.
    pub fn extractor(&self) -> PoiExtractor {
        self.extractor
    }

    /// The matching radius under which an actual POI counts as retrieved.
    pub fn match_radius(&self) -> Meters {
        self.match_radius
    }
}

impl PrivacyMetric for PoiRetrieval {
    fn name(&self) -> &str {
        "poi-retrieval"
    }

    fn evaluate(&self, actual: &Dataset, protected: &Dataset) -> Result<MetricValue, MetricError> {
        let pairs = actual
            .paired_with(protected)
            .map_err(|e| MetricError::DatasetMismatch { reason: e.to_string() })?;

        let mut per_user = Vec::with_capacity(pairs.len());
        for (actual_trace, protected_trace) in pairs {
            let actual_pois = self.extractor.extract_distinct(actual_trace);
            if actual_pois.is_empty() {
                per_user.push(0.0);
                continue;
            }
            let protected_pois = self.extractor.extract_distinct(protected_trace);
            if protected_pois.is_empty() {
                per_user.push(0.0);
                continue;
            }
            // Index the protected POIs for radius queries.
            let projection = LocalProjection::centered_on(actual_pois[0].location);
            let protected_points: Vec<_> =
                protected_pois.iter().map(|p| projection.project(p.location)).collect();
            let index = QuadTree::build(&protected_points);

            let retrieved = actual_pois
                .iter()
                .filter(|poi| {
                    index.any_within_radius(projection.project(poi.location), self.match_radius)
                })
                .count();
            per_user.push(retrieved as f64 / actual_pois.len() as f64);
        }
        MetricValue::from_per_user(per_user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_geo::{GeoPoint, Seconds};
    use geopriv_lppm::{Epsilon, GeoIndistinguishability, Identity, Lppm};
    use geopriv_mobility::generator::TaxiFleetBuilder;
    use geopriv_mobility::{Record, Trace, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn taxi_dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        TaxiFleetBuilder::new().drivers(4).duration_hours(8.0).build(&mut rng).unwrap()
    }

    #[test]
    fn construction_validates_radius() {
        assert!(PoiRetrieval::new(PoiExtractor::default(), Meters::new(100.0)).is_ok());
        assert!(PoiRetrieval::new(PoiExtractor::default(), Meters::new(0.0)).is_err());
        assert!(PoiRetrieval::new(PoiExtractor::default(), Meters::new(f64::NAN)).is_err());
        let metric = PoiRetrieval::default();
        assert_eq!(metric.name(), "poi-retrieval");
        assert_eq!(metric.match_radius().as_f64(), 200.0);
        assert_eq!(metric.extractor().max_diameter().as_f64(), 200.0);
    }

    #[test]
    fn unprotected_data_has_maximal_retrieval() {
        let actual = taxi_dataset(21);
        let mut rng = StdRng::seed_from_u64(1);
        let protected = Identity::new().protect_dataset(&actual, &mut rng).unwrap();
        let value = PoiRetrieval::default().evaluate(&actual, &protected).unwrap();
        // Identical data: every actual POI is trivially retrieved.
        assert!(value.value() > 0.99, "got {}", value.value());
    }

    #[test]
    fn heavy_noise_hides_most_pois() {
        let actual = taxi_dataset(22);
        let mut rng = StdRng::seed_from_u64(2);
        // epsilon = 0.0005 -> mean noise 4 km: POIs should be essentially gone.
        let protected = GeoIndistinguishability::new(Epsilon::new(0.0005).unwrap())
            .protect_dataset(&actual, &mut rng)
            .unwrap();
        let value = PoiRetrieval::default().evaluate(&actual, &protected).unwrap();
        assert!(value.value() < 0.15, "got {}", value.value());
    }

    #[test]
    fn retrieval_decreases_monotonically_with_noise() {
        let actual = taxi_dataset(23);
        let evaluate = |eps: f64| {
            let mut rng = StdRng::seed_from_u64(3);
            let protected = GeoIndistinguishability::new(Epsilon::new(eps).unwrap())
                .protect_dataset(&actual, &mut rng)
                .unwrap();
            PoiRetrieval::default().evaluate(&actual, &protected).unwrap().value()
        };
        let low_noise = evaluate(0.5);
        let mid_noise = evaluate(0.01);
        let high_noise = evaluate(0.0005);
        assert!(low_noise >= mid_noise, "{low_noise} vs {mid_noise}");
        assert!(mid_noise >= high_noise, "{mid_noise} vs {high_noise}");
        assert!(low_noise > 0.8);
    }

    #[test]
    fn users_without_pois_contribute_zero() {
        // A constantly moving user has no POI at all.
        let records: Vec<Record> = (0..200)
            .map(|i| {
                Record::new(
                    Seconds::new(i as f64 * 30.0),
                    GeoPoint::new(37.70 + i as f64 * 0.0004, -122.45).unwrap(),
                )
            })
            .collect();
        let trace = Trace::new(UserId::new(1), records).unwrap();
        let dataset = Dataset::new(vec![trace]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let protected = Identity::new().protect_dataset(&dataset, &mut rng).unwrap();
        let value = PoiRetrieval::default().evaluate(&dataset, &protected).unwrap();
        assert_eq!(value.value(), 0.0);
    }

    #[test]
    fn mismatched_datasets_are_rejected() {
        let a = taxi_dataset(25);
        let b = a.take(2).unwrap();
        assert!(matches!(
            PoiRetrieval::default().evaluate(&a, &b),
            Err(MetricError::DatasetMismatch { .. })
        ));
    }
}
