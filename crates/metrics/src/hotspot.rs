//! Hotspot-preservation utility metric.
//!
//! Many LBS analytics only need the *most visited places* of a user (her top
//! city blocks) rather than the full trace. This metric measures how well the
//! protected data preserves that ranking: the fraction of the user's top-`k`
//! most-visited cells that are still among the top-`k` of the protected
//! trace. It is an alternative utility plug-in demonstrating the modularity
//! claim of the paper ("by using different metrics it is possible to adapt
//! the provided model to specific privacy and utility guarantees").

use crate::error::MetricError;
use crate::grid_support::combined_bounds;
use crate::traits::{MetricValue, UtilityMetric};
use geopriv_geo::{CellId, Grid, Meters};
use geopriv_mobility::{Dataset, TraceView};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Utility metric: preservation of a user's top-`k` most-visited city blocks.
///
/// # Examples
///
/// ```
/// use geopriv_metrics::{HotspotPreservation, UtilityMetric};
/// use geopriv_lppm::{Identity, Lppm};
/// use geopriv_mobility::generator::TaxiFleetBuilder;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let actual = TaxiFleetBuilder::new().drivers(2).duration_hours(4.0).build(&mut rng)?;
/// let released = Identity::new().protect_dataset(&actual, &mut rng)?;
/// let utility = HotspotPreservation::default().evaluate(&actual, &released)?;
/// assert!(utility.value() > 0.99);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotspotPreservation {
    cell_size: Meters,
    top_k: usize,
}

impl Default for HotspotPreservation {
    fn default() -> Self {
        Self { cell_size: Meters::new(200.0), top_k: 5 }
    }
}

impl HotspotPreservation {
    /// The metric's id/name inside suites and sweep results.
    pub const ID: &'static str = "hotspot-preservation";

    /// Creates the metric with an explicit cell size and top-`k`.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidParameter`] for a non-positive cell size
    /// or `k = 0`.
    pub fn new(cell_size: Meters, top_k: usize) -> Result<Self, MetricError> {
        if !(cell_size.as_f64().is_finite() && cell_size.as_f64() > 0.0) {
            return Err(MetricError::InvalidParameter {
                name: "cell_size",
                value: cell_size.as_f64(),
                reason: "cell size must be finite and strictly positive",
            });
        }
        if top_k == 0 {
            return Err(MetricError::InvalidParameter {
                name: "top_k",
                value: 0.0,
                reason: "at least one hotspot must be compared",
            });
        }
        Ok(Self { cell_size, top_k })
    }

    /// The city-block cell size.
    pub fn cell_size(&self) -> Meters {
        self.cell_size
    }

    /// The number of top cells compared.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    fn top_cells(&self, grid: &Grid, trace: TraceView<'_>) -> BTreeSet<CellId> {
        let histogram = grid.histogram(trace.iter().map(|r| r.location()));
        let mut cells: Vec<(CellId, usize)> = histogram.into_iter().collect();
        // Sort by decreasing count, breaking ties by cell id for determinism.
        cells.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        cells.into_iter().take(self.top_k).map(|(cell, _)| cell).collect()
    }
}

impl UtilityMetric for HotspotPreservation {
    fn name(&self) -> &str {
        Self::ID
    }

    // Keeps the trait's default passthrough `prepare`: the grid spans the
    // *protected* dataset too, so the only actual-side invariant is a
    // bounding box whose re-scan costs no more than verifying a cached copy
    // would.
    fn evaluate(&self, actual: &Dataset, protected: &Dataset) -> Result<MetricValue, MetricError> {
        let pairs = actual
            .paired_with(protected)
            .map_err(|e| MetricError::DatasetMismatch { reason: e.to_string() })?;
        let grid = Grid::new(combined_bounds(actual, protected)?, self.cell_size)?;

        let mut per_user = Vec::with_capacity(pairs.len());
        for (actual_trace, protected_trace) in pairs {
            let actual_top = self.top_cells(&grid, actual_trace);
            let protected_top = self.top_cells(&grid, protected_trace);
            if actual_top.is_empty() {
                per_user.push((actual_trace.user(), 1.0));
                continue;
            }
            let preserved = actual_top.intersection(&protected_top).count();
            per_user.push((actual_trace.user(), preserved as f64 / actual_top.len() as f64));
        }
        MetricValue::from_per_user(per_user)
    }

    fn cache_key(&self) -> String {
        format!("hotspot-preservation/cell={}/k={}", self.cell_size.as_f64(), self.top_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_lppm::{Epsilon, GeoIndistinguishability, Identity, Lppm};
    use geopriv_mobility::generator::TaxiFleetBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn taxi_dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        TaxiFleetBuilder::new().drivers(3).duration_hours(6.0).build(&mut rng).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(HotspotPreservation::new(Meters::new(200.0), 5).is_ok());
        assert!(HotspotPreservation::new(Meters::new(0.0), 5).is_err());
        assert!(HotspotPreservation::new(Meters::new(200.0), 0).is_err());
        assert!(HotspotPreservation::new(Meters::new(f64::NAN), 3).is_err());
        let m = HotspotPreservation::default();
        assert_eq!(m.name(), "hotspot-preservation");
        assert_eq!(m.cell_size().as_f64(), 200.0);
        assert_eq!(m.top_k(), 5);
    }

    #[test]
    fn identity_preserves_all_hotspots() {
        let actual = taxi_dataset(51);
        let mut rng = StdRng::seed_from_u64(1);
        let released = Identity::new().protect_dataset(&actual, &mut rng).unwrap();
        let value = HotspotPreservation::default().evaluate(&actual, &released).unwrap();
        assert!(value.value() > 0.999, "got {}", value.value());
    }

    #[test]
    fn hotspot_preservation_degrades_with_noise() {
        let actual = taxi_dataset(52);
        let preservation_at = |eps: f64| {
            let mut rng = StdRng::seed_from_u64(2);
            let protected = GeoIndistinguishability::new(Epsilon::new(eps).unwrap())
                .protect_dataset(&actual, &mut rng)
                .unwrap();
            HotspotPreservation::default().evaluate(&actual, &protected).unwrap().value()
        };
        let low_noise = preservation_at(1.0);
        let high_noise = preservation_at(0.0005);
        assert!(low_noise > 0.8, "low-noise preservation {low_noise}");
        assert!(high_noise < low_noise, "{high_noise} vs {low_noise}");
        assert!(high_noise < 0.6, "high-noise preservation {high_noise}");
    }

    #[test]
    fn mismatched_datasets_are_rejected() {
        let a = taxi_dataset(53);
        let b = a.take(1).unwrap();
        assert!(matches!(
            HotspotPreservation::default().evaluate(&a, &b),
            Err(MetricError::DatasetMismatch { .. })
        ));
    }

    #[test]
    fn prepared_evaluation_matches_direct_evaluation() {
        let actual = taxi_dataset(54);
        let mut rng = StdRng::seed_from_u64(4);
        let protected = GeoIndistinguishability::new(Epsilon::new(0.005).unwrap())
            .protect_dataset(&actual, &mut rng)
            .unwrap();
        let metric = HotspotPreservation::default();
        // The grid metrics use the default passthrough prepare.
        let prepared = metric.prepare(&actual).unwrap();
        assert!(prepared.is_empty());
        let direct = metric.evaluate(&actual, &protected).unwrap();
        let via_prepared = metric.evaluate_prepared(&prepared, &actual, &protected).unwrap();
        assert_eq!(direct, via_prepared);
        assert_ne!(
            HotspotPreservation::new(Meters::new(200.0), 3).unwrap().cache_key(),
            metric.cache_key()
        );
    }
}
