//! Spatial-distortion metrics.
//!
//! Auxiliary metrics complementing the paper's two headline metrics: the raw
//! point-wise displacement introduced by an LPPM ([`MeanDistortion`], in
//! meters) and its normalization into a `[0, 1]` utility score
//! ([`DistortionUtility`]). They are used by the ablation benches and as an
//! alternative utility plug-in demonstrating the framework's modularity.

use crate::error::MetricError;
use crate::traits::{MetricValue, UtilityMetric};
use geopriv_geo::{distance, Meters};
use geopriv_mobility::{Dataset, TraceView};
use serde::{Deserialize, Serialize};

/// Mean point-wise displacement between an actual trace and its protected
/// counterpart, in meters.
///
/// Records are matched by timestamp (mechanisms that drop records, such as
/// temporal down-sampling, are compared only on the surviving timestamps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MeanDistortion;

impl MeanDistortion {
    /// Creates the metric.
    pub fn new() -> Self {
        Self
    }

    /// Mean displacement for a single pair of traces, in meters.
    ///
    /// Returns zero when no timestamps match.
    pub fn of_traces(actual: TraceView<'_>, protected: TraceView<'_>) -> Meters {
        let mut total = 0.0;
        let mut count = 0usize;
        let mut protected_iter = protected.iter().peekable();
        for a in actual {
            // Advance the protected cursor until its timestamp reaches a's.
            while let Some(p) = protected_iter.peek() {
                if p.timestamp() < a.timestamp() {
                    protected_iter.next();
                } else {
                    break;
                }
            }
            if let Some(p) = protected_iter.peek() {
                if (p.timestamp().as_f64() - a.timestamp().as_f64()).abs() < 1e-9 {
                    total += distance::haversine(a.location(), p.location()).as_f64();
                    count += 1;
                }
            }
        }
        if count == 0 {
            Meters::new(0.0)
        } else {
            Meters::new(total / count as f64)
        }
    }

    /// Mean displacement over a whole dataset, in meters.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::DatasetMismatch`] when the datasets are not aligned.
    pub fn of_datasets(
        &self,
        actual: &Dataset,
        protected: &Dataset,
    ) -> Result<Meters, MetricError> {
        let pairs = actual
            .paired_with(protected)
            .map_err(|e| MetricError::DatasetMismatch { reason: e.to_string() })?;
        let per_user: Vec<f64> =
            pairs.iter().map(|&(a, p)| Self::of_traces(a, p).as_f64()).collect();
        Ok(Meters::new(per_user.iter().sum::<f64>() / per_user.len() as f64))
    }
}

/// Utility metric derived from spatial distortion: `u = 1 / (1 + d / scale)`
/// where `d` is the per-user mean displacement.
///
/// `scale` is the displacement at which utility has dropped to one half
/// (200 m — a city block — by default).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistortionUtility {
    scale: Meters,
}

impl Default for DistortionUtility {
    fn default() -> Self {
        Self { scale: Meters::new(200.0) }
    }
}

impl DistortionUtility {
    /// The metric's id/name inside suites and sweep results.
    pub const ID: &'static str = "distortion-utility";

    /// Creates the metric with an explicit half-utility displacement scale.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidParameter`] for a non-positive scale.
    pub fn new(scale: Meters) -> Result<Self, MetricError> {
        if !(scale.as_f64().is_finite() && scale.as_f64() > 0.0) {
            return Err(MetricError::InvalidParameter {
                name: "scale",
                value: scale.as_f64(),
                reason: "distortion scale must be finite and strictly positive",
            });
        }
        Ok(Self { scale })
    }

    /// The half-utility displacement scale.
    pub fn scale(&self) -> Meters {
        self.scale
    }
}

impl UtilityMetric for DistortionUtility {
    fn name(&self) -> &str {
        Self::ID
    }

    fn evaluate(&self, actual: &Dataset, protected: &Dataset) -> Result<MetricValue, MetricError> {
        let pairs = actual
            .paired_with(protected)
            .map_err(|e| MetricError::DatasetMismatch { reason: e.to_string() })?;
        let per_user: Vec<_> = pairs
            .iter()
            .map(|&(a, p)| {
                let d = MeanDistortion::of_traces(a, p).as_f64();
                (a.user(), 1.0 / (1.0 + d / self.scale.as_f64()))
            })
            .collect();
        MetricValue::from_per_user(per_user)
    }

    // Every quantity this metric computes is pairwise (actual record vs
    // protected record matched by timestamp), so there is no actual-only
    // state worth preparing: the default passthrough `prepare` applies.
    fn cache_key(&self) -> String {
        format!("distortion-utility/scale={}", self.scale.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_geo::{GeoPoint, Seconds};
    use geopriv_lppm::{Epsilon, GeoIndistinguishability, Identity, Lppm, TemporalDownsampling};
    use geopriv_mobility::generator::TaxiFleetBuilder;
    use geopriv_mobility::{Record, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn taxi_dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        TaxiFleetBuilder::new().drivers(3).duration_hours(3.0).build(&mut rng).unwrap()
    }

    #[test]
    fn identity_has_zero_distortion_and_full_utility() {
        let actual = taxi_dataset(41);
        let mut rng = StdRng::seed_from_u64(1);
        let protected = Identity::new().protect_dataset(&actual, &mut rng).unwrap();
        assert!(MeanDistortion::new().of_datasets(&actual, &protected).unwrap().as_f64() < 1e-9);
        let u = DistortionUtility::default().evaluate(&actual, &protected).unwrap();
        assert!((u.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn geoi_distortion_tracks_two_over_epsilon() {
        let actual = taxi_dataset(42);
        let mut rng = StdRng::seed_from_u64(2);
        let eps = 0.01;
        let protected = GeoIndistinguishability::new(Epsilon::new(eps).unwrap())
            .protect_dataset(&actual, &mut rng)
            .unwrap();
        let d = MeanDistortion::new().of_datasets(&actual, &protected).unwrap().as_f64();
        let expected = 2.0 / eps;
        assert!((d - expected).abs() / expected < 0.2, "distortion {d} expected {expected}");
    }

    #[test]
    fn distortion_utility_is_half_at_the_scale() {
        // Construct a protected trace exactly 300 m east of the actual one.
        let base = GeoPoint::new(37.77, -122.42).unwrap();
        let records: Vec<Record> =
            (0..10).map(|i| Record::new(Seconds::new(i as f64 * 60.0), base)).collect();
        let actual =
            Dataset::new(vec![
                geopriv_mobility::Trace::new(UserId::new(1), records.clone()).unwrap()
            ])
            .unwrap();
        let proj = geopriv_geo::LocalProjection::centered_on(base);
        let moved = proj.unproject(proj.project(base).translated(300.0, 0.0));
        let protected_records: Vec<Record> =
            records.iter().map(|r| r.with_location(moved)).collect();
        let protected =
            Dataset::new(vec![
                geopriv_mobility::Trace::new(UserId::new(1), protected_records).unwrap()
            ])
            .unwrap();

        let u = DistortionUtility::new(Meters::new(300.0))
            .unwrap()
            .evaluate(&actual, &protected)
            .unwrap();
        assert!((u.value() - 0.5).abs() < 0.01, "got {}", u.value());
        let d = MeanDistortion::new().of_datasets(&actual, &protected).unwrap();
        assert!((d.as_f64() - 300.0).abs() < 2.0);
    }

    #[test]
    fn timestamp_matching_handles_dropped_records() {
        let actual = taxi_dataset(43);
        let mut rng = StdRng::seed_from_u64(3);
        let downsampled =
            TemporalDownsampling::new(4).unwrap().protect_dataset(&actual, &mut rng).unwrap();
        // Same coordinates on surviving timestamps: distortion is zero.
        let d = MeanDistortion::new().of_datasets(&actual, &downsampled).unwrap();
        assert!(d.as_f64() < 1e-9, "got {}", d.as_f64());
    }

    #[test]
    fn validation_and_mismatch_errors() {
        assert!(DistortionUtility::new(Meters::new(0.0)).is_err());
        assert!(DistortionUtility::new(Meters::new(-5.0)).is_err());
        let a = taxi_dataset(44);
        let b = a.take(1).unwrap();
        assert!(MeanDistortion::new().of_datasets(&a, &b).is_err());
        assert!(DistortionUtility::default().evaluate(&a, &b).is_err());
        assert_eq!(DistortionUtility::default().name(), "distortion-utility");
        assert_eq!(DistortionUtility::default().scale().as_f64(), 200.0);
    }
}
