//! Error type for metric evaluation.

use geopriv_geo::GeoError;
use geopriv_mobility::MobilityError;
use std::fmt;

/// Errors produced by the `geopriv-metrics` crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum MetricError {
    /// A metric was configured with an invalid parameter.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the constraint.
        reason: &'static str,
    },
    /// The actual and protected datasets are not comparable (different users
    /// or sizes).
    DatasetMismatch {
        /// Description of the mismatch.
        reason: String,
    },
    /// A metric suite is structurally invalid (empty, or duplicate ids).
    InvalidSuite {
        /// Description of the structural problem.
        reason: String,
    },
    /// A geospatial operation failed.
    Geo(GeoError),
    /// A mobility-data operation failed.
    Mobility(MobilityError),
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::InvalidParameter { name, value, reason } => {
                write!(f, "invalid parameter {name} = {value}: {reason}")
            }
            MetricError::DatasetMismatch { reason } => write!(f, "dataset mismatch: {reason}"),
            MetricError::InvalidSuite { reason } => write!(f, "invalid metric suite: {reason}"),
            MetricError::Geo(e) => write!(f, "geospatial error: {e}"),
            MetricError::Mobility(e) => write!(f, "mobility error: {e}"),
        }
    }
}

impl std::error::Error for MetricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MetricError::Geo(e) => Some(e),
            MetricError::Mobility(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeoError> for MetricError {
    fn from(e: GeoError) -> Self {
        MetricError::Geo(e)
    }
}

impl From<MobilityError> for MetricError {
    fn from(e: MobilityError) -> Self {
        MetricError::Mobility(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MetricError::InvalidParameter {
            name: "radius",
            value: -1.0,
            reason: "must be positive",
        };
        assert!(e.to_string().contains("radius"));
        assert!(std::error::Error::source(&e).is_none());

        let g = MetricError::from(GeoError::EmptyBounds);
        assert!(std::error::Error::source(&g).is_some());
        let m = MetricError::from(MobilityError::EmptyTrace);
        assert!(m.to_string().contains("mobility"));

        let d = MetricError::DatasetMismatch { reason: "sizes differ".into() };
        assert!(d.to_string().contains("sizes differ"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<MetricError>();
    }
}
