//! Point-of-interest (POI) extraction.
//!
//! The paper defines POIs as "meaningful locations where a user made a
//! significant stop". [`PoiExtractor`] implements the classic stay-point
//! detection algorithm (Li et al., 2008; the same family used by the authors'
//! evaluation tooling): a POI is the centroid of a maximal run of consecutive
//! records that stay within `max_diameter` of the run's first record for at
//! least `min_dwell` time.

use crate::error::MetricError;
use geopriv_geo::{distance, GeoPoint, LocalProjection, Meters, Point, Seconds};
use geopriv_mobility::TraceView;
use serde::{Deserialize, Serialize};

/// A point of interest: a significant stop of one user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Centroid of the stop.
    pub location: GeoPoint,
    /// Timestamp of the first record of the stop.
    pub start: Seconds,
    /// Timestamp of the last record of the stop.
    pub end: Seconds,
    /// Number of records forming the stop.
    pub record_count: usize,
}

impl Poi {
    /// Duration of the stop.
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }
}

/// Stay-point POI extractor.
///
/// The defaults (15 min dwell within a 200 m diameter) follow the values
/// commonly used on the cabspotting dataset and match the scale of the
/// paper's privacy objective ("retrieval of at most 10 % of the POIs").
///
/// # Examples
///
/// ```
/// use geopriv_metrics::PoiExtractor;
/// use geopriv_mobility::generator::TaxiFleetBuilder;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let dataset = TaxiFleetBuilder::new().drivers(1).duration_hours(8.0).build(&mut rng)?;
/// let extractor = PoiExtractor::default();
/// let pois = extractor.extract(dataset.trace_at(0));
/// assert!(!pois.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoiExtractor {
    min_dwell: Seconds,
    max_diameter: Meters,
}

impl Default for PoiExtractor {
    fn default() -> Self {
        Self { min_dwell: Seconds::from_minutes(15.0), max_diameter: Meters::new(200.0) }
    }
}

impl PoiExtractor {
    /// Creates an extractor with explicit clustering thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidParameter`] for non-positive thresholds.
    pub fn new(min_dwell: Seconds, max_diameter: Meters) -> Result<Self, MetricError> {
        if !(min_dwell.as_f64().is_finite() && min_dwell.as_f64() > 0.0) {
            return Err(MetricError::InvalidParameter {
                name: "min_dwell",
                value: min_dwell.as_f64(),
                reason: "minimum dwell time must be finite and strictly positive",
            });
        }
        if !(max_diameter.as_f64().is_finite() && max_diameter.as_f64() > 0.0) {
            return Err(MetricError::InvalidParameter {
                name: "max_diameter",
                value: max_diameter.as_f64(),
                reason: "maximum stop diameter must be finite and strictly positive",
            });
        }
        Ok(Self { min_dwell, max_diameter })
    }

    /// Minimum dwell time for a stop to count as a POI.
    pub fn min_dwell(&self) -> Seconds {
        self.min_dwell
    }

    /// Maximum spatial extent of a stop.
    pub fn max_diameter(&self) -> Meters {
        self.max_diameter
    }

    /// Extracts the POIs of a trace, in chronological order.
    pub fn extract(&self, trace: TraceView<'_>) -> Vec<Poi> {
        let n = trace.len();
        let mut pois = Vec::new();
        if n == 0 {
            return pois;
        }
        let timestamps = trace.timestamps();
        let projection = LocalProjection::centered_on(trace.first().location());
        let projected: Vec<Point> =
            trace.iter().map(|r| projection.project(r.location())).collect();

        let mut i = 0;
        while i < n {
            // Extend the candidate stay as long as records remain within
            // max_diameter of the anchor record i.
            let mut j = i + 1;
            while j < n
                && projected[j].distance_to(projected[i]).as_f64() <= self.max_diameter.as_f64()
            {
                j += 1;
            }
            // Records i..j stay near the anchor; check the dwell duration.
            let dwell = Seconds::new(timestamps[j - 1]) - Seconds::new(timestamps[i]);
            if dwell >= self.min_dwell {
                let centroid_planar =
                    geopriv_geo::point::centroid(&projected[i..j]).expect("run is non-empty");
                pois.push(Poi {
                    location: projection.unproject(centroid_planar),
                    start: Seconds::new(timestamps[i]),
                    end: Seconds::new(timestamps[j - 1]),
                    record_count: j - i,
                });
                i = j;
            } else {
                i += 1;
            }
        }
        pois
    }

    /// Extracts POIs and merges those whose centroids are closer than
    /// `max_diameter` (the same physical place visited several times).
    ///
    /// The result is the user's set of *distinct* meaningful places, which is
    /// what the privacy metric counts.
    pub fn extract_distinct(&self, trace: TraceView<'_>) -> Vec<Poi> {
        let pois = self.extract(trace);
        let mut merged: Vec<Poi> = Vec::new();
        for poi in pois {
            match merged.iter_mut().find(|existing| {
                distance::haversine(existing.location, poi.location).as_f64()
                    <= self.max_diameter.as_f64()
            }) {
                Some(existing) => {
                    // Merge: weight centroids by record count, accumulate counts.
                    let w1 = existing.record_count as f64;
                    let w2 = poi.record_count as f64;
                    existing.location = GeoPoint::clamped(
                        (existing.location.latitude() * w1 + poi.location.latitude() * w2)
                            / (w1 + w2),
                        (existing.location.longitude() * w1 + poi.location.longitude() * w2)
                            / (w1 + w2),
                    );
                    existing.record_count += poi.record_count;
                    existing.end = poi.end;
                }
                None => merged.push(poi),
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geopriv_mobility::{Record, Trace, UserId};

    fn gp(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    /// A trace that dwells 30 min at A, drives 20 min, dwells 30 min at B.
    fn two_stop_trace() -> Trace {
        let a = gp(37.7600, -122.4500);
        let b = gp(37.7800, -122.4200);
        let mut records = Vec::new();
        let mut t = 0.0;
        // Stop at A: 60 records, 30 s apart.
        for _ in 0..60 {
            records.push(Record::new(Seconds::new(t), a));
            t += 30.0;
        }
        // Drive from A to B over 20 minutes (40 samples).
        for k in 0..40 {
            let frac = k as f64 / 39.0;
            records.push(Record::new(
                Seconds::new(t),
                gp(
                    a.latitude() + frac * (b.latitude() - a.latitude()),
                    a.longitude() + frac * (b.longitude() - a.longitude()),
                ),
            ));
            t += 30.0;
        }
        // Stop at B.
        for _ in 0..60 {
            records.push(Record::new(Seconds::new(t), b));
            t += 30.0;
        }
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn extractor_validation() {
        assert!(PoiExtractor::new(Seconds::from_minutes(10.0), Meters::new(100.0)).is_ok());
        assert!(PoiExtractor::new(Seconds::new(0.0), Meters::new(100.0)).is_err());
        assert!(PoiExtractor::new(Seconds::new(60.0), Meters::new(0.0)).is_err());
        assert!(PoiExtractor::new(Seconds::new(f64::NAN), Meters::new(100.0)).is_err());
        let e = PoiExtractor::default();
        assert_eq!(e.min_dwell().to_minutes(), 15.0);
        assert_eq!(e.max_diameter().as_f64(), 200.0);
    }

    #[test]
    fn finds_exactly_the_two_stops() {
        let trace = two_stop_trace();
        let pois = PoiExtractor::default().extract(trace.view());
        assert_eq!(pois.len(), 2, "found {pois:?}");
        // The POIs are at A and B.
        assert!(distance::haversine(pois[0].location, gp(37.7600, -122.4500)).as_f64() < 50.0);
        assert!(distance::haversine(pois[1].location, gp(37.7800, -122.4200)).as_f64() < 50.0);
        // Both stops lasted about 30 minutes.
        for poi in &pois {
            assert!(poi.duration().to_minutes() >= 25.0);
            assert!(poi.record_count >= 55);
            assert!(poi.start < poi.end);
        }
    }

    #[test]
    fn short_or_moving_traces_have_no_poi() {
        // Constant motion, never stopping.
        let records: Vec<Record> = (0..200)
            .map(|i| {
                Record::new(Seconds::new(i as f64 * 30.0), gp(37.70 + i as f64 * 0.0005, -122.45))
            })
            .collect();
        let moving = Trace::new(UserId::new(1), records).unwrap();
        assert!(PoiExtractor::default().extract(moving.view()).is_empty());

        // A stop that is long enough spatially but too short temporally.
        let brief: Vec<Record> = (0..10)
            .map(|i| Record::new(Seconds::new(i as f64 * 30.0), gp(37.75, -122.42)))
            .collect();
        let brief = Trace::new(UserId::new(2), brief).unwrap();
        assert!(PoiExtractor::default().extract(brief.view()).is_empty());
    }

    #[test]
    fn single_record_trace_has_no_poi() {
        let trace =
            Trace::new(UserId::new(1), vec![Record::new(Seconds::new(0.0), gp(37.75, -122.42))])
                .unwrap();
        assert!(PoiExtractor::default().extract(trace.view()).is_empty());
    }

    #[test]
    fn repeated_visits_merge_into_distinct_pois() {
        // Dwell at A, go to B, come back to A: extract() finds 3 stops but
        // only 2 distinct places.
        let a = gp(37.7600, -122.4500);
        let b = gp(37.7800, -122.4200);
        let mut records = Vec::new();
        let mut t = 0.0;
        let dwell = |records: &mut Vec<Record>, at: GeoPoint, t: &mut f64| {
            for _ in 0..40 {
                records.push(Record::new(Seconds::new(*t), at));
                *t += 30.0;
            }
        };
        let travel = |records: &mut Vec<Record>, from: GeoPoint, to: GeoPoint, t: &mut f64| {
            for k in 0..30 {
                let frac = k as f64 / 29.0;
                records.push(Record::new(
                    Seconds::new(*t),
                    gp(
                        from.latitude() + frac * (to.latitude() - from.latitude()),
                        from.longitude() + frac * (to.longitude() - from.longitude()),
                    ),
                ));
                *t += 30.0;
            }
        };
        dwell(&mut records, a, &mut t);
        travel(&mut records, a, b, &mut t);
        dwell(&mut records, b, &mut t);
        travel(&mut records, b, a, &mut t);
        dwell(&mut records, a, &mut t);
        let trace = Trace::new(UserId::new(1), records).unwrap();

        let extractor = PoiExtractor::default();
        assert_eq!(extractor.extract(trace.view()).len(), 3);
        let distinct = extractor.extract_distinct(trace.view());
        assert_eq!(distinct.len(), 2);
        // The merged POI at A accumulated both visits.
        let at_a =
            distinct.iter().find(|p| distance::haversine(p.location, a).as_f64() < 100.0).unwrap();
        assert!(at_a.record_count >= 80);
    }

    #[test]
    fn gps_jitter_does_not_split_a_stop() {
        // A 30-minute stop with ±20 m of deterministic jitter stays one POI.
        let base = gp(37.7700, -122.4300);
        let records: Vec<Record> = (0..60)
            .map(|i| {
                let dlat = ((i % 5) as f64 - 2.0) * 0.00005; // ~±11 m
                let dlon = ((i % 3) as f64 - 1.0) * 0.00005;
                Record::new(
                    Seconds::new(i as f64 * 30.0),
                    gp(base.latitude() + dlat, base.longitude() + dlon),
                )
            })
            .collect();
        let trace = Trace::new(UserId::new(1), records).unwrap();
        let pois = PoiExtractor::default().extract(trace.view());
        assert_eq!(pois.len(), 1);
        assert!(distance::haversine(pois[0].location, base).as_f64() < 30.0);
    }
}
