//! Property-based tests of the privacy and utility metrics.

use geopriv_geo::{GeoPoint, LocalProjection, Meters, Point, Seconds};
use geopriv_lppm::{Epsilon, GaussianPerturbation, GeoIndistinguishability, Identity, Lppm};
use geopriv_metrics::{
    AreaCoverage, DistortionUtility, HotspotPreservation, MeanDistortion, PoiExtractor,
    PoiRetrieval, PrivacyMetric, UtilityMetric,
};
use geopriv_mobility::{Dataset, Record, Trace, UserId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic trace with `stops` dwell periods separated by short drives.
fn stop_and_go_trace(user: u64, stops: usize, dwell_records: usize) -> Trace {
    let projection = LocalProjection::centered_on(GeoPoint::clamped(37.76, -122.43));
    let mut records = Vec::new();
    let mut t = 0.0;
    for s in 0..stops.max(1) {
        let anchor = Point::new(s as f64 * 900.0, (s % 3) as f64 * 700.0);
        for k in 0..dwell_records.max(2) {
            // Tiny deterministic jitter around the anchor.
            let jitter = Point::new(((k % 5) as f64 - 2.0) * 8.0, ((k % 3) as f64 - 1.0) * 8.0);
            records.push(Record::new(
                Seconds::new(t),
                projection.unproject(Point::new(anchor.x() + jitter.x(), anchor.y() + jitter.y())),
            ));
            t += 60.0;
        }
        // Drive to the next anchor in a few samples.
        for k in 0..5 {
            let next = Point::new((s + 1) as f64 * 900.0, ((s + 1) % 3) as f64 * 700.0);
            let p = anchor.lerp(next, k as f64 / 4.0);
            records.push(Record::new(Seconds::new(t), projection.unproject(p)));
            t += 60.0;
        }
    }
    Trace::new(UserId::new(user), records).expect("ordered records")
}

fn dataset(users: usize, stops: usize, dwell_records: usize) -> Dataset {
    Dataset::new(
        (0..users.max(1)).map(|u| stop_and_go_trace(u as u64, stops, dwell_records)).collect(),
    )
    .expect("non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_metrics_are_bounded_and_defined(
        users in 1usize..4,
        stops in 1usize..5,
        dwell in 5usize..30,
        epsilon in 1e-4f64..1.0,
        seed in 0u64..300,
    ) {
        let actual = dataset(users, stops, dwell);
        let mut rng = StdRng::seed_from_u64(seed);
        let protected = GeoIndistinguishability::new(Epsilon::new(epsilon).unwrap())
            .protect_dataset(&actual, &mut rng)
            .unwrap();

        let metrics_privacy: Vec<Box<dyn PrivacyMetric>> = vec![Box::new(PoiRetrieval::default())];
        let metrics_utility: Vec<Box<dyn UtilityMetric>> = vec![
            Box::new(AreaCoverage::default()),
            Box::new(AreaCoverage::cell_overlap()),
            Box::new(HotspotPreservation::default()),
            Box::new(DistortionUtility::default()),
        ];
        // Every metric's aggregate is exactly the mean of its user-keyed
        // breakdown (bit-identical: the constructor sums in breakdown order),
        // every breakdown user is a dataset user, and no user repeats. An
        // empty breakdown is allowed only for the defined-zero case (no user
        // evaluable at all).
        let users_of = |d: &Dataset| d.iter().map(|t| t.user()).collect::<Vec<_>>();
        let check = |v: &geopriv_metrics::MetricValue, name: &str| {
            if v.per_user().is_empty() {
                prop_assert_eq!(v.value(), 0.0, "{}: empty breakdown must be defined zero", name);
            } else {
                let mean =
                    v.per_user().iter().map(|(_, x)| x).sum::<f64>() / v.per_user().len() as f64;
                prop_assert_eq!(v.value(), mean, "{}: aggregate is not the breakdown mean", name);
            }
            let dataset_users = users_of(&actual);
            let mut seen = std::collections::BTreeSet::new();
            for (user, _) in v.per_user() {
                prop_assert!(dataset_users.contains(user), "{name}: foreign user {user}");
                prop_assert!(seen.insert(*user), "{name}: duplicate user {user}");
            }
            Ok(())
        };
        for metric in &metrics_privacy {
            let v = metric.evaluate(&actual, &protected).unwrap();
            prop_assert!((0.0..=1.0).contains(&v.value()), "{} = {}", metric.name(), v.value());
            prop_assert!(v.per_user().len() <= actual.len());
            check(&v, metric.name())?;
        }
        for metric in &metrics_utility {
            let v = metric.evaluate(&actual, &protected).unwrap();
            prop_assert!((0.0..=1.0).contains(&v.value()), "{} = {}", metric.name(), v.value());
            // The utility metrics cover every user of the dataset.
            prop_assert_eq!(v.per_user().len(), actual.len());
            check(&v, metric.name())?;
        }
        // Distortion is non-negative and finite.
        let d = MeanDistortion::new().of_datasets(&actual, &protected).unwrap();
        prop_assert!(d.as_f64() >= 0.0 && d.as_f64().is_finite());
    }

    #[test]
    fn identity_is_the_best_case_for_every_metric(
        users in 1usize..4,
        stops in 1usize..5,
        dwell in 16usize..40,
        epsilon in 1e-3f64..0.02,
        seed in 0u64..300,
    ) {
        let actual = dataset(users, stops, dwell);
        let mut rng = StdRng::seed_from_u64(seed);
        let released = Identity::new().protect_dataset(&actual, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let noisy = GeoIndistinguishability::new(Epsilon::new(epsilon).unwrap())
            .protect_dataset(&actual, &mut rng)
            .unwrap();

        // Identity: perfect utility, maximal retrieval.
        let utility_identity = AreaCoverage::default().evaluate(&actual, &released).unwrap().value();
        let utility_noisy = AreaCoverage::default().evaluate(&actual, &noisy).unwrap().value();
        prop_assert!(utility_identity >= utility_noisy - 1e-9);

        let privacy_identity = PoiRetrieval::default().evaluate(&actual, &released).unwrap().value();
        let privacy_noisy = PoiRetrieval::default().evaluate(&actual, &noisy).unwrap().value();
        prop_assert!(privacy_identity >= privacy_noisy - 1e-9);

        let distortion_identity = MeanDistortion::new().of_datasets(&actual, &released).unwrap();
        prop_assert!(distortion_identity.as_f64() < 1e-9);
    }

    #[test]
    fn poi_extraction_finds_each_dwell_at_most_once(
        stops in 1usize..6,
        dwell in 16usize..50,
    ) {
        let trace = stop_and_go_trace(1, stops, dwell);
        let extractor = PoiExtractor::default();
        let pois = extractor.extract(trace.view());
        // Each dwell period lasts >= 16 minutes (dwell >= 16 records at 60 s),
        // so every stop is found, and nothing else is.
        prop_assert_eq!(pois.len(), stops);
        let distinct = extractor.extract_distinct(trace.view());
        prop_assert!(distinct.len() <= pois.len());
        prop_assert!(!distinct.is_empty());
        for poi in &pois {
            prop_assert!(poi.duration().to_minutes() >= 15.0);
            prop_assert!(poi.record_count >= dwell.min(16));
        }
    }

    #[test]
    fn distortion_utility_decreases_with_gaussian_sigma(
        users in 1usize..3,
        stops in 1usize..4,
        sigma_small in 5.0f64..50.0,
        sigma_large in 300.0f64..2_000.0,
        seed in 0u64..200,
    ) {
        let actual = dataset(users, stops, 20);
        let evaluate = |sigma: f64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let protected = GaussianPerturbation::new(Meters::new(sigma))
                .unwrap()
                .protect_dataset(&actual, &mut rng)
                .unwrap();
            DistortionUtility::default().evaluate(&actual, &protected).unwrap().value()
        };
        prop_assert!(evaluate(sigma_small) > evaluate(sigma_large));
    }

    /// `evaluate` and `prepare` + `evaluate_prepared` are two routes to the
    /// same number, for every metric and any input.
    #[test]
    fn prepared_state_never_changes_a_metric_value(
        users in 1usize..4,
        stops in 1usize..5,
        dwell in 5usize..30,
        epsilon in 1e-4f64..1.0,
        seed in 0u64..300,
    ) {
        let actual = dataset(users, stops, dwell);
        let mut rng = StdRng::seed_from_u64(seed);
        let protected = GeoIndistinguishability::new(Epsilon::new(epsilon).unwrap())
            .protect_dataset(&actual, &mut rng)
            .unwrap();

        let privacy = PoiRetrieval::default();
        let prepared = privacy.prepare(&actual).unwrap();
        prop_assert_eq!(
            privacy.evaluate(&actual, &protected).unwrap(),
            privacy.evaluate_prepared(&prepared, &actual, &protected).unwrap()
        );

        let utilities: Vec<Box<dyn UtilityMetric>> = vec![
            Box::new(AreaCoverage::default()),
            Box::new(AreaCoverage::cell_overlap()),
            Box::new(HotspotPreservation::default()),
            Box::new(DistortionUtility::default()),
        ];
        for metric in &utilities {
            let prepared = metric.prepare(&actual).unwrap();
            prop_assert_eq!(
                metric.evaluate(&actual, &protected).unwrap(),
                metric.evaluate_prepared(&prepared, &actual, &protected).unwrap(),
                "{}", metric.name()
            );
        }
    }

    #[test]
    fn hotspot_preservation_never_exceeds_one_and_identity_is_perfect(
        users in 1usize..4,
        stops in 2usize..6,
        top_k in 1usize..8,
    ) {
        let actual = dataset(users, stops, 20);
        let mut rng = StdRng::seed_from_u64(3);
        let released = Identity::new().protect_dataset(&actual, &mut rng).unwrap();
        let metric = HotspotPreservation::new(Meters::new(200.0), top_k).unwrap();
        let v = metric.evaluate(&actual, &released).unwrap();
        prop_assert!((v.value() - 1.0).abs() < 1e-9);
    }
}

/// A trace in constant motion: it never dwells anywhere, so it has no POI.
fn moving_trace(user: u64) -> Trace {
    let records: Vec<Record> = (0..200)
        .map(|i| {
            Record::new(
                Seconds::new(i as f64 * 30.0),
                GeoPoint::new(37.70 + i as f64 * 0.0004, -122.45).unwrap(),
            )
        })
        .collect();
    Trace::new(UserId::new(user), records).unwrap()
}

/// Regression test: a dataset may hold several traces for the same user
/// ("kept as distinct traces, e.g. one trace per day for the same driver" —
/// `Dataset::new`'s documented contract). Every metric must still evaluate:
/// the aggregate stays the per-trace mean, and the breakdown carries one
/// merged entry per user so joins stay unambiguous.
#[test]
fn metrics_evaluate_datasets_with_several_traces_per_user() {
    let traces = vec![
        stop_and_go_trace(1, 2, 20),
        stop_and_go_trace(1, 4, 25), // same driver, another day
        stop_and_go_trace(2, 3, 20),
    ];
    let actual = Dataset::new(traces).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let protected = GeoIndistinguishability::new(Epsilon::new(0.01).unwrap())
        .protect_dataset(&actual, &mut rng)
        .unwrap();

    let metrics: Vec<Box<dyn UtilityMetric>> = vec![
        Box::new(AreaCoverage::default()),
        Box::new(HotspotPreservation::default()),
        Box::new(DistortionUtility::default()),
    ];
    for metric in &metrics {
        let v = metric.evaluate(&actual, &protected).unwrap_or_else(|e| {
            panic!("{} failed on a multi-trace-per-user dataset: {e}", metric.name())
        });
        assert!((0.0..=1.0).contains(&v.value()), "{}", metric.name());
        // Two users, three traces: the breakdown merges user 1's traces.
        assert_eq!(v.per_user().len(), 2, "{}", metric.name());
        assert_eq!(v.users().collect::<Vec<_>>(), vec![UserId::new(1), UserId::new(2)]);
    }
    let privacy = PoiRetrieval::default().evaluate(&actual, &protected).unwrap();
    assert!((0.0..=1.0).contains(&privacy.value()));
    assert!(privacy.per_user().len() <= 2);
}

/// Regression test for the breakdown-alignment bug: `PoiRetrieval` excludes
/// users without POIs, so its breakdown used to be a *shorter* positional
/// `Vec<f64>` than a full-coverage metric's over the same dataset — zipping
/// the two by position silently paired user 3's retrieval with user 2's
/// coverage. User-keyed breakdowns make the join exact.
#[test]
fn breakdowns_of_different_metrics_join_by_user_not_position() {
    // User 2 (the middle trace) never stops, so POI retrieval excludes her.
    let traces = vec![stop_and_go_trace(1, 3, 20), moving_trace(2), stop_and_go_trace(3, 3, 20)];
    let actual = Dataset::new(traces).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let released = Identity::new().protect_dataset(&actual, &mut rng).unwrap();

    let privacy = PoiRetrieval::default().evaluate(&actual, &released).unwrap();
    let utility = AreaCoverage::default().evaluate(&actual, &released).unwrap();

    // The privacy breakdown names exactly the users that have POIs…
    assert_eq!(
        privacy.users().collect::<Vec<_>>(),
        vec![UserId::new(1), UserId::new(3)],
        "excluded user must not appear in the breakdown"
    );
    // …while the utility breakdown covers every user.
    assert_eq!(utility.per_user().len(), 3);

    // Joining by user id pairs the right values for every evaluated user.
    for (user, retrieval) in privacy.per_user() {
        let coverage = utility.value_for(*user).expect("utility covers every user");
        assert!((0.0..=1.0).contains(retrieval) && (0.0..=1.0).contains(&coverage));
    }
    assert_eq!(privacy.value_for(UserId::new(2)), None);

    // The positional zip this replaces was genuinely wrong: position 1 of the
    // privacy breakdown is user 3, while position 1 of the utility breakdown
    // is user 2.
    assert_eq!(privacy.per_user()[1].0, UserId::new(3));
    assert_eq!(utility.per_user()[1].0, UserId::new(2));
}
