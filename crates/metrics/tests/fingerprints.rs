//! Property-based tests of the per-user dataset fingerprints — the change
//! detector behind incremental recomputation: a user's sub-fingerprint must
//! change exactly when that user's records change, and must be stable under
//! whole-dataset rebuilds (the fingerprint keys an on-disk cache, so a
//! spurious change would throw away valid measurements and a missed change
//! would serve stale ones).

use geopriv_metrics::DatasetFingerprint;
use geopriv_mobility::generator::{perturb_users, TaxiFleetBuilder};
use geopriv_mobility::{Dataset, Trace, UserId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fleet(drivers: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    TaxiFleetBuilder::new()
        .drivers(drivers)
        .duration_hours(1.0)
        .sampling_interval_s(120.0)
        .build(&mut rng)
        .expect("valid fleet")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Perturbing exactly the chosen users' traces changes exactly those
    /// users' sub-fingerprints — no more, no less.
    #[test]
    fn per_user_fingerprints_change_iff_the_users_records_change(
        drivers in 3usize..8,
        fleet_seed in 0u64..1_000,
        perturb_seed in 0u64..1_000,
        chosen_bits in 1u32..0xff,
    ) {
        let dataset = fleet(drivers, fleet_seed);
        let users = dataset.users();
        let chosen: Vec<UserId> = users
            .iter()
            .enumerate()
            .filter(|(i, _)| chosen_bits & (1 << (i % 8)) != 0)
            .map(|(_, &user)| user)
            .collect();
        prop_assume!(!chosen.is_empty());

        let drifted = perturb_users(&dataset, &chosen, perturb_seed).expect("known users");
        let before = DatasetFingerprint::of(&dataset);
        let after = DatasetFingerprint::of(&drifted);

        // The changed set is exactly the perturbed set (dataset user order).
        prop_assert_eq!(&after.changed_users(&before), &chosen);
        // And symmetrically, looking backwards.
        prop_assert_eq!(&before.changed_users(&after), &chosen);
        // Untouched users keep bit-identical sub-fingerprints.
        for &user in &users {
            let same = before.user_fingerprint(user) == after.user_fingerprint(user);
            prop_assert_eq!(same, !chosen.contains(&user), "user {}", user);
        }
    }

    /// Rebuilding the same dataset from scratch — fresh `Trace` values from
    /// the same columns — reproduces every sub-fingerprint bit for bit: the
    /// fingerprint depends only on the records, not on allocation history.
    #[test]
    fn fingerprints_are_stable_under_whole_dataset_rebuilds(
        drivers in 2usize..7,
        fleet_seed in 0u64..1_000,
    ) {
        let dataset = fleet(drivers, fleet_seed);
        let rebuilt_traces = dataset
            .iter()
            .map(|view| {
                Trace::from_columns(
                    view.user(),
                    view.timestamps().to_vec(),
                    view.latitudes().to_vec(),
                    view.longitudes().to_vec(),
                )
                .expect("valid columns")
            })
            .collect::<Vec<_>>();
        let rebuilt = Dataset::new(rebuilt_traces).expect("non-empty");

        let original = DatasetFingerprint::of(&dataset);
        let again = DatasetFingerprint::of(&rebuilt);
        prop_assert_eq!(original.per_user(), again.per_user());
        prop_assert!(again.changed_users(&original).is_empty());
    }
}
